"""``GravityVisitor`` (paper Fig 7) with vectorised batch hooks.

The scalar ``open``/``node``/``leaf`` follow the paper's listing exactly;
the batched overrides implement the same math over whole target batches
(transposed engine) or source batches (per-bucket engine), writing into one
acceleration array aligned with tree order.
"""

from __future__ import annotations

import numpy as np

from ...core.util import ranges_to_indices
from ...core.visitor import Visitor
from ...geometry import boxes_intersect_sphere, spheres_intersect_box
from ...trees import SpatialNode, Tree
from .centroid import GravityNodeArrays
from .kernels import (
    pairwise_accel,
    pairwise_potential,
    point_mass_accel,
    quadrupole_accel,
)

__all__ = ["GravityVisitor"]


class GravityVisitor(Visitor):
    """Barnes-Hut gravity: prune with the MAC sphere, approximate with the
    node centroid (monopole, optionally + quadrupole), evaluate leaves
    exactly.

    Accumulates into :attr:`accel` (N, 3), indexed in tree order; with
    ``with_potential=True`` the (monopole) potential lands in
    :attr:`potential` as well, enabling energy tracking.
    """

    def __init__(
        self,
        tree: Tree,
        node_arrays: GravityNodeArrays,
        G: float = 1.0,
        softening: float = 0.0,
        with_potential: bool = False,
    ) -> None:
        self.tree = tree
        self.arrays = node_arrays
        self.G = float(G)
        self.softening = float(softening)
        self.accel = np.zeros((tree.n_particles, 3))
        self.potential = np.zeros(tree.n_particles) if with_potential else None

    # -- parallel-execution protocol (repro.exec) ----------------------------
    # All writes hit self.accel/self.potential rows of the targets being
    # traversed, so thread workers can share one instance over disjoint
    # target chunks, and process workers ship back per-chunk rows.
    exec_shareable = True

    def exec_config(self) -> dict:
        return {
            "G": self.G,
            "softening": self.softening,
            "with_potential": self.potential is not None,
        }

    def exec_arrays(self) -> dict[str, np.ndarray]:
        out = {
            "centroid": self.arrays.centroid,
            "mass": self.arrays.mass,
            "open_radius_sq": self.arrays.open_radius_sq,
        }
        if self.arrays.quad is not None:
            out["quad"] = self.arrays.quad
        return out

    @classmethod
    def exec_rebuild(cls, tree: Tree, arrays: dict[str, np.ndarray], config: dict) -> "GravityVisitor":
        node_arrays = GravityNodeArrays(
            mass=arrays["mass"],
            centroid=arrays["centroid"],
            open_radius_sq=arrays["open_radius_sq"],
            quad=arrays.get("quad"),
        )
        return cls(tree, node_arrays, G=config["G"], softening=config["softening"],
                   with_potential=config["with_potential"])

    def exec_collect(self, tree: Tree, targets: np.ndarray) -> dict[str, np.ndarray]:
        rows = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        out = {"accel": self.accel[rows]}
        if self.potential is not None:
            out["potential"] = self.potential[rows]
        return out

    def exec_apply(self, tree: Tree, targets: np.ndarray, outputs: dict[str, np.ndarray]) -> None:
        rows = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        self.accel[rows] = outputs["accel"]
        if self.potential is not None:
            self.potential[rows] = outputs["potential"]

    # -- scalar interface (paper Fig 7) -------------------------------------
    def open(self, source: SpatialNode, target: SpatialNode) -> bool:
        c = self.arrays.centroid[source.index]
        rsq = self.arrays.open_radius_sq[source.index]
        box = target.tree
        return bool(
            boxes_intersect_sphere(
                box.box_lo[target.index], box.box_hi[target.index], c, rsq
            )
        )

    def node(self, source: SpatialNode, target: SpatialNode) -> None:
        self._apply_node(source.index, self._target_particles(target))

    def leaf(self, source: SpatialNode, target: SpatialNode) -> None:
        self._apply_leaf(source.index, self._target_particles(target))

    # -- batched over targets (transposed engine) ----------------------------
    def open_batch(self, tree: Tree, source: int, targets: np.ndarray) -> np.ndarray:
        return boxes_intersect_sphere(
            tree.box_lo[targets],
            tree.box_hi[targets],
            self.arrays.centroid[source],
            self.arrays.open_radius_sq[source],
        )

    def node_batch(self, tree: Tree, source: int, targets: np.ndarray) -> None:
        idx = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        self._apply_node(source, idx)

    def leaf_batch(self, tree: Tree, source: int, targets: np.ndarray) -> None:
        idx = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        self._apply_leaf(source, idx)

    # -- batched over (source, target) pairs (batched engine) ----------------
    # Whole-frontier kernels from repro.trees.kernels: one call per level
    # instead of one per node.  The quadrupole path keeps the grouped default
    # (it reuses the per-source quadrupole_accel kernel).

    def open_pairs(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        from ...trees.kernels import mac_open_pairs

        return mac_open_pairs(
            tree.box_lo[targets],
            tree.box_hi[targets],
            self.arrays.centroid[sources],
            self.arrays.open_radius_sq[sources],
        )

    def node_pairs(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        if self.arrays.quad is not None:
            super().node_pairs(tree, sources, targets)
            return
        from ...trees.kernels import (
            accumulate_monopole,
            accumulate_monopole_potential,
            expand_pair_rows,
        )

        rows, pair = expand_pair_rows(tree.pstart[targets], tree.pend[targets])
        if not rows.size:
            return
        src = sources[pair]
        pos = tree.particles.position[rows]
        accumulate_monopole(
            self.accel, rows, pos, self.arrays.centroid[src],
            self.arrays.mass[src], self.G, self.softening,
        )
        if self.potential is not None:
            accumulate_monopole_potential(
                self.potential, rows, pos, self.arrays.centroid[src],
                self.arrays.mass[src], self.G, self.softening,
            )

    def leaf_pairs(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        from ...trees.kernels import (
            accumulate_pp,
            accumulate_pp_potential,
            expand_pair_products,
        )

        t_rows, s_rows = expand_pair_products(
            tree.pstart[targets], tree.pend[targets],
            tree.pstart[sources], tree.pend[sources],
        )
        if not t_rows.size:
            return
        accumulate_pp(
            self.accel, t_rows, s_rows, tree.particles.position,
            tree.particles.mass, self.G, self.softening,
        )
        if self.potential is not None:
            accumulate_pp_potential(
                self.potential, t_rows, s_rows, tree.particles.position,
                tree.particles.mass, self.G, self.softening,
            )

    # -- batched over sources (per-bucket engine) ----------------------------
    def open_sources(self, tree: Tree, sources: np.ndarray, target: int) -> np.ndarray:
        return spheres_intersect_box(
            self.arrays.centroid[sources],
            self.arrays.open_radius_sq[sources],
            tree.box_lo[target],
            tree.box_hi[target],
        )

    def node_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        idx = np.arange(tree.pstart[target], tree.pend[target])
        pos = tree.particles.position[idx]
        if self.arrays.quad is not None:
            for s in sources:
                self.accel[idx] += quadrupole_accel(
                    pos,
                    self.arrays.centroid[s],
                    float(self.arrays.mass[s]),
                    self.arrays.quad[s],
                    self.G,
                    self.softening,
                )
        else:
            # All source centroids at once: exact same math as point_mass_accel
            # summed over sources.
            self.accel[idx] += pairwise_accel(
                pos,
                self.arrays.centroid[sources],
                self.arrays.mass[sources],
                self.G,
                self.softening,
            )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                pos,
                self.arrays.centroid[sources],
                self.arrays.mass[sources],
                self.G,
                self.softening,
            )

    def leaf_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        idx = np.arange(tree.pstart[target], tree.pend[target])
        src_idx = ranges_to_indices(tree.pstart[sources], tree.pend[sources])
        self.accel[idx] += pairwise_accel(
            tree.particles.position[idx],
            tree.particles.position[src_idx],
            tree.particles.mass[src_idx],
            self.G,
            self.softening,
        )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                tree.particles.position[idx],
                tree.particles.position[src_idx],
                tree.particles.mass[src_idx],
                self.G,
                self.softening,
            )

    # -- shared helpers -------------------------------------------------------
    def _target_particles(self, target: SpatialNode) -> np.ndarray:
        return np.arange(
            self.tree.pstart[target.index], self.tree.pend[target.index]
        )

    def _apply_node(self, source: int, idx: np.ndarray) -> None:
        pos = self.tree.particles.position[idx]
        if self.arrays.quad is not None:
            acc = quadrupole_accel(
                pos,
                self.arrays.centroid[source],
                float(self.arrays.mass[source]),
                self.arrays.quad[source],
                self.G,
                self.softening,
            )
        else:
            acc = point_mass_accel(
                pos,
                self.arrays.centroid[source],
                float(self.arrays.mass[source]),
                self.G,
                self.softening,
            )
        self.accel[idx] += acc
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                pos,
                self.arrays.centroid[source][None, :],
                np.array([self.arrays.mass[source]]),
                self.G,
                self.softening,
            )

    def _apply_leaf(self, source: int, idx: np.ndarray) -> None:
        s, e = int(self.tree.pstart[source]), int(self.tree.pend[source])
        self.accel[idx] += pairwise_accel(
            self.tree.particles.position[idx],
            self.tree.particles.position[s:e],
            self.tree.particles.mass[s:e],
            self.G,
            self.softening,
        )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                self.tree.particles.position[idx],
                self.tree.particles.position[s:e],
                self.tree.particles.mass[s:e],
                self.G,
                self.softening,
            )
