"""Spatial tree structures and builders.

Trees are stored as structures-of-arrays (:class:`Tree`): node topology,
boxes, levels and particle ranges live in flat NumPy arrays so traversals can
evaluate opening criteria over batches of nodes at once.  Builders permute
the particle set into *tree order* (particles of any node are contiguous),
which is what makes leaf buckets pure array slices.

Built-in tree types (selected via :class:`TreeType`):

* ``oct``     — octree over the cubified universe box (branch factor 8),
* ``kd``      — k-d tree cycling the split axis, median particle splits,
* ``longest`` — longest-dimension binary tree (paper §IV-B): always split
  the longest axis of the node's box at the median particle.
"""

from .node import SpatialNode, Tree
from .build import TreeBuildConfig, TreeType, build_tree
from .build_oct import build_octree
from .build_binary import build_kd_tree, build_longest_dim_tree
from .linear import build_octree_linear
from .validate import check_tree_invariants

__all__ = [
    "SpatialNode",
    "Tree",
    "TreeBuildConfig",
    "TreeType",
    "build_tree",
    "build_octree",
    "build_octree_linear",
    "build_kd_tree",
    "build_longest_dim_tree",
    "check_tree_invariants",
]
