"""Two-point correlation / dual-tree pair counting."""

import numpy as np
import pytest

from repro.apps.correlation import (
    PairCountVisitor,
    brute_force_pair_counts,
    pair_counts,
    two_point_correlation,
)
from repro.particles import ParticleSet, clustered_clumps, uniform_cube
from repro.trees import build_tree


class TestPairCounts:
    @pytest.mark.parametrize("dist,seed", [("uniform", 1), ("clustered", 2)])
    def test_matches_brute_force(self, dist, seed):
        gen = uniform_cube if dist == "uniform" else clustered_clumps
        p = gen(700, seed=seed)
        edges = np.array([0.01, 0.03, 0.08, 0.2, 0.5, 1.2])
        counts, _, _ = pair_counts(p, edges)
        assert np.array_equal(counts, brute_force_pair_counts(p.position, edges))

    def test_total_bounded_by_all_pairs(self):
        p = uniform_cube(300, seed=3)
        edges = np.array([0.0, 10.0])  # everything lands in one bin
        counts, _, _ = pair_counts(p, edges)
        assert counts[0] == 300 * 299  # ordered pairs, self excluded

    def test_wholesale_pruning_happens(self):
        p = uniform_cube(1000, seed=4)
        edges = np.array([0.0, 2.0])  # one huge bin: everything prunable
        counts, visitor, stats = pair_counts(p, edges)
        assert counts[0] == 1000 * 999
        assert visitor.wholesale_pairs > 0.9 * counts[0]
        # the dual tree should have touched far fewer than N^2 pairs exactly
        assert stats.pp_interactions < 0.2 * 1000 * 1000

    def test_out_of_range_pairs_dropped(self):
        pos = np.array([[0.0, 0, 0], [0.5, 0, 0], [10.0, 0, 0]])
        p = ParticleSet(pos)
        edges = np.array([0.1, 1.0])
        counts, _, _ = pair_counts(p, edges, bucket_size=1)
        assert counts[0] == 2  # only the (0,1)/(1,0) pair is in range

    def test_prebuilt_tree_accepted(self):
        p = uniform_cube(200, seed=5)
        tree = build_tree(p, tree_type="oct", bucket_size=8)
        edges = np.array([0.05, 0.2, 0.8])
        counts, _, _ = pair_counts(tree, edges)
        assert np.array_equal(counts, brute_force_pair_counts(tree.particles.position, edges))

    @pytest.mark.parametrize(
        "edges",
        [np.array([0.5]), np.array([0.5, 0.4]), np.array([-0.1, 0.5])],
    )
    def test_edge_validation(self, edges):
        p = uniform_cube(50, seed=6)
        tree = build_tree(p, tree_type="kd", bucket_size=8)
        with pytest.raises(ValueError):
            PairCountVisitor(tree, edges)


class TestCorrelation:
    def test_clustered_has_positive_small_scale_xi(self):
        res = two_point_correlation(
            clustered_clumps(1200, seed=7),
            np.array([0.01, 0.05, 0.15, 0.5, 1.0]),
            seed=1,
        )
        assert res.xi[0] > 5.0        # strong clustering at small separations
        assert abs(res.xi[-1]) < 1.0  # decorrelates at large separations
        assert res.dd.sum() > 0 and res.rr.sum() > 0

    def test_uniform_xi_near_zero(self):
        res = two_point_correlation(
            uniform_cube(1200, seed=8),
            np.array([0.05, 0.15, 0.4, 0.9]),
            seed=2,
        )
        assert np.nanmax(np.abs(res.xi)) < 0.5
