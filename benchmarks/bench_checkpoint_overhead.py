"""Checkpoint overhead: the gravity Driver pipeline with checkpointing
off, every iteration, and every other iteration.

The acceptance bar for the resilience layer mirrors the telemetry one:
**zero** cost when disabled (the seed path never touches
``repro.resilience``; ``Driver.run`` only checks one ``is not None``), and
bounded, interval-scaled cost when enabled (state capture + CRC checksums +
compressed npz write + rotation).  The in-memory buddy commit is measured
separately — it is the double-checkpoint path a real Charm++ run would use
between disk epochs.

Run ``pytest benchmarks/bench_checkpoint_overhead.py --benchmark-only -s``.
"""

import numpy as np

from repro.apps.gravity import GravityDriver
from repro.bench import format_table, print_banner
from repro.core import Configuration
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.resilience import BuddyStore, capture_run, checkpoint_to_bytes

ITERATIONS = 4


def _driver(n, iterations=ITERATIONS, dt=1e-3):
    p = clustered_clumps(n, seed=13)

    class Main(GravityDriver):
        def create_particles(self, config):
            return p.copy()

    cfg = Configuration(num_iterations=iterations, num_partitions=16,
                        num_subtrees=16)
    return Main(cfg, theta=0.7, softening=1e-3, dt=dt)


@perf_benchmark("resilience.ckpt_disabled", group="resilience",
                description="gravity Driver, checkpointing disabled (seed path)")
def perf_ckpt_disabled(quick=False):
    n = 1_500 if quick else 6_000

    def run():
        driver = _driver(n)
        driver.run()
        return {"iterations": len(driver.reports)}

    return run


@perf_benchmark("resilience.ckpt_every1", group="resilience",
                description="gravity Driver, checkpoint written every iteration")
def perf_ckpt_every1(quick=False):
    import tempfile

    n = 1_500 if quick else 6_000

    def run():
        with tempfile.TemporaryDirectory() as d:
            driver = _driver(n)
            writer = driver.enable_checkpointing(d, every=1)
            driver.run()
            return {"checkpoints": len(writer.written)}

    return run


@perf_benchmark("resilience.buddy_commit", group="resilience",
                description="in-memory serialize + buddy-store commit of one checkpoint")
def perf_buddy_commit(quick=False):
    driver = _driver(1_500 if quick else 6_000, iterations=1)
    driver.run()
    store = BuddyStore(8)

    def run():
        blob = checkpoint_to_bytes(capture_run(driver, next_iteration=1))
        store.commit(0, blob)
        return {"blob_bytes": len(blob)}

    return run


def test_checkpoint_interval_cost(benchmark, tmp_path):
    """Wall-clock by checkpoint interval; disabled must be the floor."""
    import time

    n = 4_000

    def timed(every):
        driver = _driver(n)
        if every:
            driver.enable_checkpointing(tmp_path / f"every{every}", every=every)
        t0 = time.perf_counter()
        driver.run()
        return time.perf_counter() - t0, driver

    def sweep():
        out = []
        for every in (0, 2, 1):
            secs, driver = timed(every)
            n_ckpts = 0 if not every else ITERATIONS // every
            out.append((every or "off", f"{secs * 1e3:.1f}", n_ckpts))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_banner(f"checkpoint overhead (gravity, n={n}, {ITERATIONS} iterations)")
    print(format_table(["every", "run ms", "checkpoints"], rows))
    # The disabled run must not regress: it writes nothing and never
    # imports the resilience package.
    assert rows[0][2] == 0
    assert rows[2][2] == ITERATIONS


def test_disabled_run_is_bit_identical_to_checkpointed(tmp_path):
    """Checkpointing only *observes* state: a run that writes checkpoints
    produces the same physics as one that doesn't."""
    a = _driver(1_200)
    a.run()
    b = _driver(1_200)
    b.enable_checkpointing(tmp_path, every=1)
    b.run()
    np.testing.assert_array_equal(a.particles.position, b.particles.position)
    np.testing.assert_array_equal(a.accelerations, b.accelerations)
