"""Cache-hierarchy simulator: LRU mechanics, hierarchy walk, trace replay."""

import numpy as np
import pytest

from repro.memsim import (
    CacheHierarchy,
    CacheLevel,
    DataLayout,
    MemoryTraceRecorder,
    profile_traversal_style,
    replay_trace,
    skx_hierarchy,
)
from repro.memsim.trace import interleave_traces
from repro.particles import uniform_cube
from repro.trees import build_tree


class TestCacheLevel:
    def test_cold_miss_then_hit(self):
        c = CacheLevel("L1", 1024, 2, 64)
        assert not c.access_line(0, False)
        assert c.access_line(0, False)
        assert c.stats.load_accesses == 2
        assert c.stats.load_misses == 1

    def test_lru_eviction(self):
        # 1024 B / 2 ways / 64 B lines -> 8 sets; lines 0, 8, 16 share set 0
        c = CacheLevel("L1", 1024, 2, 64)
        c.access_line(0, False)
        c.access_line(8, False)
        c.access_line(16, False)  # evicts 0 (LRU)
        assert not c.access_line(0, False)
        assert c.access_line(16, False)

    def test_lru_updated_on_hit(self):
        c = CacheLevel("L1", 1024, 2, 64)
        c.access_line(0, False)
        c.access_line(8, False)
        c.access_line(0, False)   # 0 becomes MRU
        c.access_line(16, False)  # evicts 8, not 0
        assert c.access_line(0, False)
        assert not c.access_line(8, False)

    def test_store_counters(self):
        c = CacheLevel("L1", 1024, 2, 64)
        c.access_line(0, True)
        c.access_line(0, True)
        assert c.stats.store_accesses == 2
        assert c.stats.store_misses == 1
        assert c.stats.store_miss_rate == 0.5
        assert c.stats.load_miss_rate == 0.0

    def test_capacity_exact(self):
        """A working set exactly the cache size never misses after warmup."""
        c = CacheLevel("L1", 4096, 4, 64)  # 64 lines
        for rep in range(3):
            for line in range(64):
                c.access_line(line, False)
        assert c.stats.load_misses == 64  # only cold misses

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 1000, 3, 64)

    def test_contents_and_reset(self):
        c = CacheLevel("L1", 1024, 2, 64)
        c.access_line(5, False)
        assert 5 in c.contents()
        c.reset()
        assert c.contents() == set()
        assert c.stats.accesses == 0


class TestHierarchy:
    def test_miss_cascades(self):
        h = CacheHierarchy(1, l1=(1024, 2), l2=(4096, 4), l3=(16384, 8))
        h.access(0, 100, False)
        st = h.stats()
        assert st.l1.load_misses == 1
        assert st.l2.load_misses == 1
        assert st.l3.load_misses == 1
        h.access(0, 100, False)  # L1 hit: lower levels untouched
        st = h.stats()
        assert st.l1.load_accesses == 2
        assert st.l2.load_accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy(1, l1=(1024, 2), l2=(65536, 4), l3=(262144, 8))
        for line in range(64):  # blow L1 (16 lines), stay within L2
            h.access(0, line, False)
        h.access(0, 0, False)  # L1 miss, L2 hit
        st = h.stats()
        assert st.l2.load_accesses == 65
        assert st.l2.load_misses == 64

    def test_shared_l3_private_l1(self):
        h = CacheHierarchy(2, l1=(1024, 2), l2=(4096, 4), l3=(16384, 8))
        h.access(0, 7, False)
        h.access(1, 7, False)  # other CPU: private L1/L2 miss, shared L3 hit
        st = h.stats()
        assert st.l1.load_misses == 2
        assert st.l3.load_accesses == 2
        assert st.l3.load_misses == 1

    def test_skx_geometry(self):
        h = skx_hierarchy(2)
        assert h.l1s[0].size_bytes == 32 * 1024
        assert h.l2s[0].size_bytes == 1024 * 1024
        assert h.l3.ways == 11
        assert h.l3.size_bytes == 33 * 1024 * 1024


class TestDataLayout:
    def test_regions_disjoint(self):
        lay = DataLayout()
        n = lay.node_lines(np.array([0, 1, 2]))
        p = lay.pos_lines(np.array([0]), np.array([100]))
        a = lay.acc_lines(np.array([0]), np.array([100]))
        m = lay.mass_lines(np.array([0]), np.array([100]))
        sets = [set(x.tolist()) for x in (n, p, a, m)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert sets[i].isdisjoint(sets[j])

    def test_node_lines_two_per_node(self):
        lay = DataLayout()  # 128 B nodes on 64 B lines
        lines = lay.node_lines(np.array([3]))
        assert len(lines) == 2

    def test_span_lines_contiguous(self):
        lay = DataLayout()
        lines = lay.pos_lines(np.array([0]), np.array([64]))  # 64 * 24 B = 1536 B
        assert len(lines) == 24
        assert np.all(np.diff(np.sort(lines)) == 1)

    def test_empty_span(self):
        lay = DataLayout()
        assert len(lay.pos_lines(np.array([5]), np.array([5]))) == 0


class TestTraceAndProfile:
    def test_interleave_round_robin(self):
        a = (np.arange(5), np.zeros(5, bool))
        b = (np.arange(100, 103), np.ones(3, bool))
        addrs, writes, cpus = interleave_traces([a, b], chunk=2)
        assert len(addrs) == 8
        assert addrs[:2].tolist() == [0, 1]
        assert addrs[2:4].tolist() == [100, 101]
        assert cpus[:2].tolist() == [0, 0] and cpus[2:4].tolist() == [1, 1]

    def test_recorder_produces_trace(self):
        tree = build_tree(uniform_cube(300, seed=1), tree_type="oct", bucket_size=8)
        from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
        from repro.core import get_traverser

        rec = MemoryTraceRecorder(tree)
        visitor = GravityVisitor(tree, compute_centroid_arrays(tree))
        get_traverser("transposed").traverse(tree, visitor, None, rec)
        addrs, writes = rec.trace()
        assert len(addrs) == rec.n_accesses > 0
        assert writes.dtype == bool and writes.any() and not writes.all()

    def test_max_accesses_truncation(self):
        h = skx_hierarchy(1)
        addrs = np.arange(1000)
        writes = np.zeros(1000, bool)
        replay_trace(h, addrs, writes, max_accesses=100)
        assert h.stats().l1.accesses == 100

    def test_profile_table2_directions(self):
        """The Table II headline at test scale: the transposed style does
        fewer accesses and less estimated runtime than per-bucket."""
        tree = build_tree(uniform_cube(2500, seed=2), tree_type="oct", bucket_size=16)
        t = profile_traversal_style(tree, "transposed", n_cpus=1, cache_scale=16,
                                    buckets_per_partition=48)
        b = profile_traversal_style(tree, "per-bucket", n_cpus=1, cache_scale=16,
                                    buckets_per_partition=48)
        assert t.n_accesses < b.n_accesses
        assert t.runtime_estimate_s < b.runtime_estimate_s

    def test_profile_multi_cpu_divides_runtime(self):
        tree = build_tree(uniform_cube(1500, seed=3), tree_type="oct", bucket_size=16)
        one = profile_traversal_style(tree, "transposed", n_cpus=1, cache_scale=16)
        four = profile_traversal_style(tree, "transposed", n_cpus=4, cache_scale=16)
        assert four.runtime_estimate_s < one.runtime_estimate_s


class TestTraceEdgeCases:
    def test_scratch_window_wraps(self):
        from repro.memsim.trace import _SCRATCH_LINES, MemoryTraceRecorder
        from repro.particles import ParticleSet

        tree = build_tree(
            ParticleSet(np.random.default_rng(0).uniform(0, 1, (100, 3))),
            tree_type="kd", bucket_size=8,
        )
        rec = MemoryTraceRecorder(tree)
        lines1 = rec._scratch(10)
        lines2 = rec._scratch(_SCRATCH_LINES)
        # the window is bounded: all addresses fall in one small region
        all_lines = np.concatenate([lines1, lines2])
        assert all_lines.max() - all_lines.min() < _SCRATCH_LINES

    def test_large_stride_objects_cover_all_lines(self):
        from repro.memsim.trace import DataLayout

        lay = DataLayout(node_stride=256)  # 4 lines per node
        lines = lay.node_lines(np.array([1]))
        assert len(lines) == 4
        assert np.all(np.diff(np.sort(lines)) == 1)

    def test_interleave_empty_traces(self):
        from repro.memsim.trace import interleave_traces

        addrs, writes, cpus = interleave_traces([])
        assert len(addrs) == len(writes) == len(cpus) == 0

    def test_interleave_uneven_lengths(self):
        from repro.memsim.trace import interleave_traces

        a = (np.arange(10), np.zeros(10, bool))
        b = (np.arange(100, 103), np.ones(3, bool))
        addrs, writes, cpus = interleave_traces([a, b], chunk=4)
        assert len(addrs) == 13
        # the shorter trace ends; the longer one keeps going alone
        assert addrs[-1] == 9
        assert set(np.unique(cpus)) == {0, 1}

    def test_batched_flag_changes_volume(self):
        """Node-at-a-time kernels re-touch target buckets, so the unbatched
        trace is strictly larger for the same traversal."""
        from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
        from repro.core import get_traverser
        from repro.memsim.trace import MemoryTraceRecorder
        from repro.particles import uniform_cube

        tree = build_tree(uniform_cube(600, seed=4), tree_type="oct", bucket_size=8)
        arrays = compute_centroid_arrays(tree)
        engine = get_traverser("per-bucket")
        volumes = {}
        for batched in (True, False):
            rec = MemoryTraceRecorder(tree, batched_kernels=batched)
            engine.traverse(tree, GravityVisitor(tree, arrays), None, rec)
            volumes[batched] = rec.n_accesses
        assert volumes[False] > volumes[True]
