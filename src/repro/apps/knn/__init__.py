"""k-nearest-neighbour searches on spatial trees.

The paper's motivating second workload (§I) and the neighbour engine behind
its SPH application (§III-B): ParaTreeT fetches "a fixed number of
neighbors using the k-nearest neighbors algorithm" with an up-and-down
traversal whose pruning radius tightens as closer neighbours are found.

Also provides fixed-radius ball searches — both as a building block for
collision detection and as the primitive of the Gadget-2-style
smoothing-length iteration baseline.
"""

from .knn import KNNResult, KNNVisitor, knn_search, brute_force_knn
from .balls import BallSearchVisitor, ball_search, brute_force_ball
from .driver import KNNDriver

__all__ = [
    "KNNDriver",
    "KNNResult",
    "KNNVisitor",
    "knn_search",
    "brute_force_knn",
    "BallSearchVisitor",
    "ball_search",
    "brute_force_ball",
]
