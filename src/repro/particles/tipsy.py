"""Tipsy binary snapshot format (the ChaNGa/Gadget-lineage input format).

The paper's ``Configuration`` takes an ``input_file``; the upstream project
reads tipsy, the standard N-body exchange format of the ChaNGa ecosystem.
This module reads and writes the classic big-endian "standard" tipsy
layout:

header:  double time; int nbodies, ndim, nsph, ndark, nstar; int pad
gas:     float mass, pos[3], vel[3], rho, temp, hsmooth, metals, phi
dark:    float mass, pos[3], vel[3], eps, phi
star:    float mass, pos[3], vel[3], metals, tform, eps, phi

Gas and star extras are preserved as ParticleSet fields; a ``ptype`` field
(0 gas, 1 dark, 2 star) tags the species.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from .particles import ParticleSet

__all__ = ["save_tipsy", "load_tipsy"]

_HEADER = struct.Struct(">diiiiii")  # time, nbodies, ndim, nsph, ndark, nstar, pad

_GAS = np.dtype(
    [("mass", ">f4"), ("pos", ">f4", 3), ("vel", ">f4", 3), ("rho", ">f4"),
     ("temp", ">f4"), ("hsmooth", ">f4"), ("metals", ">f4"), ("phi", ">f4")]
)
_DARK = np.dtype(
    [("mass", ">f4"), ("pos", ">f4", 3), ("vel", ">f4", 3), ("eps", ">f4"),
     ("phi", ">f4")]
)
_STAR = np.dtype(
    [("mass", ">f4"), ("pos", ">f4", 3), ("vel", ">f4", 3), ("metals", ">f4"),
     ("tform", ">f4"), ("eps", ">f4"), ("phi", ">f4")]
)


def save_tipsy(path: str | os.PathLike, particles: ParticleSet, time: float = 0.0) -> None:
    """Write a ParticleSet as a standard tipsy snapshot.

    Species come from the ``ptype`` field (0 gas, 1 dark, 2 star);
    without one, everything is written as dark matter.  Optional fields
    (``density``→rho, ``temperature``→temp, ``h``→hsmooth, ``softening``→
    eps, ``potential``→phi) are carried when present.
    """
    n = len(particles)
    ptype = particles.ptype if particles.has_field("ptype") else np.ones(n, dtype=np.int8)
    gas_idx = np.flatnonzero(ptype == 0)
    dark_idx = np.flatnonzero(ptype == 1)
    star_idx = np.flatnonzero(ptype == 2)
    if len(gas_idx) + len(dark_idx) + len(star_idx) != n:
        raise ValueError("ptype must be 0 (gas), 1 (dark) or 2 (star) for tipsy")

    def field_or_zero(name: str, idx: np.ndarray) -> np.ndarray:
        if particles.has_field(name):
            return particles[name][idx]
        return np.zeros(len(idx))

    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(time, n, 3, len(gas_idx), len(dark_idx), len(star_idx), 0))
        if len(gas_idx):
            rec = np.zeros(len(gas_idx), dtype=_GAS)
            rec["mass"] = particles.mass[gas_idx]
            rec["pos"] = particles.position[gas_idx]
            rec["vel"] = particles.velocity[gas_idx]
            rec["rho"] = field_or_zero("density", gas_idx)
            rec["temp"] = field_or_zero("temperature", gas_idx)
            rec["hsmooth"] = field_or_zero("h", gas_idx)
            rec["metals"] = field_or_zero("metals", gas_idx)
            rec["phi"] = field_or_zero("potential", gas_idx)
            fh.write(rec.tobytes())
        if len(dark_idx):
            rec = np.zeros(len(dark_idx), dtype=_DARK)
            rec["mass"] = particles.mass[dark_idx]
            rec["pos"] = particles.position[dark_idx]
            rec["vel"] = particles.velocity[dark_idx]
            rec["eps"] = field_or_zero("softening", dark_idx)
            rec["phi"] = field_or_zero("potential", dark_idx)
            fh.write(rec.tobytes())
        if len(star_idx):
            rec = np.zeros(len(star_idx), dtype=_STAR)
            rec["mass"] = particles.mass[star_idx]
            rec["pos"] = particles.position[star_idx]
            rec["vel"] = particles.velocity[star_idx]
            rec["metals"] = field_or_zero("metals", star_idx)
            rec["tform"] = field_or_zero("tform", star_idx)
            rec["eps"] = field_or_zero("softening", star_idx)
            rec["phi"] = field_or_zero("potential", star_idx)
            fh.write(rec.tobytes())


def load_tipsy(path: str | os.PathLike) -> tuple[ParticleSet, float]:
    """Read a standard tipsy snapshot -> (ParticleSet, time).

    Species order is gas, dark, star (the on-disk order); the returned set
    carries ``ptype`` plus the per-species extras.
    """
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise ValueError(f"{path}: truncated tipsy header")
        time, nbodies, ndim, nsph, ndark, nstar = _HEADER.unpack(raw)[:6]
        if ndim != 3:
            raise ValueError(f"{path}: expected 3-D tipsy file, got ndim={ndim}")
        if nsph + ndark + nstar != nbodies:
            raise ValueError(f"{path}: inconsistent tipsy header counts")
        gas = np.frombuffer(fh.read(_GAS.itemsize * nsph), dtype=_GAS, count=nsph)
        dark = np.frombuffer(fh.read(_DARK.itemsize * ndark), dtype=_DARK, count=ndark)
        star = np.frombuffer(fh.read(_STAR.itemsize * nstar), dtype=_STAR, count=nstar)
        if len(gas) != nsph or len(dark) != ndark or len(star) != nstar:
            raise ValueError(f"{path}: truncated particle records")

    pos = np.concatenate([
        gas["pos"].astype(np.float64).reshape(-1, 3),
        dark["pos"].astype(np.float64).reshape(-1, 3),
        star["pos"].astype(np.float64).reshape(-1, 3),
    ]) if nbodies else np.empty((0, 3))
    vel = np.concatenate([
        gas["vel"].astype(np.float64).reshape(-1, 3),
        dark["vel"].astype(np.float64).reshape(-1, 3),
        star["vel"].astype(np.float64).reshape(-1, 3),
    ]) if nbodies else np.empty((0, 3))
    mass = np.concatenate([
        gas["mass"].astype(np.float64),
        dark["mass"].astype(np.float64),
        star["mass"].astype(np.float64),
    ]) if nbodies else np.empty(0)
    ptype = np.concatenate([
        np.zeros(nsph, dtype=np.int8),
        np.ones(ndark, dtype=np.int8),
        np.full(nstar, 2, dtype=np.int8),
    ]) if nbodies else np.empty(0, dtype=np.int8)

    def padded(arr: np.ndarray, before: int, after: int) -> np.ndarray:
        return np.concatenate([np.zeros(before), arr.astype(np.float64), np.zeros(after)])

    extras = {
        "ptype": ptype,
        "density": padded(gas["rho"], 0, ndark + nstar),
        "temperature": padded(gas["temp"], 0, ndark + nstar),
        "h": padded(gas["hsmooth"], 0, ndark + nstar),
        "softening": np.concatenate([
            np.zeros(nsph), dark["eps"].astype(np.float64), star["eps"].astype(np.float64)
        ]),
        "potential": np.concatenate([
            gas["phi"].astype(np.float64),
            dark["phi"].astype(np.float64),
            star["phi"].astype(np.float64),
        ]),
    }
    return ParticleSet(pos, vel, mass, **extras), float(time)
