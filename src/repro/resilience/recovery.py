"""Crash-recovery accounting for the DES runtime.

When ``crash=P@R`` fires in the communication simulator, the crashed
process loses real state — warm cache lines, in-flight responses, queued
worker tasks — and recovery has a real cost: the restart window, then a
buddy-checkpoint fetch (request latency + serialization + injection
bandwidth + return latency) and a local deserialize before the process is
whole again.  These dataclasses carry that accounting out of the simulator:
one :class:`CrashRecovery` per crash event, aggregated into the
:class:`RecoveryReport` attached to ``SimResult.recovery`` (and therefore
to ``IterationReport.comm_sim["recovery"]`` on driver fault replays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["CrashRecovery", "RecoveryReport"]


@dataclass
class CrashRecovery:
    """What one crash destroyed and what its recovery cost.

    All times are on the simulated clock.  ``recovered_at`` is set when the
    buddy checkpoint has been fetched and deserialized; until then the
    event is still in recovery (a crash near the end of an iteration can
    finish recovering after the last bucket completes, in which case
    ``recovered_at`` stays at the restart boundary recorded by the sim).
    """

    process: int
    #: rank holding the checkpoint replica (None on single-process runs,
    #: which reload their own local copy and pay deserialize time only)
    buddy: int | None
    crashed_at: float
    restart_delay: float
    #: warm cache lines forgotten by the crash (each will be re-requested)
    lost_cache_lines: int
    #: bytes of cached fill data those lines held
    lost_bytes: float
    #: outstanding fetches whose responses the crash orphaned
    requests_in_flight: int
    #: queued worker tasks stalled through the restart window
    tasks_reissued: int
    #: size of the per-rank checkpoint blob (subtree payload homed there)
    checkpoint_bytes: float
    #: bytes actually pulled over the wire from the buddy (0 for local)
    bytes_refetched: float = 0.0
    recovered_at: float | None = None

    @property
    def recovery_time(self) -> float:
        """Crash to fully-recovered span (falls back to the restart window
        when the simulation ended before recovery completed)."""
        if self.recovered_at is not None:
            return self.recovered_at - self.crashed_at
        return self.restart_delay

    def to_dict(self) -> dict[str, Any]:
        return {
            "process": int(self.process),
            "buddy": None if self.buddy is None else int(self.buddy),
            "crashed_at": float(self.crashed_at),
            "restart_delay": float(self.restart_delay),
            "lost_cache_lines": int(self.lost_cache_lines),
            "lost_bytes": float(self.lost_bytes),
            "requests_in_flight": int(self.requests_in_flight),
            "tasks_reissued": int(self.tasks_reissued),
            "checkpoint_bytes": float(self.checkpoint_bytes),
            "bytes_refetched": float(self.bytes_refetched),
            "recovered_at": None if self.recovered_at is None else float(self.recovered_at),
            "recovery_time": float(self.recovery_time),
        }


@dataclass
class RecoveryReport:
    """Aggregate of every crash-recovery event in one simulated iteration."""

    events: list[CrashRecovery] = field(default_factory=list)

    @property
    def n_crashes(self) -> int:
        return len(self.events)

    @property
    def lost_cache_lines(self) -> int:
        return sum(e.lost_cache_lines for e in self.events)

    @property
    def lost_bytes(self) -> float:
        return sum(e.lost_bytes for e in self.events)

    @property
    def bytes_refetched(self) -> float:
        return sum(e.bytes_refetched for e in self.events)

    @property
    def tasks_reissued(self) -> int:
        return sum(e.tasks_reissued for e in self.events)

    @property
    def recovery_time(self) -> float:
        """Total simulated time spent in recovery, summed over events."""
        return sum(e.recovery_time for e in self.events)

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_crashes": self.n_crashes,
            "lost_cache_lines": self.lost_cache_lines,
            "lost_bytes": self.lost_bytes,
            "bytes_refetched": self.bytes_refetched,
            "tasks_reissued": self.tasks_reissued,
            "recovery_time": self.recovery_time,
            "events": [e.to_dict() for e in self.events],
        }
