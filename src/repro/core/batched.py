"""Level-synchronous batched traversal: the whole frontier as pair arrays.

Where :class:`~repro.core.topdown.TransposedTraverser` walks source nodes
one at a time (each against a target batch), this engine keeps the *entire*
active frontier as flat ``(source, target)`` index arrays and advances all
pairs one level per iteration.  Every visitor decision then happens in a
handful of whole-frontier numpy (or numba — see :mod:`repro.trees.kernels`)
calls instead of one Python-level call per tree node.

The visit *set* is identical to the other engines (same pruning semantics);
only the batching differs.  Within a level the engine processes closed
pairs, then leaf pairs, then expands internal pairs — and pair order within
a level is a stable function of the previous level's order, so per-target
results are independent of which other targets share the frontier.  That
makes the engine bit-identical across exec backends and worker counts
(chunking targets only removes rows from the pair arrays of *other*
targets).
"""

from __future__ import annotations

import numpy as np

from ..trees import Tree
from .traverser import Recorder, TraversalStats, Traverser, register_traverser
from .util import ranges_to_indices
from .visitor import Visitor, _group_pairs_by_source

__all__ = ["BatchedTraverser"]


class BatchedTraverser(Traverser):
    """Breadth-first over the whole (source, target) pair frontier."""

    name = "batched"

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        targets = self._resolve_targets(tree, targets)
        stats = TraversalStats(targets=len(targets))
        if not targets.size:
            return stats
        first_child = tree.first_child
        n_children = tree.n_children
        counts = tree.pend - tree.pstart

        S = np.full(targets.size, tree.root, dtype=np.int64)
        T = targets.astype(np.int64, copy=True)
        while S.size:
            # Each distinct source node is touched once per level.
            stats.nodes_visited += int(np.unique(S).size)
            stats.opens += int(S.size)
            if recorder is not None:
                self._record(tree, recorder.on_open, S, T)
            mask = np.asarray(visitor.open_pairs(tree, S, T), dtype=bool)

            closed_s, closed_t = S[~mask], T[~mask]
            if closed_s.size:
                stats.node_interactions += int(closed_s.size)
                stats.pn_interactions += int(counts[closed_t].sum())
                if recorder is not None:
                    self._record(tree, recorder.on_node, closed_s, closed_t)
                visitor.node_pairs(tree, closed_s, closed_t)

            open_s, open_t = S[mask], T[mask]
            if not open_s.size:
                break
            leaf_mask = first_child[open_s] == -1
            leaf_s, leaf_t = open_s[leaf_mask], open_t[leaf_mask]
            if leaf_s.size:
                stats.leaf_interactions += int(leaf_s.size)
                stats.pp_interactions += int((counts[leaf_s] * counts[leaf_t]).sum())
                if recorder is not None:
                    self._record(tree, recorder.on_leaf, leaf_s, leaf_t)
                visitor.leaf_pairs(tree, leaf_s, leaf_t)

            int_s, int_t = open_s[~leaf_mask], open_t[~leaf_mask]
            nc = n_children[int_s]
            S = ranges_to_indices(first_child[int_s], first_child[int_s] + nc)
            T = np.repeat(int_t, nc)
        return stats

    @staticmethod
    def _record(tree: Tree, callback, sources: np.ndarray, targets: np.ndarray) -> None:
        # Recorders expect outer-product semantics with one singleton side;
        # group the pair frontier by source (stable in source order) so each
        # target's recorded source sequence is deterministic per level.
        for src, idx in _group_pairs_by_source(sources):
            callback(tree, np.array([src]), targets[idx])


register_traverser(BatchedTraverser.name, BatchedTraverser)
