"""Tree-build configuration and dispatch.

Mirrors the paper's ``Configuration`` knobs ``tree_type`` and bucket size.
User-defined tree types plug in through the same interface the built-ins use
(a callable ``(particles, config) -> Tree``); see
:func:`register_tree_type`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from ..particles import ParticleSet
from .node import Tree

__all__ = ["TreeType", "TreeBuildConfig", "build_tree", "register_tree_type"]


class TreeType(str, Enum):
    """Built-in tree types (paper: ``TreeType::eOct`` etc.)."""

    OCT = "oct"
    KD = "kd"
    LONGEST_DIM = "longest"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class TreeBuildConfig:
    """Parameters of a tree build.

    Attributes
    ----------
    tree_type:
        Which subdivision strategy to use.
    bucket_size:
        Maximum particles per leaf; recursion stops below this.
    max_depth:
        Safety cap on tree depth (duplicated particles otherwise recurse
        forever in binary trees).
    tight_boxes:
        When true, each node's box is shrunk to the tight bounds of its own
        particles (improves pruning; octree keys still follow the geometric
        boxes).
    builder:
        Construction algorithm: ``"recursive"`` (the node-at-a-time stack
        walk) or ``"linear"`` (the vectorised level-by-level builder of
        :mod:`repro.trees.linear`).  Both produce byte-identical trees; the
        switch only trades build time.  Binary tree types always use their
        recursive builder, so ``builder`` is an octree knob.
    """

    tree_type: TreeType | str = TreeType.OCT
    bucket_size: int = 16
    max_depth: int = 60
    tight_boxes: bool = False
    builder: str = "recursive"

    def __post_init__(self) -> None:
        self.tree_type = TreeType(self.tree_type)
        if self.bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {self.bucket_size}")
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.builder not in ("recursive", "linear"):
            raise ValueError(
                f"builder must be 'recursive' or 'linear', got {self.builder!r}"
            )


_BUILDERS: dict[str, Callable[[ParticleSet, TreeBuildConfig], Tree]] = {}


def register_tree_type(name: str, builder: Callable[[ParticleSet, TreeBuildConfig], Tree]) -> None:
    """Register a custom tree type (paper §IV-B: user-defined trees).

    The builder receives the particle set and the config, and must return a
    :class:`Tree` whose particles are permuted to tree order.
    """
    _BUILDERS[name] = builder


def build_tree(particles: ParticleSet, config: TreeBuildConfig | None = None, **kwargs) -> Tree:
    """Build a spatial tree over ``particles`` according to ``config``.

    ``kwargs`` are a convenience for constructing the config inline:
    ``build_tree(p, tree_type="kd", bucket_size=8)``.
    """
    if config is None:
        config = TreeBuildConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config object or keyword overrides, not both")
    if len(particles) == 0:
        raise ValueError("cannot build a tree over zero particles")

    # Imported here to avoid a circular import at module load.
    from ..obs import get_telemetry
    from .build_oct import build_octree
    from .build_binary import build_kd_tree, build_longest_dim_tree
    from .linear import build_octree_linear

    name = str(config.tree_type)
    with get_telemetry().tracer.span(
        "build_tree", cat="trees", tree_type=name, n_particles=len(particles),
        builder=config.builder,
    ):
        if name in _BUILDERS:
            return _BUILDERS[name](particles, config)
        if config.tree_type == TreeType.OCT:
            if config.builder == "linear":
                return build_octree_linear(particles, config)
            return build_octree(particles, config)
        if config.tree_type == TreeType.KD:
            return build_kd_tree(particles, config)
        if config.tree_type == TreeType.LONGEST_DIM:
            return build_longest_dim_tree(particles, config)
        raise ValueError(f"unknown tree type {config.tree_type!r}")
