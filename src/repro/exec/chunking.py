"""Deterministic partitioning of target buckets across workers.

The chunking is the load-distribution half of the backend contract: the
chunks must form an *exact* partition of the target list (every target in
exactly one chunk) and their order must be a pure function of the inputs —
never of scheduling — because the reduction that makes parallel runs
bit-identical to serial walks the chunks in this order.
"""

from __future__ import annotations

import numpy as np

from ..decomp import Decomposition
from ..trees import Tree

__all__ = ["chunk_targets"]


def chunk_targets(
    tree: Tree,
    targets: np.ndarray,
    decomposition: Decomposition | None = None,
    n_chunks: int | None = None,
) -> list[np.ndarray]:
    """Split ``targets`` (leaf indices) into deterministic disjoint chunks.

    With a :class:`~repro.decomp.Decomposition` the split reuses the
    Partitions: each target bucket goes to the partition owning its first
    particle (split buckets belong to several partitions but must be
    traversed exactly once, so one deterministic owner is chosen), and one
    chunk per non-empty partition comes back in partition order.  Without a
    decomposition the targets are sliced into ``n_chunks`` contiguous
    ranges.

    The union of the returned chunks is always exactly ``targets`` with
    each element appearing once.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.size == 0:
        return []
    if decomposition is not None and len(decomposition.partitions) > 1:
        # Owner of a bucket = partition of its first particle; empty
        # buckets (pstart == pend) fall back to partition 0 via clipping.
        first = np.clip(tree.pstart[targets], 0, max(tree.n_particles - 1, 0))
        owner = decomposition.particle_partition[first]
        counts = tree.pend[targets] - tree.pstart[targets]
        owner = np.where(counts > 0, owner, 0)
        chunks = [
            targets[owner == p]
            for p in range(len(decomposition.partitions))
        ]
        return [c for c in chunks if c.size]
    n_chunks = max(int(n_chunks or 1), 1)
    return [c for c in np.array_split(targets, min(n_chunks, targets.size)) if c.size]
