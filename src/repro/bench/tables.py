"""Plain-text table/figure rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_banner", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, xs: Sequence, series: dict[str, Sequence], title: str = "") -> str:
    """A figure rendered as a table: one x column, one column per curve."""
    headers = [x_label] + list(series)
    rows = [[x] + [series[k][i] for k in series] for i, x in enumerate(xs)]
    return format_table(headers, rows, title=title)


def print_banner(text: str) -> None:
    bar = "=" * max(len(text), 20)
    print(f"\n{bar}\n{text}\n{bar}")


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
