"""The benchmark registry: stable IDs for the ``benchmarks/bench_*.py``
workloads.

Each bench script registers its timed workload with the :func:`benchmark`
decorator.  The decorated function is a **setup** function: called with
``quick=...`` it builds the (possibly scaled-down) workload and returns a
zero-argument callable that the harness times — so expensive construction
(particle generation, tree builds, instrumented traversals) never pollutes
the samples, and importing a bench script does no work at all.

::

    from repro.perf import benchmark

    @benchmark("des.fig9_profile", group="des",
               description="Fig 9 DES run with tracing")
    def perf_fig9(quick=False):
        workload = build_gravity_workload(n=6_000 if quick else 25_000, ...)
        def run():
            r = simulate_traversal(workload, ...)
            return {"sim_time": r.time}          # optional extra metrics
        return run

:func:`discover` imports every ``bench_*.py`` under the benchmarks
directory (repo layout or ``$REPRO_BENCH_DIR``), which triggers the
decorators and fills the process-wide registry.
"""

from __future__ import annotations

import fnmatch
import importlib.util
import os
import sys
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = ["BenchmarkDef", "BenchmarkRegistry", "benchmark", "get_registry", "discover"]


@dataclass(frozen=True)
class BenchmarkDef:
    """One registered benchmark: a stable ID plus its setup function."""

    id: str
    fn: Callable[..., Callable[[], object]]
    group: str = "general"
    description: str = ""
    repeats: int = 5
    quick_repeats: int = 3
    warmup: int = 1
    source: str = ""


class BenchmarkRegistry:
    """Keyed collection of :class:`BenchmarkDef`, iterated in ID order."""

    def __init__(self) -> None:
        self._defs: dict[str, BenchmarkDef] = {}

    def register(self, d: BenchmarkDef) -> BenchmarkDef:
        # Last registration wins: the same script may be imported both by
        # pytest (as a top-level module) and by discover() (under the
        # _repro_bench namespace); both register identical definitions.
        self._defs[d.id] = d
        return d

    def get(self, bench_id: str) -> BenchmarkDef:
        try:
            return self._defs[bench_id]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {bench_id!r}; known: {', '.join(self.ids()) or '(none)'}"
            ) from None

    def ids(self) -> list[str]:
        return sorted(self._defs)

    def select(self, patterns: list[str] | None = None) -> list[BenchmarkDef]:
        """Definitions whose ID matches any glob pattern (all when None)."""
        if not patterns:
            return [self._defs[i] for i in self.ids()]
        out, missing = [], []
        for pat in patterns:
            hits = [i for i in self.ids() if fnmatch.fnmatch(i, pat)]
            if not hits:
                missing.append(pat)
            out.extend(hits)
        if missing:
            raise KeyError(
                f"no benchmark matches {missing}; known: {', '.join(self.ids()) or '(none)'}"
            )
        seen: dict[str, BenchmarkDef] = {}
        for i in out:
            seen.setdefault(i, self._defs[i])
        return list(seen.values())

    def __iter__(self):
        return iter(self.select())

    def __len__(self) -> int:
        return len(self._defs)

    def __contains__(self, bench_id: str) -> bool:
        return bench_id in self._defs


_REGISTRY = BenchmarkRegistry()


def get_registry() -> BenchmarkRegistry:
    """The process-wide benchmark registry."""
    return _REGISTRY


def benchmark(
    bench_id: str,
    *,
    group: str = "general",
    description: str = "",
    repeats: int = 5,
    quick_repeats: int = 3,
    warmup: int = 1,
    registry: BenchmarkRegistry | None = None,
) -> Callable:
    """Decorator registering a benchmark setup function under a stable ID."""

    def decorate(fn: Callable) -> Callable:
        # NOT `registry or _REGISTRY`: an empty registry is falsy (__len__).
        target = registry if registry is not None else _REGISTRY
        target.register(BenchmarkDef(
            id=bench_id, fn=fn, group=group,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
            repeats=repeats, quick_repeats=quick_repeats, warmup=warmup,
            source=getattr(fn, "__module__", ""),
        ))
        return fn

    return decorate


def default_bench_dir() -> Path:
    """``$REPRO_BENCH_DIR`` if set, else ``<repo>/benchmarks`` relative to
    this source tree."""
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "benchmarks"


def discover(bench_dir: str | os.PathLike | None = None) -> int:
    """Import every ``bench_*.py`` so its ``@benchmark`` registrations run.

    Idempotent (modules are cached under a private namespace); a script
    that fails to import is skipped with a warning rather than taking the
    whole suite down.  Returns the number of scripts imported this call.
    """
    directory = Path(bench_dir) if bench_dir is not None else default_bench_dir()
    if not directory.is_dir():
        return 0
    imported = 0
    for path in sorted(directory.glob("bench_*.py")):
        mod_name = f"_repro_bench.{path.stem}"
        if mod_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(mod_name, path)
        if spec is None or spec.loader is None:  # pragma: no cover - defensive
            continue
        module = importlib.util.module_from_spec(spec)
        sys.modules[mod_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            del sys.modules[mod_name]
            warnings.warn(f"benchmark script {path.name} failed to import: {exc}",
                          stacklevel=2)
            continue
        imported += 1
    return imported
