"""Geometric primitives used throughout the framework.

Everything here is NumPy-vectorised: the scalar classes (:class:`Box3`,
:class:`Sphere`) are thin, convenient wrappers, while the ``*_many``
module-level functions operate on arrays of boxes/spheres/points at once,
which is what the traversal engines use on their hot paths.
"""

from .box import (
    Box3,
    boxes_center,
    boxes_contain_points,
    boxes_intersect_boxes,
    boxes_intersect_sphere,
    boxes_longest_dim,
    boxes_union,
    bounding_box,
    point_box_distance_sq,
    points_boxes_distance_sq,
)
from .sphere import Sphere, spheres_intersect_box
from .hilbert import HILBERT_BITS, hilbert_decode, hilbert_encode, hilbert_keys
from .morton import (
    MORTON_BITS,
    MORTON_MAX_COORD,
    morton_decode,
    morton_encode,
    morton_keys,
    normalize_to_grid,
)

__all__ = [
    "Box3",
    "Sphere",
    "MORTON_BITS",
    "HILBERT_BITS",
    "hilbert_encode",
    "hilbert_decode",
    "hilbert_keys",
    "MORTON_MAX_COORD",
    "bounding_box",
    "boxes_center",
    "boxes_contain_points",
    "boxes_intersect_boxes",
    "boxes_intersect_sphere",
    "boxes_longest_dim",
    "boxes_union",
    "morton_decode",
    "morton_encode",
    "morton_keys",
    "normalize_to_grid",
    "point_box_distance_sq",
    "points_boxes_distance_sq",
    "spheres_intersect_box",
]
