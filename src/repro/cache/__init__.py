"""Software cache for remote tree data (paper §II-B).

Two complementary pieces:

* :mod:`repro.cache.concurrent` — a *functional* shared-memory tree cache
  run under real Python threads, implementing the paper's six-step fill
  protocol (request flag → serialize → reconstruct → wire → atomic swap →
  resume).  Used to test the "valid at all times" wait-free invariant.
* :mod:`repro.cache.models` + :mod:`repro.cache.stats` — the *performance*
  models of the four cache designs the paper compares (WaitFree, XWrite,
  Sequential, per-thread), expressed as policies the DES interprets, plus
  the fetch-statistics calculator that turns a real traversal into
  communication volume per process.
"""

from .models import (
    CacheModel,
    RetryPolicy,
    WAITFREE,
    XWRITE,
    SEQUENTIAL,
    PER_THREAD,
    SINGLE_WRITER,
    CACHE_MODELS,
)
from .concurrent import SharedTreeCache, CacheEntry
from .stats import FetchStats, fetch_statistics, assign_fetch_groups

__all__ = [
    "CacheModel",
    "RetryPolicy",
    "WAITFREE",
    "XWRITE",
    "SEQUENTIAL",
    "PER_THREAD",
    "SINGLE_WRITER",
    "CACHE_MODELS",
    "SharedTreeCache",
    "CacheEntry",
    "FetchStats",
    "fetch_statistics",
    "assign_fetch_groups",
]
