"""Fault injection and recovery semantics for the runtime layers.

The paper's wait-free cache claim — the software cache stays "in a valid
state at all times" (§II-B-1) — is only meaningful if the runtime also
survives the *unhappy* paths a message-driven N-body code actually sees:
lost and duplicated messages, latency jitter and reordering, transient
fill failures, straggler processes, and process crash-with-restart.  This
package provides:

* :class:`FaultPlan` — a frozen, seed-driven description of those faults
  (:func:`parse_fault_spec` reads the compact ``--faults`` CLI grammar);
* :class:`FaultInjector` — the per-run decision engine with deterministic
  per-fault-class PRNG streams and :class:`FaultCounters`;
* :class:`IterationFailure` — the structured "retries exhausted" error the
  DES raises instead of hanging.

Consumers: :class:`~repro.runtime.model.TraversalSim` (message faults,
timeouts, exponential-backoff retries, crash/straggler modelling) and
:class:`~repro.cache.concurrent.SharedTreeCache` (transient fill failures
against real threads).  See ``docs/robustness.md`` for the full model.
"""

from .plan import FaultPlan, NO_FAULTS, parse_fault_spec
from .injector import FaultCounters, FaultInjector, IterationFailure, as_injector
from .execfaults import (
    ExecFaultError,
    ExecFaultPlan,
    WorkerDeath,
    parse_exec_fault_spec,
)

__all__ = [
    "FaultPlan",
    "NO_FAULTS",
    "parse_fault_spec",
    "FaultCounters",
    "FaultInjector",
    "IterationFailure",
    "as_injector",
    "ExecFaultError",
    "ExecFaultPlan",
    "WorkerDeath",
    "parse_exec_fault_spec",
]
