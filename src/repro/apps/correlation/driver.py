"""Two-point correlation as a pipeline Driver.

The estimator itself is self-contained (it builds its own pair of trees),
but wrapping it in a Driver gives it the standard pipeline surface —
telemetry phases, fault replay, and checkpoint/resume — like the other
applications.  The random catalogue's RNG is a registered stream, so a
resumed run draws the exact catalogue the uninterrupted run would.
"""

from __future__ import annotations

import numpy as np

from ...core import Configuration, Driver
from ...trees import Tree
from .correlation import CorrelationResult, two_point_correlation

__all__ = ["CorrelationDriver"]


class CorrelationDriver(Driver):
    """Each iteration: dual-tree pair counts over log-spaced bins.

    ``rmin``/``rmax``/``bins`` define the separation histogram;
    ``self.result`` holds the last iteration's estimate.
    """

    def __init__(
        self,
        config: Configuration | None = None,
        rmin: float = 0.01,
        rmax: float = 1.0,
        bins: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(config)
        self.rmin = rmin
        self.rmax = rmax
        self.bins = bins
        self.seed = seed
        self.result: CorrelationResult | None = None

    @property
    def edges(self) -> np.ndarray:
        return np.geomspace(self.rmin, self.rmax, self.bins + 1)

    def prepare(self, tree: Tree) -> None:
        self.result = None

    def traversal(self, iteration: int) -> None:
        self.result = two_point_correlation(
            self.particles, self.edges, seed=self.seed,
            bucket_size=self.config.bucket_size,
        )
