"""Direct-summation O(N²) gravity: the accuracy reference for Barnes-Hut."""

from __future__ import annotations

import numpy as np

from ...particles import ParticleSet
from .kernels import pairwise_accel, pairwise_potential

__all__ = ["direct_accelerations", "direct_potential", "acceleration_error"]


def direct_accelerations(
    particles: ParticleSet,
    G: float = 1.0,
    softening: float = 0.0,
    chunk: int = 1024,
) -> np.ndarray:
    """Exact mutual accelerations, chunked to bound the (nt, ns, 3) temporary."""
    pos = particles.position
    mass = particles.mass
    out = np.empty_like(pos)
    for s in range(0, len(pos), chunk):
        e = min(s + chunk, len(pos))
        out[s:e] = pairwise_accel(pos[s:e], pos, mass, G, softening)
    return out


def direct_potential(
    particles: ParticleSet,
    G: float = 1.0,
    softening: float = 0.0,
    chunk: int = 1024,
) -> np.ndarray:
    pos = particles.position
    mass = particles.mass
    out = np.empty(len(pos))
    for s in range(0, len(pos), chunk):
        e = min(s + chunk, len(pos))
        out[s:e] = pairwise_potential(pos[s:e], pos, mass, G, softening)
    return out


def acceleration_error(approx: np.ndarray, exact: np.ndarray) -> dict[str, float]:
    """Relative force-error summary: per-particle |Δa| / |a_exact|."""
    num = np.linalg.norm(approx - exact, axis=1)
    den = np.linalg.norm(exact, axis=1)
    rel = num / np.where(den > 0, den, 1.0)
    return {
        "mean": float(rel.mean()),
        "median": float(np.median(rel)),
        "p99": float(np.percentile(rel, 99)),
        "max": float(rel.max()),
    }
