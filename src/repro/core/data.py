"""The *Data* abstraction (paper §II-A-1).

``Data`` summarises a subtree's particles with constant space: leaves are
initialised from their particle bucket, parents start from the empty state
and accumulate their children with ``+=``, leaves-to-root (paper Fig 1,
centre).  The generic engine (:func:`accumulate_data`) works with any class
implementing the :class:`Data` protocol.

Because the builders append children after their parents, node index order
is a valid topological order, and a single reverse sweep performs the full
leaves-to-root accumulation.

For hot paths there is also :class:`AdditiveArrayData`: a declarative
variant where the state is a set of per-particle reductions (sums of
functions of particle fields).  Since particles are stored in tree order and
every node owns a contiguous slice, such data can be extracted with two
prefix-sum passes and *no* per-node Python work — this is the fast path the
gravity application uses, and it is tested to agree exactly with the generic
engine.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence, TypeVar, runtime_checkable

import numpy as np

from ..trees import SpatialNode, Tree
from .util import segment_sums

__all__ = ["Data", "accumulate_data", "AdditiveArrayData", "extract_additive"]


@runtime_checkable
class Data(Protocol):
    """Protocol for per-node summary state (mirrors the paper's interface).

    Implementations provide::

        @classmethod
        def from_leaf(cls, node) -> Data     # Data(Particle*, int) in C++
        @classmethod
        def empty(cls) -> Data               # Data()
        def __iadd__(self, child) -> Data    # operator+=(const Data&)
    """

    @classmethod
    def from_leaf(cls, node: SpatialNode) -> "Data": ...

    @classmethod
    def empty(cls) -> "Data": ...

    def __iadd__(self, child: "Data") -> "Data": ...


D = TypeVar("D")


def accumulate_data(tree: Tree, data_cls: type[D]) -> list[D]:
    """Run the leaves-to-root accumulation and attach the result to the tree.

    Returns the per-node list (index-aligned with the tree's node arrays)
    and also stores it on ``tree.data``.
    """
    n = tree.n_nodes
    data: list[Any] = [None] * n
    is_leaf = tree.first_child
    for i in range(n):
        if is_leaf[i] == -1:
            data[i] = data_cls.from_leaf(tree.node(i))
        else:
            data[i] = data_cls.empty()
    # Children always have larger indices than their parents, so one reverse
    # sweep accumulates bottom-up.
    parent = tree.parent
    for i in range(n - 1, 0, -1):
        d = data[parent[i]]
        d += data[i]
        data[parent[i]] = d
    tree.data = data
    return data


class AdditiveArrayData:
    """Declarative, vectorised Data for purely additive node state.

    Subclasses declare ``moments()``: a mapping from moment name to a
    function of the (tree-ordered) particle set returning an (N,) or (N, k)
    array.  The per-node value of each moment is the *sum* of the function
    over the node's particles.  Derived quantities (centroids, radii) are
    computed afterwards in :meth:`finalize`.

    This is semantically identical to a Data class whose ``from_leaf`` sums
    the same functions over the bucket and whose ``+=`` adds them — the test
    suite checks that equivalence — but runs as two prefix sums.
    """

    #: dict of {name: callable(particles) -> array}; set by subclasses.
    @classmethod
    def moments(cls) -> dict[str, Callable]:
        raise NotImplementedError

    @classmethod
    def finalize(cls, tree: Tree, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Derive non-additive quantities from the summed moments."""
        return arrays


def extract_additive(tree: Tree, data_cls: type[AdditiveArrayData]) -> dict[str, np.ndarray]:
    """Compute per-node arrays for an :class:`AdditiveArrayData` subclass."""
    arrays: dict[str, np.ndarray] = {}
    for name, fn in data_cls.moments().items():
        values = np.asarray(fn(tree.particles), dtype=np.float64)
        arrays[name] = segment_sums(values, tree.pstart, tree.pend)
    return data_cls.finalize(tree, arrays)


def combine_sequence(data_cls: type[D], items: Sequence[D]) -> D:
    """Fold ``+=`` over a sequence starting from the empty state.

    Utility used by the Partitions-Subtrees merge step and by tests probing
    associativity of user Data classes.
    """
    acc = data_cls.empty()
    for item in items:
        acc += item
    return acc
