"""Command-line interface: quick runs of the built-in applications.

Examples::

    python -m repro gravity --n 50000 --theta 0.6
    python -m repro sph --n 8000 --k 32
    python -m repro knn --n 20000 --k 8
    python -m repro disk --n 5000 --steps 40
    python -m repro correlation --n 2000
    python -m repro scale --n 20000 --cores 24 96 384
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _add_common(p: argparse.ArgumentParser, n_default: int) -> None:
    p.add_argument("--n", type=int, default=n_default, help="particle count")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--bucket", type=int, default=16, help="leaf bucket size")
    p.add_argument("--tree", default="oct", choices=["oct", "kd", "longest"])


def _add_telemetry(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome/Perfetto trace-event JSON")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the metrics registry (.json, or .csv)")
    p.add_argument("--report", action="store_true",
                   help="print a telemetry summary after the run")


def _telemetry_from_args(args):
    """Install a live telemetry session when any telemetry flag was given."""
    if not (args.trace or args.metrics or args.report):
        return None
    from .obs import Telemetry, set_telemetry

    telemetry = Telemetry()
    set_telemetry(telemetry)
    return telemetry


def _finish_telemetry(telemetry, args) -> None:
    if telemetry is None:
        return
    from .obs import console_report, set_telemetry, write_chrome_trace
    from .obs import write_metrics_csv, write_metrics_json

    set_telemetry(None)
    try:
        if args.trace:
            n = write_chrome_trace(telemetry, args.trace, command=args.command)
            print(f"wrote {n} trace events to {args.trace} (open in ui.perfetto.dev)")
        if args.metrics:
            if args.metrics.endswith(".csv"):
                n = write_metrics_csv(telemetry, args.metrics)
            else:
                n = write_metrics_json(telemetry, args.metrics)
            print(f"wrote {n} metrics to {args.metrics}")
    except OSError as exc:
        print(f"error: could not write telemetry output: {exc}", file=sys.stderr)
    if args.report:
        print(console_report(telemetry), end="")


def cmd_gravity(args) -> int:
    from .apps.gravity import compute_gravity, direct_accelerations, acceleration_error
    from .particles import clustered_clumps

    p = clustered_clumps(args.n, seed=args.seed)
    telemetry = _telemetry_from_args(args)
    if telemetry is not None:
        # Run the full Driver pipeline so the trace shows all seven
        # ``run_iteration`` phases (splitters ... rebalance), not just the
        # bare traversal.
        from .apps.gravity import GravityDriver
        from .core import Configuration

        cfg = Configuration(
            num_iterations=args.iterations, tree_type=args.tree,
            bucket_size=args.bucket, traverser=args.traverser,
        )

        class Main(GravityDriver):
            def create_particles(self, config):
                return p

        driver = Main(cfg, theta=args.theta, softening=args.softening,
                      with_quadrupole=args.quadrupole)
        driver.enable_telemetry(telemetry)
        t0 = time.time()
        driver.run()
        print(f"traversal: {time.time() - t0:.2f}s  {driver.last_stats.as_dict()}")
        if args.check and args.n <= 20_000:
            exact = direct_accelerations(driver.particles, softening=args.softening)
            print("error vs direct sum: "
                  f"{acceleration_error(driver.accelerations, exact)}")
        _finish_telemetry(telemetry, args)
        return 0
    t0 = time.time()
    res = compute_gravity(
        p, theta=args.theta, softening=args.softening,
        tree_type=args.tree, bucket_size=args.bucket,
        traverser=args.traverser, with_quadrupole=args.quadrupole,
    )
    print(f"traversal: {time.time() - t0:.2f}s  {res.stats.as_dict()}")
    if args.check and args.n <= 20_000:
        exact = direct_accelerations(p, softening=args.softening)
        print(f"error vs direct sum: {acceleration_error(res.accel, exact)}")
    return 0


def cmd_sph(args) -> int:
    from .apps.sph import compute_density_knn, gadget_style_density
    from .particles import uniform_cube
    from .trees import build_tree

    telemetry = _telemetry_from_args(args)
    p = uniform_cube(args.n, seed=args.seed)
    tree = build_tree(p, tree_type=args.tree, bucket_size=args.bucket)
    st = compute_density_knn(tree, k=args.k)
    print(f"kNN density: median rho {np.median(st.density):.4f}, "
          f"pp={st.stats.pp_interactions:,}")
    if args.baseline:
        gd = gadget_style_density(tree, k=args.k)
        print(f"gadget-style: {gd.n_rounds} rounds, pp={gd.stats.pp_interactions:,} "
              f"({gd.stats.pp_interactions / st.stats.pp_interactions:.2f}x)")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_knn(args) -> int:
    from .apps.knn import knn_search
    from .particles import clustered_clumps
    from .trees import build_tree

    telemetry = _telemetry_from_args(args)
    p = clustered_clumps(args.n, seed=args.seed)
    tree = build_tree(p, tree_type=args.tree, bucket_size=args.bucket)
    t0 = time.time()
    res = knn_search(tree, k=args.k)
    print(f"kNN k={args.k}: {time.time() - t0:.2f}s, "
          f"median d_k={np.median(np.sqrt(res.dist_sq[:, -1])):.4f}, "
          f"pp={res.stats.pp_interactions:,} (brute force would be {args.n**2:,})")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_disk(args) -> int:
    from .apps.collision import PlanetesimalDriver
    from .core import Configuration
    from .particles import DiskParams, keplerian_disk

    params = DiskParams(planetesimal_radius=args.radius)

    class Main(PlanetesimalDriver):
        def create_particles(self, config):
            return keplerian_disk(args.n, params=params, seed=args.seed)

    cfg = Configuration(num_iterations=args.steps, tree_type="longest",
                        decomp_type="longest", num_partitions=16, num_subtrees=16)
    d = Main(cfg, dt=args.dt)
    telemetry = _telemetry_from_args(args)
    if telemetry is not None:
        d.enable_telemetry(telemetry)
    t0 = time.time()
    d.run()
    print(f"{args.steps} steps in {time.time() - t0:.1f}s; "
          f"collisions recorded: {len(d.log)}")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_correlation(args) -> int:
    from .apps.correlation import two_point_correlation
    from .particles import clustered_clumps

    telemetry = _telemetry_from_args(args)
    edges = np.geomspace(args.rmin, args.rmax, args.bins + 1)
    res = two_point_correlation(clustered_clumps(args.n, seed=args.seed), edges)
    print(f"{'r_lo':>8} {'r_hi':>8} {'xi':>10} {'DD':>10}")
    for i in range(len(res.xi)):
        print(f"{edges[i]:8.4f} {edges[i + 1]:8.4f} {res.xi[i]:10.3f} {res.dd[i]:10,}")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_scale(args) -> int:
    from .bench import build_gravity_workload
    from .cache import CACHE_MODELS
    from .runtime import MACHINES, simulate_traversal

    telemetry = _telemetry_from_args(args)
    machine = MACHINES[args.machine]
    gw = build_gravity_workload(distribution="clustered", n=args.n,
                                n_partitions=args.partitions,
                                n_subtrees=args.partitions, seed=args.seed)
    model = CACHE_MODELS[args.cache]
    workers = args.workers or machine.workers_per_node
    print(f"{args.machine}, {workers} workers/process, cache={args.cache}")
    for cores in args.cores:
        r = simulate_traversal(gw.workload, machine=machine,
                               n_processes=max(cores // workers, 1),
                               workers_per_process=workers, cache_model=model)
        print(f"  {cores:>7} cores: {r.time * 1e3:9.3f} ms, "
              f"{r.requests:,} requests, {r.bytes_moved / 1e6:.1f} MB")
    _finish_telemetry(telemetry, args)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("gravity", help="Barnes-Hut gravity solve")
    _add_common(g, 20_000)
    g.add_argument("--theta", type=float, default=0.7)
    g.add_argument("--softening", type=float, default=1e-3)
    g.add_argument("--traverser", default="transposed",
                   choices=["transposed", "per-bucket", "up-and-down"])
    g.add_argument("--quadrupole", action="store_true")
    g.add_argument("--check", action="store_true", help="compare to direct sum")
    g.add_argument("--iterations", type=int, default=1,
                   help="driver iterations (telemetry runs only)")
    _add_telemetry(g)
    g.set_defaults(fn=cmd_gravity)

    s = sub.add_parser("sph", help="SPH density estimation")
    _add_common(s, 6_000)
    s.add_argument("--k", type=int, default=32)
    s.add_argument("--baseline", action="store_true", help="run Gadget-style too")
    _add_telemetry(s)
    s.set_defaults(fn=cmd_sph)

    k = sub.add_parser("knn", help="k-nearest-neighbour search")
    _add_common(k, 20_000)
    k.add_argument("--k", type=int, default=8)
    _add_telemetry(k)
    k.set_defaults(fn=cmd_knn)

    d = sub.add_parser("disk", help="planetesimal disk with collisions")
    d.add_argument("--n", type=int, default=4_000)
    d.add_argument("--seed", type=int, default=1)
    d.add_argument("--steps", type=int, default=30)
    d.add_argument("--dt", type=float, default=0.02)
    d.add_argument("--radius", type=float, default=2.5e-3)
    _add_telemetry(d)
    d.set_defaults(fn=cmd_disk)

    c = sub.add_parser("correlation", help="two-point correlation function")
    c.add_argument("--n", type=int, default=2_000)
    c.add_argument("--seed", type=int, default=1)
    c.add_argument("--rmin", type=float, default=0.01)
    c.add_argument("--rmax", type=float, default=1.0)
    c.add_argument("--bins", type=int, default=8)
    _add_telemetry(c)
    c.set_defaults(fn=cmd_correlation)

    sc = sub.add_parser("scale", help="simulated strong-scaling sweep")
    sc.add_argument("--n", type=int, default=20_000)
    sc.add_argument("--seed", type=int, default=7)
    sc.add_argument("--partitions", type=int, default=256)
    sc.add_argument("--machine", default="Stampede2", choices=["Summit", "Stampede2", "Bridges2"])
    sc.add_argument("--cache", default="WaitFree",
                    choices=["WaitFree", "XWrite", "Sequential", "PerThread", "SingleWriter"])
    sc.add_argument("--workers", type=int, default=0, help="workers per process (0 = full node)")
    sc.add_argument("--cores", type=int, nargs="+", default=[24, 96, 384, 1536])
    _add_telemetry(sc)
    sc.set_defaults(fn=cmd_scale)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
