"""Barnes-Hut gravity application — the paper's Figs 6-8 user code, runnable.

A clustered 30k-particle volume is evolved for a few leapfrog steps with the
full per-iteration pipeline (decompose → build → Data → traverse → post),
with measured-load re-balancing every other step, exactly the knobs the
paper's ``Configuration`` exposes.

Run:  python examples/gravity_simulation.py
"""

import numpy as np

from repro.apps.gravity import (
    GravityDriver,
    direct_potential,
)
from repro.core import Configuration
from repro.particles import clustered_clumps
from repro.trees import TreeType


class GravityMain(GravityDriver):
    """Mirror of the paper's Fig 8 ``GravityMain`` driver."""

    def configure(self, conf: Configuration) -> None:
        conf.num_iterations = 6
        conf.tree_type = TreeType.OCT
        conf.decomp_type = "sfc"
        conf.bucket_size = 16
        conf.num_partitions = 32
        conf.num_subtrees = 32
        conf.lb_period = 2          # re-balance measured load every 2 steps
        conf.lb_strategy = "sfc"

    def create_particles(self, config: Configuration):
        return clustered_clumps(30_000, seed=7)

    def post_traversal(self, iteration: int) -> None:
        super().post_traversal(iteration)  # leapfrog step
        a = np.linalg.norm(self.accelerations, axis=1)
        print(
            f"  iter {iteration}: pp={self.last_stats.pp_interactions:>11,} "
            f"pn={self.last_stats.pn_interactions:>11,} "
            f"|a| median={np.median(a):.3f} "
            f"split buckets={self.decomposition.n_split_buckets}"
        )


def main() -> None:
    main_driver = GravityMain(theta=0.7, softening=5e-3, dt=1e-3)
    print("running 6 gravity iterations (30k clustered particles)...")
    reports = main_driver.run()

    print("\nper-iteration summary:")
    for r in reports:
        print(
            f"  iter {r.iteration}: partition imbalance {r.imbalance:.3f} "
            f"{'(after LB)' if r.rebalanced else ''}"
        )

    # Energy sanity check: total energy of a softened self-gravitating
    # system should drift only slowly under leapfrog.
    p = main_driver.particles
    phi = direct_potential(p.select(np.arange(0, len(p), 10)), softening=5e-3)
    print(f"\nsampled potential mean: {phi.mean():.4f} (bound system: negative)")
    print("done — see benchmarks/bench_fig10_gravity_scaling.py for the "
          "distributed scaling reproduction.")


if __name__ == "__main__":
    main()
