"""Live terminal dashboard (``repro top``) and machine-readable status feed.

The driver produces one *status snapshot* dict per iteration (schema
``repro.status/1``): per-phase times, worker-lane utilisation, exec cache
hit rate, and rolling latency quantiles.  Two consumers:

* :class:`Dashboard` — renders snapshots as an ANSI terminal screen
  (``render`` is pure string-in/string-out so tests can assert on it;
  ``update`` repaints in place);
* :class:`StatusWriter` — appends snapshots as JSON lines to a file that a
  separate ``repro top <status-file> --follow`` process tails, which is how
  you watch a long run you did not start.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO

__all__ = ["Dashboard", "StatusWriter", "STATUS_SCHEMA",
           "read_status_file", "follow_status_file"]

#: schema tag on every status snapshot line
STATUS_SCHEMA = "repro.status/1"

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "█" * filled + "·" * (width - filled)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.3f}ms"
    return f"{seconds * 1e6:7.3f}µs"


class Dashboard:
    """Renders status snapshots to a terminal, repainting in place."""

    def __init__(self, stream: TextIO | None = None,
                 use_ansi: bool | None = None, width: int = 72) -> None:
        self.stream = stream if stream is not None else sys.stdout
        if use_ansi is None:
            use_ansi = bool(getattr(self.stream, "isatty", lambda: False)())
        self.use_ansi = use_ansi
        self.width = width

    # -- formatting helpers --------------------------------------------------
    def _b(self, text: str) -> str:
        return f"{_BOLD}{text}{_RESET}" if self.use_ansi else text

    def _d(self, text: str) -> str:
        return f"{_DIM}{text}{_RESET}" if self.use_ansi else text

    def render(self, snap: dict[str, Any]) -> str:
        """Pure snapshot -> screen-text; no I/O, no clock reads."""
        lines: list[str] = []
        head = (
            f"repro top — {snap.get('pipeline', 'run')} "
            f"iter {snap.get('iteration', '?')}"
        )
        meta = []
        if snap.get("backend"):
            meta.append(f"backend={snap['backend']}")
        if snap.get("workers"):
            meta.append(f"workers={snap['workers']}")
        if snap.get("n_particles"):
            meta.append(f"n={snap['n_particles']}")
        if snap.get("throughput"):
            meta.append(f"{snap['throughput']:,.0f} particles/s")
        if snap.get("degraded"):
            meta.append("DEGRADED")
        lines.append(self._b(head) + ("   " + self._d(" ".join(meta)) if meta else ""))

        sup = snap.get("supervision") or {}
        if snap.get("degraded") and sup:
            acts = "  ".join(f"{k}={v}" for k, v in sup.items() if v)
            lines.append(
                self._b("exec degraded") + "  "
                + (acts or "recovery actions fired")
            )

        serve = snap.get("serve") or {}
        if serve:
            lines.append("")
            lines.append(self._b("serve"))
            depth = serve.get("queue_depth", 0)
            cap = serve.get("queue_capacity", 0) or 1
            bar_w = max(10, self.width - 36)
            state = " DRAINING" if serve.get("draining") else ""
            lines.append(
                f"  queue {depth:>6d}/{cap:<6d} {_bar(depth / cap, bar_w)}"
                + self._b(state)
            )
            offered = serve.get("offered", 0)
            shed = serve.get("shed_total", 0)
            shed_rate = shed / offered if offered else 0.0
            lines.append(
                f"  served {serve.get('served', 0):,}  "
                f"shed {shed:,} ({shed_rate * 100:.1f}% of {offered:,} offered)  "
                f"expired {serve.get('expired', 0):,}"
            )
            tail = []
            if serve.get("p50_s") is not None:
                tail.append(f"p50={_fmt_s(serve['p50_s']).strip()}")
            if serve.get("p99_s") is not None:
                tail.append(f"p99={_fmt_s(serve['p99_s']).strip()}")
            if serve.get("served_per_s") is not None:
                tail.append(f"{serve['served_per_s']:,.0f} q/s")
            if tail:
                lines.append("  latency  " + "  ".join(tail))
            breaker = serve.get("breaker")
            if breaker:
                note = f"  breaker {breaker}"
                if serve.get("breaker_opened"):
                    note += f" (opened {serve['breaker_opened']}x)"
                if serve.get("slo_tripped"):
                    note += "  SLO-SHEDDING"
                lines.append(note if breaker == "closed" else self._b(note))

        phases: dict[str, float] = snap.get("phases") or {}
        if phases:
            lines.append("")
            lines.append(self._b("phases"))
            total = sum(phases.values()) or 1.0
            bar_w = max(10, self.width - 36)
            for name, dur in phases.items():
                frac = dur / total
                lines.append(
                    f"  {name:<16s} {_fmt_s(dur)} {_bar(frac, bar_w)} {frac * 100:5.1f}%"
                )

        lanes = snap.get("worker_lanes") or []
        if lanes:
            lines.append("")
            lines.append(self._b("worker lanes (traversal)"))
            span = max((l.get("busy", 0.0) for l in lanes), default=0.0) or 1.0
            bar_w = max(10, self.width - 36)
            for lane in lanes:
                busy = lane.get("busy", 0.0)
                lines.append(
                    f"  lane {lane.get('lane', '?'):>3}  {_fmt_s(busy)} "
                    f"{_bar(busy / span, bar_w)} {lane.get('tasks', 0):3d} tasks"
                )

        cache = snap.get("cache") or {}
        if cache:
            lines.append("")
            hits = cache.get("hits", cache.get("attach_hits", 0))
            misses = cache.get("misses", cache.get("attach_misses", 0))
            rate = cache.get("hit_rate")
            if rate is None:
                total_c = hits + misses
                rate = hits / total_c if total_c else 0.0
            lines.append(
                self._b("worker tree cache") + "  "
                f"hit rate {rate * 100:5.1f}%  ({hits} hits / {misses} misses)"
            )

        quant = snap.get("latency") or {}
        n_samples = snap.get("latency_count")
        if quant:
            lines.append("")
            q = "  ".join(f"{k}={_fmt_s(v).strip()}" for k, v in quant.items())
            if n_samples:
                q += f"  n={n_samples}"
            lines.append(self._b("task latency") + "  " + q)
        elif n_samples == 0:
            # an empty histogram has no quantiles (they are nan) — say so
            # instead of hiding the section or printing fake zeros
            lines.append("")
            lines.append(self._b("task latency") + "  "
                         + self._d("n=0 (no task samples yet)"))

        if snap.get("wall_time") is not None:
            lines.append("")
            lines.append(self._d(f"iteration wall time {_fmt_s(snap['wall_time']).strip()}"))
        return "\n".join(lines)

    def update(self, snap: dict[str, Any]) -> None:
        """Repaint the screen with ``snap`` (clears when ANSI is on)."""
        text = self.render(snap)
        if self.use_ansi:
            self.stream.write(_CLEAR + text + "\n")
        else:
            self.stream.write(text + "\n\n")
        self.stream.flush()


class StatusWriter:
    """Appends one JSON line per snapshot to ``path`` (created eagerly so
    a follower can start tailing before the first iteration finishes)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
        self.written = 0

    def update(self, snap: dict[str, Any]) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(dict(snap, schema=STATUS_SCHEMA)) + "\n")
            # flush + fsync per record: a live follower (`repro top
            # --follow`) sees each frame as soon as it is written, and a
            # crash cannot leave the durable feed trailing multiple frames
            # behind what the server already reported
            fh.flush()
            os.fsync(fh.fileno())
        self.written += 1


def read_status_file(path: str | Path) -> list[dict[str, Any]]:
    """All snapshots currently in a status file (skips partial last line)."""
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # mid-write partial line
    return out


def follow_status_file(path: str | Path, poll: float = 0.5,
                       stop: Callable[[], bool] | None = None,
                       sleep: Callable[[float], None] = time.sleep,
                       ) -> Iterator[dict[str, Any]]:
    """Yield snapshots as they are appended (``tail -f`` semantics).

    Tails by byte offset, not line count, so a snapshot the writer has only
    half-flushed is never consumed: a trailing chunk without ``\\n`` stays
    buffered until the rest arrives, and a *complete* line that still fails
    to parse (torn write, editor mangling) is skipped — the follow resumes
    on the next complete line instead of raising mid-watch.  If the file
    shrinks (restarted run truncating its feed), the tail restarts from the
    beginning.

    ``stop`` is polled between reads so callers (and tests) can end the
    follow loop; by default the generator runs until interrupted.
    """
    path = Path(path)
    offset = 0
    pending = b""
    while True:
        if path.exists():
            try:
                size = path.stat().st_size
                if size < offset:  # truncated underneath us: start over
                    offset = 0
                    pending = b""
                if size > offset:
                    with path.open("rb") as fh:
                        fh.seek(offset)
                        chunk = fh.read()
                    offset += len(chunk)
                    pending += chunk
                    *lines, pending = pending.split(b"\n")
                    for raw in lines:
                        raw = raw.strip()
                        if not raw:
                            continue
                        try:
                            yield json.loads(raw.decode("utf-8"))
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            continue  # torn line: resume on the next one
            except OSError:
                pass  # transient read error: retry next poll
        if stop is not None and stop():
            return
        sleep(poll)
