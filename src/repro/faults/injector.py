"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into
deterministic per-event decisions, and counts everything it does.

Design rules:

* **Determinism** — every fault class draws from its own PRNG stream
  (spawned from the plan seed), so enabling one class never perturbs the
  decisions of another, and the same plan replays bit-identically.
* **Zero-probability short-circuit** — a decision whose probability is 0
  returns without touching its stream, so a plan with ``drop=0`` produces
  exactly the decision sequence of a plan without drops at all.
* **Thread safety** — the DES is single-threaded, but the same injector
  type drives the real-thread :class:`~repro.cache.concurrent.SharedTreeCache`
  chaos tests; the fill-failure stream is therefore lock-protected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .plan import FaultPlan

__all__ = ["FaultCounters", "FaultInjector", "IterationFailure", "as_injector"]


@dataclass
class FaultCounters:
    """What the injector (and the runtime's recovery machinery) did."""

    drops: int = 0
    duplicates: int = 0
    fill_failures: int = 0
    retries: int = 0
    timeouts: int = 0
    crash_restarts: int = 0
    stragglers: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "fill_failures": self.fill_failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crash_restarts": self.crash_restarts,
            "stragglers": self.stragglers,
        }


class IterationFailure(RuntimeError):
    """A request exhausted its retry budget: the iteration cannot complete.

    This is the structured alternative to a silent hang — it names the
    requesting process, the fetch group, how many sends were attempted, the
    simulated time of surrender, and carries the fault counters accumulated
    so far, so callers (Driver, CLI, tests) can degrade gracefully instead
    of parking forever.
    """

    def __init__(
        self,
        reason: str,
        process: int,
        group: int,
        attempts: int,
        sim_time: float,
        counters: FaultCounters | None = None,
    ) -> None:
        super().__init__(
            f"{reason} (process={process}, group={group}, "
            f"attempts={attempts}, sim_time={sim_time:.6f}s)"
        )
        self.reason = reason
        self.process = process
        self.group = group
        self.attempts = attempts
        self.sim_time = sim_time
        self.counters = counters or FaultCounters()

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "process": self.process,
            "group": self.group,
            "attempts": self.attempts,
            "sim_time": self.sim_time,
            "counters": self.counters.to_dict(),
        }


@dataclass
class _CrashEvent:
    """One planned process crash."""

    process: int
    at_fraction: float  # crash time as a fraction of the estimated makespan
    restart_fraction: float = field(default=0.25)


class FaultInjector:
    """Stateful decision engine for one run, built from a frozen plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        streams = np.random.SeedSequence(plan.seed).spawn(5)
        self._drop_rng = np.random.Generator(np.random.PCG64(streams[0]))
        self._dup_rng = np.random.Generator(np.random.PCG64(streams[1]))
        self._jitter_rng = np.random.Generator(np.random.PCG64(streams[2]))
        self._fail_rng = np.random.Generator(np.random.PCG64(streams[3]))
        self._proc_rng = np.random.Generator(np.random.PCG64(streams[4]))
        self._fail_lock = threading.Lock()

    # -- message-level decisions (DES, single-threaded) ----------------------
    def drop_message(self) -> bool:
        """Lose this message leg?"""
        if self.plan.drop <= 0:
            return False
        if self._drop_rng.random() < self.plan.drop:
            self.counters.drops += 1
            return True
        return False

    def duplicate_message(self) -> bool:
        """Deliver this message leg twice?"""
        if self.plan.duplicate <= 0:
            return False
        if self._dup_rng.random() < self.plan.duplicate:
            self.counters.duplicates += 1
            return True
        return False

    def jittered(self, latency: float) -> float:
        """Latency with multiplicative jitter (identity when jitter=0)."""
        if self.plan.jitter <= 0:
            return latency
        return latency * (1.0 + self.plan.jitter * self._jitter_rng.random())

    # -- fill-level decisions (also used from real threads) ------------------
    def fill_fails(self) -> bool:
        """Does this fill fail transiently after its data arrived?"""
        if self.plan.fill_failure <= 0:
            return False
        with self._fail_lock:
            failed = self._fail_rng.random() < self.plan.fill_failure
        if failed:
            self.counters.fill_failures += 1
        return failed

    # -- per-process draws (made once, up front) -----------------------------
    def straggler_factors(self, n_processes: int) -> list[float]:
        """Service-time multiplier per process (1.0 = healthy)."""
        if self.plan.straggler_fraction <= 0:
            return [1.0] * n_processes
        factors = []
        for _ in range(n_processes):
            if self._proc_rng.random() < self.plan.straggler_fraction:
                factors.append(self.plan.straggler_slowdown)
                self.counters.stragglers += 1
            else:
                factors.append(1.0)
        return factors

    def crash_events(self, n_processes: int) -> list[_CrashEvent]:
        """Planned crashes (crash time as a makespan fraction in (0, 1))."""
        if self.plan.crash <= 0:
            return []
        events = []
        for p in range(n_processes):
            if self._proc_rng.random() < self.plan.crash:
                events.append(
                    _CrashEvent(
                        process=p,
                        at_fraction=float(self._proc_rng.uniform(0.05, 0.95)),
                        restart_fraction=self.plan.crash_restart,
                    )
                )
        return events


def as_injector(faults: "FaultPlan | FaultInjector | None") -> FaultInjector | None:
    """Coerce a plan (or an already-built injector, or None) to an injector.

    Passing a plan builds a fresh injector, so repeated runs from the same
    plan are independent and each deterministic; passing an injector reuses
    its streams and counters (for callers that aggregate across phases).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)
