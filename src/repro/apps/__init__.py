"""Applications built on the ParaTreeT abstractions.

Each subpackage is one of the paper's evaluated workloads:

* :mod:`repro.apps.gravity`   — Barnes-Hut gravity (§III-A, Figs 6-10, Table II)
* :mod:`repro.apps.sph`       — smoothed-particle hydrodynamics (§III-B, Fig 11)
* :mod:`repro.apps.knn`       — k-nearest-neighbour searches (substrate for SPH)
* :mod:`repro.apps.collision` — planetesimal collision detection (§IV, Figs 12-13)
"""
