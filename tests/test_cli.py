"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_gravity(self, capsys):
        assert main(["gravity", "--n", "1500", "--check"]) == 0
        out = capsys.readouterr().out
        assert "traversal" in out and "error vs direct sum" in out

    def test_gravity_quadrupole_per_bucket(self, capsys):
        assert main([
            "gravity", "--n", "800", "--traverser", "per-bucket", "--quadrupole"
        ]) == 0
        assert "pp_interactions" in capsys.readouterr().out

    def test_sph_with_baseline(self, capsys):
        assert main(["sph", "--n", "1200", "--k", "16", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "kNN density" in out and "gadget-style" in out

    def test_knn(self, capsys):
        assert main(["knn", "--n", "1500", "--k", "4"]) == 0
        assert "brute force would be" in capsys.readouterr().out

    def test_disk(self, capsys):
        assert main(["disk", "--n", "500", "--steps", "3"]) == 0
        assert "collisions recorded" in capsys.readouterr().out

    def test_correlation(self, capsys):
        assert main(["correlation", "--n", "600", "--bins", "4"]) == 0
        out = capsys.readouterr().out
        assert "xi" in out and out.count("\n") >= 5

    def test_scale(self, capsys):
        assert main([
            "scale", "--n", "3000", "--partitions", "32",
            "--cores", "24", "48", "--cache", "XWrite",
        ]) == 0
        out = capsys.readouterr().out
        assert "24 cores" in out and "48 cores" in out

    def test_gravity_trace_and_metrics(self, capsys, tmp_path):
        trace, metrics = tmp_path / "t.json", tmp_path / "m.json"
        assert main([
            "gravity", "--n", "1200",
            "--trace", str(trace), "--metrics", str(metrics), "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out and "-- metrics" in out
        events = json.loads(trace.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        assert {"iteration", "tree_build", "traversal", "rebalance"} <= names
        snaps = json.loads(metrics.read_text())["metrics"]
        metric_names = {s["name"] for s in snaps}
        assert {"cache.hits", "cache.misses", "driver.imbalance"} <= metric_names

    def test_scale_metrics_csv(self, capsys, tmp_path):
        metrics = tmp_path / "m.csv"
        assert main([
            "scale", "--n", "2000", "--partitions", "32",
            "--cores", "24", "--metrics", str(metrics),
        ]) == 0
        header, *rows = metrics.read_text().strip().splitlines()
        assert header == "name,type,labels,value,extra"
        assert any(r.startswith("des.requests,") for r in rows)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
