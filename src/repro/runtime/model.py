"""The distributed-traversal DES: one iteration on P simulated processes.

Per process the model runs the event sequence of paper Fig 2 / Fig 9:

* every bucket starts as a **local traversal** task (its work on the shared
  branch, on subtrees homed on its process, and on groups already cached);
* when a bucket's local task starts, it issues **cache requests** for every
  remote fetch group it will need (first-toucher only, per the cache
  model's dedupe rule);
* a request travels to the home process (latency), the response is
  serialized through the home's injection-bandwidth pipe, travels back
  (latency), and becomes a **cache insertion** whose execution depends on
  the model — any worker (WaitFree, least-busy dispatch), a process-wide
  mutex (XWrite), or the single designated writer thread (Sequential);
* once inserted, all bucket shares waiting on that group are released as
  **traversal resumption** tasks.

The simulated wall-clock of the slowest process is the iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.models import CacheModel, WAITFREE
from ..obs import Telemetry, get_telemetry
from .des import FifoResource, Simulator, WorkerPool
from .machine import MachineSpec, STAMPEDE2
from .tracing import ActivityTrace, activity_totals
from .workload import CostModel, WorkloadSpec

__all__ = ["SimResult", "TraversalSim", "simulate_traversal"]


@dataclass
class SimResult:
    """Outcome of one simulated iteration."""

    time: float
    n_processes: int
    workers_per_process: int
    cache_model: str
    requests: int
    duplicate_requests: int
    bytes_moved: float
    activity: dict[str, float]
    trace: ActivityTrace | None = None
    events: int = 0

    @property
    def total_cores(self) -> int:
        return self.n_processes * self.workers_per_process

    @property
    def efficiency_denominator(self) -> float:
        busy = sum(self.activity.values())
        span = self.time * self.total_cores
        return busy / span if span > 0 else 0.0


@dataclass
class _GroupState:
    """Per (process, cache-key) fetch lifecycle.

    ``requesters`` tracks which worker threads have already asked for this
    group: with a process-wide atomic flag (WaitFree/XWrite) the first
    requester suppresses everyone; with per-thread request tracking
    (Sequential, PerThread) each thread's first touch sends its own
    message.
    """

    present: bool = False
    requesters: set = field(default_factory=set)
    waiters: list = field(default_factory=list)


class TraversalSim:
    """One configured simulation; call :meth:`run`."""

    def __init__(
        self,
        workload: WorkloadSpec,
        machine: MachineSpec = STAMPEDE2,
        n_processes: int = 4,
        workers_per_process: int | None = None,
        cache_model: CacheModel = WAITFREE,
        cost: CostModel | None = None,
        traversal_style: str = "transposed",
        collect_trace: bool = False,
        processes_per_node: int = 1,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.workload = workload
        self.machine = machine
        self.n_processes = n_processes
        self.workers = workers_per_process or machine.workers_per_node
        self.cache_model = cache_model
        base_cost = cost or CostModel()
        self.cost = base_cost.scaled_to(machine.clock_ghz)
        self.style_factor = self.cost.style_factor(traversal_style)
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        # Telemetry wants the timeline: the exported Chrome trace reproduces
        # the Projections-style Fig 9 view from the worker intervals.
        self.collect_trace = collect_trace or self.telemetry.enabled
        # Placement: block maps, hierarchy-preserving for SFC orders.
        self.part_proc = (
            np.arange(workload.n_partitions, dtype=np.int64) * n_processes
        ) // workload.n_partitions
        self.st_proc = (
            np.arange(workload.n_subtrees, dtype=np.int64) * n_processes
        ) // workload.n_subtrees

        self.sim = Simulator()
        self.trace = ActivityTrace() if self.collect_trace else None
        self.pools = [
            WorkerPool(self.sim, self.workers, trace=self.trace, process_id=p)
            for p in range(n_processes)
        ]
        #: home-side response serialization pipes (injection bandwidth)
        self.pipes = [FifoResource(self.sim, capacity=1) for _ in range(n_processes)]
        #: per-process comm thread: serializes outgoing fills in arrival
        #: order (Charm++ SMP comm thread), so duplicated requests queue
        #: behind the originals instead of racing them.
        self.comm_threads = [FifoResource(self.sim, capacity=1) for _ in range(n_processes)]
        #: XWrite: analytic per-process insertion mutex (time it frees up).
        self.mutex_free_at = [0.0] * n_processes
        #: Sequential: the single designated writer thread per process
        self.writers = [FifoResource(self.sim, capacity=1) for _ in range(n_processes)]
        self.states: list[dict[tuple[int, int], _GroupState]] = [
            {} for _ in range(n_processes)
        ]
        self.requests = 0
        self.duplicate_requests = 0
        self.bytes_moved = 0.0
        # Topology: processes sharing a node exchange messages through
        # shared memory; everything else crosses the network.
        self.processes_per_node = max(int(processes_per_node), 1)

    def _latency(self, a: int, b: int) -> float:
        if a // self.processes_per_node == b // self.processes_per_node:
            return self.machine.intra_latency_s
        return self.machine.net_latency_s

    # -- helpers --------------------------------------------------------------
    def _cache_key(self, group: int, thread: int) -> tuple[int, int]:
        """Which cache holds the fill: per-thread caches (PerThread) key by
        thread; every process-visible cache keys by group only."""
        if self.cache_model.name == "PerThread":
            return (thread % self.workers, group)
        return (0, group)

    def _enable(self, proc: int, state: _GroupState) -> None:
        state.present = True
        waiters = state.waiters
        state.waiters = []
        for work in waiters:
            self.pools[proc].submit(work, label="traversal resumption")

    def _request_group(self, proc: int, group: int, thread_hint: int) -> _GroupState:
        """Issue (or join) the fetch of ``group`` on process ``proc``."""
        thread = thread_hint % self.workers
        state = self.states[proc].setdefault(self._cache_key(group, thread), _GroupState())
        if state.present:
            return state
        if self.cache_model.dedupe_scope == "process":
            # Atomic requested flag on the placeholder: first toucher only.
            if state.requesters:
                return state
            requester = 0
        else:
            # Per-thread request tracking (no shared flag): each thread's
            # first touch sends its own message.
            if thread in state.requesters:
                return state
            requester = thread
        is_duplicate = bool(state.requesters)
        state.requesters.add(requester)
        if is_duplicate:
            self.duplicate_requests += 1
        self.requests += 1
        home = int(self.st_proc[self.workload.groups.group_subtree[group]])
        size = float(self.workload.groups.group_bytes[group])
        self.bytes_moved += size
        send_time = size / self.machine.net_bandwidth_Bps
        insert_time = self.cost.insert_fixed + self.cost.insert_per_byte * size
        serialize_time = self.cost.serialize_fixed + self.cost.serialize_per_byte * size

        def arrive_home():
            # The home's comm thread serializes the response in arrival
            # order, then it streams through the injection-bandwidth pipe —
            # §III-A's "costs of these extra requests and responses" land
            # here when a cache design duplicates fetches.
            self.comm_threads[home].submit(
                serialize_time,
                on_done=lambda: self.pipes[home].submit(send_time, on_done=back_in_flight),
            )

        def back_in_flight():
            self.sim.schedule(self._latency(home, proc), do_insert)

        def do_insert():
            if state.present:
                return  # a duplicate response landed after the first fill
            policy = self.cache_model.insert_policy
            if policy == "parallel":
                # Wait-free: any worker inserts; dispatched to the least busy.
                self.pools[proc].submit_to_least_busy(
                    insert_time, label="cache insertion",
                    on_done=lambda: self._enable(proc, state),
                )
            elif policy == "locked":
                # Exclusive write: the inserting worker spins until the
                # process-wide lock frees, then holds it for the insert —
                # both the wait and the insert burn worker time, which is
                # the degradation mechanism the paper observes at scale.
                now = self.sim.now
                wait = max(0.0, self.mutex_free_at[proc] - now)
                self.mutex_free_at[proc] = now + wait + insert_time
                self.pools[proc].submit_to_least_busy(
                    wait + insert_time, label="cache insertion",
                    on_done=lambda: self._enable(proc, state),
                )
            else:  # single_thread
                # All fills funnel through the one designated writer; the
                # queue at that writer delays dependent traversals.
                self.writers[proc].submit(
                    insert_time, on_done=lambda: self._enable(proc, state)
                )

        self.sim.schedule(self._latency(proc, home), arrive_home)
        return state

    def _export_telemetry(
        self, telemetry: Telemetry, total_time: float, activity: dict[str, float]
    ) -> None:
        """Fold the finished simulation into the telemetry session: every
        worker-task interval becomes a trace event on simulated time (pid =
        process, tid = worker — the Fig 9 timeline), and the communication
        counters land in the metrics registry."""
        if self.trace is not None:
            telemetry.tracer.record_activity_trace(self.trace)
        metrics = telemetry.metrics
        model = self.cache_model.name
        metrics.counter("des.requests", model=model).inc(self.requests)
        metrics.counter("des.duplicate_requests", model=model).inc(self.duplicate_requests)
        metrics.counter("des.bytes_moved", model=model).inc(self.bytes_moved)
        metrics.counter("des.events", model=model).inc(self.sim.events_processed)
        metrics.gauge("des.sim_time", model=model).set(total_time)
        for label, seconds in activity.items():
            metrics.counter("des.busy_seconds", model=model, activity=label).inc(seconds)

    # -- main -------------------------------------------------------------------
    def run(self) -> SimResult:
        wl = self.workload
        st_proc = self.st_proc
        group_subtree = wl.groups.group_subtree
        factor = self.style_factor
        # Buckets are spatially contiguous in workload order (tree order);
        # block-assign them to worker threads within each process so
        # per-thread caches overlap only at block borders, like partitions
        # bound to PEs do in the real runtime.
        proc_of_bucket = [int(self.part_proc[b.partition]) for b in wl.buckets]
        per_proc_seq: dict[int, int] = {}
        seq_in_proc = []
        for p in proc_of_bucket:
            seq_in_proc.append(per_proc_seq.get(p, 0))
            per_proc_seq[p] = seq_in_proc[-1] + 1
        thread_hints = [
            (s * self.workers) // max(per_proc_seq[p], 1)
            for s, p in zip(seq_in_proc, proc_of_bucket)
        ]
        for seq, bucket in enumerate(wl.buckets):
            proc = proc_of_bucket[seq]
            local_work = 0.0
            remote: list[tuple[int, float]] = []
            for g, w in bucket.work_by_group.items():
                if g < 0 or int(st_proc[group_subtree[g]]) == proc:
                    local_work += w * factor
                else:
                    remote.append((g, w * factor))

            def start_bucket(proc=proc, remote=remote, hint=thread_hints[seq]):
                # Issuing the requests costs worker time ("cache request").
                for g, w in remote:
                    state = self._request_group(proc, g, thread_hint=hint)
                    if state.present:
                        self.pools[proc].submit(w, label="traversal resumption")
                    else:
                        state.waiters.append(w)
                if remote:
                    self.pools[proc].submit(
                        self.cost.request_cpu * len(remote), label="cache request"
                    )

            # Requests go out when this bucket's local traversal *starts*
            # (the traversal discovers its remote needs as it walks), which
            # spreads requests through the iteration like Fig 9 shows.
            self.pools[proc].submit(
                max(local_work, 1e-12), label="local traversal",
                on_start=start_bucket,
            )

        telemetry = self.telemetry
        with telemetry.tracer.span(
            "des.run", cat="des.loop",
            n_processes=self.n_processes, workers=self.workers,
            cache_model=self.cache_model.name, machine=self.machine.name,
        ):
            total_time = self.sim.run()
        activity = activity_totals(self.trace) if self.trace else {
            "busy": sum(p.busy_time for p in self.pools)
        }
        if telemetry.enabled:
            self._export_telemetry(telemetry, total_time, activity)
        return SimResult(
            time=total_time,
            n_processes=self.n_processes,
            workers_per_process=self.workers,
            cache_model=self.cache_model.name,
            requests=self.requests,
            duplicate_requests=self.duplicate_requests,
            bytes_moved=self.bytes_moved,
            activity=activity,
            trace=self.trace,
            events=self.sim.events_processed,
        )


def simulate_traversal(
    workload: WorkloadSpec,
    machine: MachineSpec = STAMPEDE2,
    n_processes: int = 4,
    workers_per_process: int | None = None,
    cache_model: CacheModel = WAITFREE,
    cost: CostModel | None = None,
    traversal_style: str = "transposed",
    collect_trace: bool = False,
    processes_per_node: int = 1,
    telemetry: Telemetry | None = None,
) -> SimResult:
    """Convenience wrapper: configure and run one :class:`TraversalSim`."""
    return TraversalSim(
        workload,
        machine=machine,
        n_processes=n_processes,
        workers_per_process=workers_per_process,
        cache_model=cache_model,
        cost=cost,
        traversal_style=traversal_style,
        collect_trace=collect_trace,
        processes_per_node=processes_per_node,
        telemetry=telemetry,
    ).run()
