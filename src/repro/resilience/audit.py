"""Consistency auditing after restore / recovery.

Two layers:

* :func:`audit_restore` — structural checks on a just-restored driver:
  particle arrays well-formed (finite positions, consistent leading
  dimension, unique original labels) and, once a tree exists,
  :func:`~repro.trees.validate.check_tree_invariants`.
* :func:`audit_checkpoints` / :func:`audit_state_files` — the
  cross-checkpoint audit: two archives (checkpoints or particle
  snapshots) compared entry-for-entry at the byte level.  This is the
  property every other resilience layer rests on — a run checkpointed at
  iteration *k* and resumed must be *bit-identical* to the uninterrupted
  baseline, and "close enough" is indistinguishable from a restart bug.
"""

from __future__ import annotations

import os

import numpy as np

from ..trees.validate import check_tree_invariants
from .checkpoint import Checkpoint, load_checkpoint

__all__ = [
    "ConsistencyError",
    "audit_restore",
    "assert_consistent",
    "compare_checkpoints",
    "audit_checkpoints",
    "audit_state_files",
]


class ConsistencyError(AssertionError):
    """A restored or recovered run failed its consistency audit."""


def audit_restore(driver, check_boxes: bool = True) -> list[str]:
    """Structural problems with a restored driver's state (empty = clean)."""
    problems: list[str] = []
    particles = driver.particles
    if particles is None:
        return ["driver has no particles after restore"]
    n = len(particles)
    if n == 0:
        problems.append("restored particle set is empty")
    for name in particles.field_names:
        arr = particles[name]
        if arr.shape[:1] != (n,):
            problems.append(
                f"field {name!r} leading dimension {arr.shape[:1]} != ({n},)"
            )
    pos = particles.position
    if not np.all(np.isfinite(pos)):
        problems.append("restored positions contain non-finite values")
    labels = particles.orig_index
    if len(np.unique(labels)) != n:
        problems.append("orig_index labels are not unique after restore")
    if np.any(particles.mass < 0):
        problems.append("restored masses contain negative values")
    pending = getattr(driver, "_pending_assignment", None)
    if pending is not None and len(pending) != n:
        problems.append(
            f"pending LB assignment has {len(pending)} entries for {n} particles"
        )
    if problems:
        # Structurally broken arrays make a tree build meaningless.
        return problems
    # The restored particles must support a valid tree build.  (A tree left
    # on the driver can be legitimately stale — integration moves particles
    # after the last build — so the audit validates a fresh build instead.)
    try:
        from ..trees import build_tree

        tree = build_tree(particles.copy(), driver.config.tree_build_config())
        check_tree_invariants(tree, check_boxes=check_boxes)
    except AssertionError as exc:
        problems.append(f"tree invariants violated on restored particles: {exc}")
    except Exception as exc:
        problems.append(f"tree build failed on restored particles: {exc}")
    return problems


def assert_consistent(driver, check_boxes: bool = True) -> None:
    """Raise :class:`ConsistencyError` when :func:`audit_restore` finds
    anything."""
    problems = audit_restore(driver, check_boxes=check_boxes)
    if problems:
        raise ConsistencyError("; ".join(problems))


def _compare_arrays(name: str, a: np.ndarray, b: np.ndarray) -> list[str]:
    if a.dtype != b.dtype:
        return [f"{name}: dtype {a.dtype} != {b.dtype}"]
    if a.shape != b.shape:
        return [f"{name}: shape {a.shape} != {b.shape}"]
    if a.tobytes() != b.tobytes():
        mismatch = int(np.count_nonzero(
            np.asarray(a).reshape(-1) != np.asarray(b).reshape(-1)
        ))
        return [f"{name}: {mismatch} of {a.size} elements differ"]
    return []


def compare_checkpoints(a: Checkpoint, b: Checkpoint) -> list[str]:
    """Differences between two in-memory checkpoints (empty = identical)."""
    problems: list[str] = []
    if a.iteration != b.iteration:
        problems.append(f"iteration {a.iteration} != {b.iteration}")
    for kind, fa, fb in (
        ("particle field", a.particle_fields, b.particle_fields),
        ("user state", a.user_state, b.user_state),
    ):
        only_a = sorted(set(fa) - set(fb))
        only_b = sorted(set(fb) - set(fa))
        if only_a:
            problems.append(f"{kind}s only in first: {only_a}")
        if only_b:
            problems.append(f"{kind}s only in second: {only_b}")
        for name in sorted(set(fa) & set(fb)):
            problems.extend(_compare_arrays(f"{kind} {name!r}", fa[name], fb[name]))
    if (a.pending_assignment is None) != (b.pending_assignment is None):
        problems.append("pending assignment present in only one checkpoint")
    elif a.pending_assignment is not None:
        problems.extend(_compare_arrays(
            "pending assignment", a.pending_assignment, b.pending_assignment
        ))
    if a.rng_states != b.rng_states:
        diverged = sorted(
            set(a.rng_states) ^ set(b.rng_states)
        ) or [k for k in a.rng_states if a.rng_states[k] != b.rng_states.get(k)]
        problems.append(f"PRNG stream states differ: {diverged}")
    return problems


def audit_checkpoints(path_a: str | os.PathLike, path_b: str | os.PathLike) -> list[str]:
    """Load (and checksum-verify) two checkpoint files, compare them
    bit-for-bit."""
    return compare_checkpoints(load_checkpoint(path_a), load_checkpoint(path_b))


def audit_state_files(path_a: str | os.PathLike, path_b: str | os.PathLike) -> list[str]:
    """Byte-level comparison of two ``.npz`` state archives — checkpoints
    or particle snapshots alike.  Every array entry must match dtype,
    shape, and raw bytes; string entries (metadata) must match exactly."""
    problems: list[str] = []
    with np.load(os.fspath(path_a), allow_pickle=False) as da, \
            np.load(os.fspath(path_b), allow_pickle=False) as db:
        only_a = sorted(set(da.files) - set(db.files))
        only_b = sorted(set(db.files) - set(da.files))
        if only_a:
            problems.append(f"entries only in {path_a}: {only_a}")
        if only_b:
            problems.append(f"entries only in {path_b}: {only_b}")
        for name in sorted(set(da.files) & set(db.files)):
            problems.extend(_compare_arrays(name, da[name], db[name]))
    return problems
