"""Flight-recorder and histogram-merge overhead (obs v2 acceptance).

Two bars: the gravity pipeline with the flight recorder disabled must be
statistically indistinguishable from the seed path (the disabled cost is
one attribute load and an empty call per site), and with it enabled the
run must stay within a few percent — the ring buffer is a bounded deque
append.  ``obs.hist_merge`` pins the reduction cost of the fork/absorb
protocol: merging is integer bucket addition, independent of how many
samples the workers recorded.

Compare against a baseline with ``repro bench compare``; the obs-smoke
CI job runs the quick variants.
"""

import numpy as np

from repro.apps.gravity import GravityDriver
from repro.core import Configuration
from repro.obs import NULL_FLIGHT, Log2Histogram, Telemetry, use_telemetry
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark


def _run_gravity(n: int, flight):
    p = clustered_clumps(n, seed=9)

    class Main(GravityDriver):
        def create_particles(self, config):
            return p

    d = Main(Configuration(num_iterations=2), theta=0.7)
    telemetry = Telemetry(flight=flight)
    with use_telemetry(telemetry):
        d.enable_telemetry(telemetry)
        d.run()
    return d, telemetry


@perf_benchmark("obs.flight_gravity_off", group="obs",
                description="telemetry-enabled gravity pipeline with the "
                            "flight recorder nulled out (baseline)")
def bench_flight_off(quick=False):
    n = 2_000 if quick else 8_000

    def run():
        d, _ = _run_gravity(n, NULL_FLIGHT)
        return {"iterations": len(d.reports)}

    return run


@perf_benchmark("obs.flight_gravity_on", group="obs",
                description="same telemetry-enabled pipeline with the "
                            "flight recorder recording")
def bench_flight_on(quick=False):
    n = 2_000 if quick else 8_000

    def run():
        from repro.obs import FlightRecorder

        d, telemetry = _run_gravity(n, FlightRecorder())
        return {"iterations": len(d.reports),
                "flight_events": telemetry.flight.recorded}

    return run


@perf_benchmark("obs.hist_merge", group="obs",
                description="reduce forked worker latency histograms "
                            "(integer bucket addition, sample-count free)")
def bench_hist_merge(quick=False):
    n_workers = 64 if quick else 256
    n_obs = 2_000 if quick else 10_000
    rng = np.random.default_rng(42)
    root = Log2Histogram()
    forks = []
    for _ in range(n_workers):
        f = root.fork()
        f.observe_many(rng.lognormal(mean=-8.0, sigma=2.0, size=n_obs))
        forks.append(f)

    def run():
        merged = Log2Histogram()
        for f in forks:
            merged.merge(f)
        return {"count": merged.count, "p99": merged.quantile(0.99)}

    return run
