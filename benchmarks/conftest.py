"""Benchmark-suite configuration.

The heavy artefacts (instrumented traversals → DES workloads) are memoised
inside :mod:`repro.bench.workloads`, so fixtures here are thin wrappers.
Every bench prints the regenerated table/figure; run with ``-s`` to see
them, e.g.::

    pytest benchmarks/ --benchmark-only -s

Each ``bench_*.py`` additionally registers its headline workload with the
machine-readable harness in :mod:`repro.perf` via ``@benchmark("<id>", ...)``
— a setup function taking ``quick=False`` that returns the zero-arg timed
callable (no work happens at import time).  Those run through the CLI::

    repro bench list
    repro bench run --quick 'des.*'

Quick mode: the registry setups shrink their workloads when the CLI passes
``quick=True``, but the session fixtures here used to pin ``n=25_000``
regardless — so the pytest leg of a "quick" sweep silently ran at full
size.  ``REPRO_BENCH_QUICK=1`` now applies the same scaling to the
fixtures that the registry setups use.
"""

import os

import pytest

from repro.bench import build_gravity_workload

#: Mirror of the registry's ``quick=True`` scaling for pytest-run benches.
BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
#: Same quick size the fig3/fig9 registry setups use.
WORKLOAD_N = 6_000 if BENCH_QUICK else 25_000


@pytest.fixture(scope="session")
def clustered_workload():
    """The Fig 3 / Fig 9 workload: clustered particles, SFC + octree.

    1024 partitions/subtrees give the fine decomposition granularity the
    Fig 3 cache-contention study needs (the paper runs up to 1024
    24-core processes)."""
    return build_gravity_workload(
        distribution="clustered", n=WORKLOAD_N, n_partitions=1024,
        n_subtrees=1024,
    )


@pytest.fixture(scope="session")
def uniform_workload():
    """The Fig 10 workload: uniform volume, SFC + octree."""
    return build_gravity_workload(distribution="uniform", n=WORKLOAD_N, seed=11)


@pytest.fixture(scope="session")
def fig9_workload():
    """Fig 9's traced workload (``shared_branch_levels=4``).

    Previously rebuilt ad hoc inside ``bench_fig9_profile`` while the test
    took (and ignored) ``clustered_workload`` — which both hid the real
    dependency and bypassed quick scaling."""
    return build_gravity_workload(
        distribution="clustered", n=WORKLOAD_N, n_partitions=1024,
        n_subtrees=1024, shared_branch_levels=4,
    )
