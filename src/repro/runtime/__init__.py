"""Discrete-event runtime simulator: the stand-in for Charm++ on Summit /
Stampede2 / Bridges2.

Pure Python cannot run 80 M particles on 10 752 cores, but the paper's
scaling claims (Figs 3, 9, 10, 11, 13) are about *communication volume,
synchronisation and idle time* — quantities a discrete-event simulation
(DES) models directly.  The pipeline is:

1. run a **real** traversal at laptop scale and record, per target bucket,
   how much interaction work it does and which remote tree segments it
   touches (:mod:`repro.runtime.workload`);
2. place partitions and subtrees on ``P`` simulated processes of a
   :class:`~repro.runtime.machine.MachineSpec` (Table I);
3. simulate the iteration event-by-event — worker threads, request/response
   messages with latency + bandwidth, cache-insert policies
   (:mod:`repro.cache`), least-busy-worker scheduling — and report the
   simulated wall-clock and a per-activity utilisation timeline
   (:mod:`repro.runtime.tracing`, Fig 9).
"""

from .des import Simulator, Timer, WorkerPool, FifoResource
from .machine import MachineSpec, SUMMIT, STAMPEDE2, BRIDGES2, MACHINES
from .tracing import ActivityTrace, utilization_profile
from .workload import BucketWork, WorkloadSpec, workload_from_traversal, CostModel
from .model import TraversalSim, SimResult, simulate_traversal

__all__ = [
    "Simulator",
    "Timer",
    "WorkerPool",
    "FifoResource",
    "MachineSpec",
    "SUMMIT",
    "STAMPEDE2",
    "BRIDGES2",
    "MACHINES",
    "ActivityTrace",
    "utilization_profile",
    "BucketWork",
    "WorkloadSpec",
    "CostModel",
    "workload_from_traversal",
    "TraversalSim",
    "SimResult",
    "simulate_traversal",
]
