"""SPH application Driver: kNN density + pressure forces each iteration."""

from __future__ import annotations

import numpy as np

from ...core import Configuration, Driver
from ...trees import Tree
from .density import SPHState, compute_density_knn
from .forces import compute_pressure_forces, equation_of_state

__all__ = ["SPHDriver"]


class SPHDriver(Driver):
    """Each iteration: kNN traversal → density → pressure → pair forces.

    The traversal step runs through the up-and-down engine (the paper's
    choice for criteria that tighten mid-traversal); the force evaluation is
    ``postTraversal`` physics.  Set ``dt > 0`` to leapfrog the particles.
    """

    def __init__(
        self,
        config: Configuration | None = None,
        k_neighbors: int = 32,
        gamma: float = 5.0 / 3.0,
        internal_energy: float = 1.0,
        dt: float = 0.0,
    ) -> None:
        super().__init__(config)
        self.k = k_neighbors
        self.gamma = gamma
        self.internal_energy = internal_energy
        self.dt = dt
        self.state: SPHState | None = None
        self.pressure: np.ndarray | None = None
        self.accelerations: np.ndarray | None = None

    def prepare(self, tree: Tree) -> None:
        self.state = None  # densities recomputed per iteration

    def traversal(self, iteration: int) -> None:
        self.state = compute_density_knn(self.tree, k=self.k, backend=self.exec_backend)
        self.last_stats.merge(self.state.stats)
        if self.exec_backend is not None:
            # compute_density_knn drives the backend directly (not via
            # partitions()), so fold its latency/cache/supervision in here
            self._absorb_backend_run(self.exec_backend)

    def post_traversal(self, iteration: int) -> None:
        assert self.state is not None
        self.pressure = equation_of_state(
            self.state.density, internal_energy=self.internal_energy, gamma=self.gamma
        )
        self.accelerations = compute_pressure_forces(
            self.tree,
            self.state.neighbors,
            self.state.density,
            self.pressure,
            self.state.h,
        )
        if self.dt > 0:
            self.particles.velocity += self.accelerations * self.dt
            self.particles.position += self.particles.velocity * self.dt

    def checkpoint_state(self) -> dict:
        # Density/neighbour state is recomputed from particles every
        # iteration; only the last derived outputs are worth carrying.
        state = {}
        if self.pressure is not None:
            state["pressure"] = np.asarray(self.pressure)
        if self.accelerations is not None:
            state["accelerations"] = np.asarray(self.accelerations)
        return state

    def restore_state(self, state: dict) -> None:
        p = state.get("pressure")
        a = state.get("accelerations")
        self.pressure = None if p is None else np.asarray(p)
        self.accelerations = None if a is None else np.asarray(a)
