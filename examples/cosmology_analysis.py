"""Cosmological analysis pipeline: FoF halos + two-point correlation.

§III motivates the framework with "the computation and analysis of
cosmological datasets, including gravity, k-nearest neighbors, and n-point
correlation functions".  This example runs the analysis half on a clustered
volume: find Friends-of-Friends halos, summarise the mass function, and
measure the two-point correlation function — all on the same tree
abstractions the solvers use.

Run:  python examples/cosmology_analysis.py
"""

import numpy as np

from repro.apps.correlation import two_point_correlation
from repro.apps.fof import friends_of_friends
from repro.particles import clustered_clumps
from repro.trees import build_tree


def main() -> None:
    particles = clustered_clumps(20_000, n_clumps=12, seed=3)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)

    # -- Friends-of-Friends halo finding -----------------------------------
    # linking length = b x mean interparticle spacing, classic b = 0.2
    spacing = (1.0 / len(particles)) ** (1 / 3)
    ll = 0.2 * spacing
    fof = friends_of_friends(tree, linking_length=ll)
    halos = fof.groups_larger_than(20)
    print(f"FoF with linking length {ll:.4f}: {fof.n_groups} groups, "
          f"{len(halos)} halos with >= 20 members")

    print("\ntop halos by mass:")
    order = halos[np.argsort(fof.group_mass[halos])[::-1]]
    print(f"{'members':>8} {'mass':>10} {'centre of mass':>30}")
    for g in order[:8]:
        com = np.round(fof.group_com[g], 3)
        print(f"{fof.group_sizes[g]:>8} {fof.group_mass[g]:>10.5f} {str(com):>30}")

    # mass function: halo counts per mass decade
    masses = fof.group_mass[halos]
    if len(masses) > 1:
        edges = np.geomspace(masses.min(), masses.max() * 1.001, 5)
        hist, _ = np.histogram(masses, bins=edges)
        print("\nhalo mass function (counts per mass bin):", hist.tolist())

    # -- two-point correlation -----------------------------------------------
    edges = np.geomspace(0.005, 0.7, 9)
    res = two_point_correlation(particles, edges, seed=1)
    print("\ntwo-point correlation (dual-tree pair counts):")
    print(f"{'r_lo':>8} {'r_hi':>8} {'xi':>12} {'DD pairs':>12}")
    for i in range(len(res.xi)):
        print(f"{edges[i]:8.4f} {edges[i + 1]:8.4f} {res.xi[i]:12.3f} {res.dd[i]:12,}")
    print(f"\nxi falls from {res.xi[0]:.1f} at clump scales to ~0 at the box "
          f"scale — the clustering signal FoF picked up as halos.")


if __name__ == "__main__":
    main()
