"""Up-and-down and dual-tree traversal semantics."""

import numpy as np
import pytest

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.core import Visitor, get_traverser
from repro.particles import uniform_cube
from repro.trees import build_tree


@pytest.fixture(scope="module")
def tree():
    return build_tree(uniform_cube(400, seed=4), tree_type="kd", bucket_size=8)


class CountingVisitor(Visitor):
    """Opens everything; counts which (source leaf, target) pairs fire."""

    def __init__(self, tree):
        self.tree = tree
        self.leaf_pairs: set[tuple[int, int]] = set()
        self.node_calls = 0
        self.path_log: list[tuple[int, int]] = []

    def open(self, source, target):
        return True

    def node(self, source, target):
        self.node_calls += 1

    def leaf(self, source, target):
        self.leaf_pairs.add((source.index, target.index))

    def path_advanced(self, target, path_node):
        self.path_log.append((target.index, path_node.index))


class TestUpAndDown:
    def test_covers_every_leaf_pair_exactly_once(self, tree):
        """With no pruning, up-and-down must visit every (leaf, target)
        source pair exactly once — climbing visits only unvisited siblings."""
        visitor = CountingVisitor(tree)
        get_traverser("up-and-down").traverse(tree, visitor)
        leaves = tree.leaf_indices
        expected = {(int(s), int(t)) for t in leaves for s in leaves}
        assert visitor.leaf_pairs == expected

    def test_never_calls_node_when_all_open(self, tree):
        visitor = CountingVisitor(tree)
        get_traverser("up-and-down").traverse(tree, visitor)
        assert visitor.node_calls == 0

    def test_path_advances_to_root(self, tree):
        visitor = CountingVisitor(tree)
        tgt = int(tree.leaf_indices[0])
        get_traverser("up-and-down").traverse(tree, visitor, np.array([tgt]))
        path = [p for t, p in visitor.path_log if t == tgt]
        assert path[0] == tgt
        assert path[-1] == tree.root
        # path follows parents
        for a, b in zip(path[:-1], path[1:]):
            assert tree.parent[a] == b

    def test_done_stops_climb(self, tree):
        class StopAfterSelf(CountingVisitor):
            def done(self, target):
                return True  # stop right after scanning the own leaf

        visitor = StopAfterSelf(tree)
        tgt = int(tree.leaf_indices[3])
        get_traverser("up-and-down").traverse(tree, visitor, np.array([tgt]))
        assert visitor.leaf_pairs == {(tgt, tgt)}

    def test_gravity_equivalence(self, tree):
        """The same visitor produces the same physics under up-and-down."""
        arrays = compute_centroid_arrays(tree, theta=0.5)
        v_ud = GravityVisitor(tree, arrays)
        get_traverser("up-and-down").traverse(tree, v_ud)
        v_td = GravityVisitor(tree, arrays)
        get_traverser("transposed").traverse(tree, v_td)
        # Different traversal orders prune different (but equally valid)
        # node sets under the same MAC, so compare against tight accuracy
        # rather than bitwise: both must approximate the direct sum well.
        from repro.apps.gravity import direct_accelerations

        exact = direct_accelerations(tree.particles)
        for v in (v_ud, v_td):
            rel = np.linalg.norm(v.accel - exact, axis=1) / np.linalg.norm(exact, axis=1)
            assert np.median(rel) < 2e-2


class TestDualTree:
    def test_all_pairs_without_pruning(self, tree):
        class OpenAll(CountingVisitor):
            def cell(self, source, target):
                return True

        visitor = OpenAll(tree)
        get_traverser("dual-tree").traverse(tree, visitor)
        leaves = tree.leaf_indices
        expected = {(int(s), int(t)) for t in leaves for s in leaves}
        assert visitor.leaf_pairs == expected

    def test_cell_false_keeps_target(self, tree):
        """cell()==False must open only the source (B children, not B²),
        still covering all leaf pairs in a binary tree."""

        class SourceOnly(CountingVisitor):
            def cell(self, source, target):
                return False

        visitor = SourceOnly(tree)
        get_traverser("dual-tree").traverse(tree, visitor)
        # target side stays at the root until the source bottoms out; leaf()
        # then fires on (source leaf, root-as-target) pairs only when the
        # root is a leaf — for a deep tree leaf() needs the target opened,
        # which only happens once the source is a leaf.
        targets = {t for _, t in visitor.leaf_pairs}
        sources = {s for s, _ in visitor.leaf_pairs}
        assert sources == set(tree.leaf_indices.tolist())
        assert targets == set(tree.leaf_indices.tolist())

    def test_gravity_dual_tree_matches(self, tree):
        """Dual-tree with a bucket-level MAC approximates the direct sum."""
        arrays = compute_centroid_arrays(tree, theta=0.4)
        visitor = GravityVisitor(tree, arrays)
        get_traverser("dual-tree").traverse(tree, visitor)
        from repro.apps.gravity import direct_accelerations

        exact = direct_accelerations(tree.particles)
        rel = np.linalg.norm(visitor.accel - exact, axis=1) / np.linalg.norm(exact, axis=1)
        assert np.median(rel) < 2e-2

    def test_stats_count_pairs(self, tree):
        visitor = CountingVisitor(tree)
        stats = get_traverser("dual-tree").traverse(tree, visitor)
        assert stats.leaf_interactions == len(visitor.leaf_pairs)
        assert stats.pp_interactions == tree.n_particles**2
