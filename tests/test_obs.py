"""Unified telemetry layer: spans, metrics registry, exporters, wiring.

Covers the observability invariants the layer promises:

* span nesting and timing under a deterministic fake clock;
* metrics label aggregation (same ``(name, labels)`` -> same instrument);
* the Chrome trace-event golden schema (``ph``/``ts``/``dur``/``pid``/``tid``)
  with all seven driver phases nested inside the iteration span;
* telemetry-disabled driver runs producing byte-identical reports;
* the vectorised ``utilization_profile`` and ``_leaf_partition`` matching
  their original loop implementations (kept here as references).
"""

import json

import numpy as np
import pytest

from repro.apps.gravity import GravityDriver
from repro.cache import WAITFREE
from repro.cache.stats import _leaf_partition
from repro.core import Configuration
from repro.decomp import SfcDecomposer, decompose
from repro.obs import (
    NULL_TELEMETRY,
    NULL_TRACER,
    MetricsRegistry,
    Telemetry,
    Tracer,
    chrome_trace,
    console_report,
    get_telemetry,
    metrics_dict,
    set_telemetry,
    traced,
    use_telemetry,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.particles import clustered_clumps
from repro.runtime import STAMPEDE2, simulate_traversal
from repro.runtime.tracing import ActivityTrace, utilization_profile
from repro.trees import build_tree


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


class TestSpans:
    def test_nesting_depth_and_containment(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", cat="t"):
            with tracer.span("inner", cat="t"):
                pass
            with tracer.span("inner", cat="t"):
                pass
        outer = tracer.find("outer")[0]
        inners = tracer.find("inner")
        assert outer["args"]["depth"] == 0
        assert all(e["args"]["depth"] == 1 for e in inners)
        # children close before the parent and fit inside it in time
        for e in inners:
            assert e["ts"] >= outer["ts"]
            assert e["ts"] + e["dur"] <= outer["ts"] + outer["dur"]
        assert tracer.open_spans == 0

    def test_timing_from_clock(self):
        tracer = Tracer(clock=FakeClock(step=2.0))
        with tracer.span("a"):
            pass
        (event,) = tracer.events
        assert event["ts"] == pytest.approx(2.0 * 1e6)
        assert event["dur"] == pytest.approx(2.0 * 1e6)
        assert event["ph"] == "X"

    def test_missed_close_unwinds_stack(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        outer.__enter__()
        tracer.span("forgotten").__enter__()  # never closed explicitly
        outer.__exit__(None, None, None)
        assert tracer.open_spans == 0

    def test_complete_and_activity_trace(self):
        tracer = Tracer()
        tracer.complete("task", 1.0, 3.0, pid=2, tid=5)
        with pytest.raises(ValueError):
            tracer.complete("bad", 3.0, 1.0)
        trace = ActivityTrace()
        trace.record(1, 4, 0.0, 2.0, "local_traversal")
        assert tracer.record_activity_trace(trace, pid_offset=10) == 1
        des = tracer.events[-1]
        assert (des["pid"], des["tid"], des["name"]) == (11, 4, "local_traversal")
        assert des["dur"] == pytest.approx(2e6)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", whatever=1):
            pass
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.record_activity_trace(ActivityTrace()) == 0
        assert not NULL_TRACER.enabled


class TestMetrics:
    def test_same_name_and_labels_share_instrument(self):
        reg = MetricsRegistry()
        reg.counter("hits", model="WaitFree", level="L1").inc(3)
        # label order must not matter
        reg.counter("hits", level="L1", model="WaitFree").inc(2)
        reg.counter("hits", model="XWrite", level="L1").inc(10)
        assert reg.value("hits", model="WaitFree", level="L1") == 5
        assert reg.total("hits") == 15
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("load", bounds=[1.0, 2.0])
        for v in (0.5, 1.5, 1.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["bucket_counts"] == [1, 2, 1]
        assert snap["count"] == 4
        assert snap["min"] == 0.5 and snap["max"] == 5.0
        assert h.mean == pytest.approx(8.5 / 4)

    def test_collect_is_stable_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", z="1").inc()
        names = [s["name"] for s in reg.collect()]
        assert names == sorted(names)


class TestTelemetryGlobal:
    def test_default_is_disabled(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert not get_telemetry().enabled

    def test_use_telemetry_restores(self):
        t = Telemetry()
        with use_telemetry(t):
            assert get_telemetry() is t
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_telemetry_none_disables(self):
        prev = set_telemetry(Telemetry())
        assert prev is NULL_TELEMETRY
        set_telemetry(None)
        assert get_telemetry() is NULL_TELEMETRY

    def test_traced_decorator(self):
        @traced("my_fn", cat="test")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # disabled: plain call
        t = Telemetry()
        with use_telemetry(t):
            assert fn(2) == 3
        assert len(t.tracer.find("my_fn")) == 1


def _run_gravity(telemetry=None, n=600):
    class Main(GravityDriver):
        def create_particles(self, config):
            return clustered_clumps(n, seed=13)

    d = Main(
        Configuration(num_iterations=2, num_partitions=8, num_subtrees=8),
        theta=0.7,
        softening=1e-3,
    )
    if telemetry is not None:
        d.enable_telemetry(telemetry)
    try:
        return d.run()
    finally:
        set_telemetry(None)


PHASES = [
    "splitters", "tree_build", "leaf_sharing", "prepare",
    "traversal", "post_traversal", "rebalance",
]


class TestDriverTelemetry:
    @pytest.fixture(scope="class")
    def telemetry(self):
        t = Telemetry()
        _run_gravity(t)
        return t

    def test_chrome_trace_golden_schema(self, telemetry, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(telemetry, str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == n > 0
        for e in events:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["ph"] == "X"
            assert e["dur"] >= 0

    def test_all_phases_nested_in_iteration(self, telemetry):
        iterations = telemetry.tracer.find("iteration")
        assert len(iterations) == 2
        for it in iterations:
            t0, t1 = it["ts"], it["ts"] + it["dur"]
            for phase in PHASES:
                inside = [
                    e for e in telemetry.tracer.find(phase)
                    if t0 <= e["ts"] and e["ts"] + e["dur"] <= t1
                ]
                assert inside, f"phase {phase} not nested in iteration"
                assert all(e["args"]["depth"] >= 1 for e in inside)

    def test_metrics_capture_paper_quantities(self, telemetry):
        reg = telemetry.metrics
        assert reg.total("cache.hits") >= 0
        assert reg.total("cache.misses") > 0
        assert reg.total("cache.requests") > 0
        assert reg.total("traversal.pn_interactions") > 0
        assert reg.value("driver.imbalance", iteration="0") >= 1.0
        assert reg.total("driver.iterations") == 2

    def test_metrics_exports(self, telemetry, tmp_path):
        jpath, cpath = tmp_path / "m.json", tmp_path / "m.csv"
        n_json = write_metrics_json(telemetry, str(jpath))
        n_csv = write_metrics_csv(telemetry, str(cpath))
        doc = json.loads(jpath.read_text())
        assert len(doc["metrics"]) == n_json == n_csv
        header, *rows = cpath.read_text().strip().splitlines()
        assert header == "name,type,labels,value,extra"
        assert len(rows) == n_csv
        assert metrics_dict(telemetry)["metrics"] == doc["metrics"]

    def test_console_report(self, telemetry):
        text = console_report(telemetry)
        assert "tree_build" in text
        assert "cache.misses" in text

    def test_disabled_run_identical_to_seed(self):
        """Telemetry must be observational: reports match byte for byte
        (modulo the timing metadata — wall_time is real-clock noise and
        latency is only recorded when telemetry is on)."""
        plain = _run_gravity(telemetry=None)
        traced_reports = _run_gravity(Telemetry())
        assert len(plain) == len(traced_reports)

        def comparable(report):
            d = report.to_dict()
            d.pop("wall_time")
            d.pop("latency")
            return json.dumps(d, sort_keys=True)

        for a, b in zip(plain, traced_reports):
            assert comparable(a) == comparable(b)

    def test_report_to_dict_json_serializable(self):
        report = _run_gravity(telemetry=None, n=300)[0]
        d = report.to_dict()
        rt = json.loads(json.dumps(d))
        assert rt["iteration"] == 0
        assert rt["stats"]["pp_interactions"] > 0
        assert isinstance(rt["partition_loads"], list)


class TestDesTelemetry:
    def test_des_exports_timeline_and_counters(self):
        from repro.bench import build_gravity_workload

        workload = build_gravity_workload(
            distribution="clustered", n=2000, n_partitions=32, n_subtrees=32
        ).workload
        t = Telemetry()
        with use_telemetry(t):
            result = simulate_traversal(
                workload, machine=STAMPEDE2, n_processes=4,
                workers_per_process=4, cache_model=WAITFREE,
            )
        des_events = [e for e in t.tracer.events if e["cat"] == "des"]
        assert len(des_events) == len(result.trace.intervals) > 0
        assert t.metrics.total("des.events") > 0
        assert t.metrics.value("des.sim_time", model="WaitFree") == pytest.approx(
            result.time
        )
        assert len(t.tracer.find("des.run")) == 1
        # timeline events carry simulated (process, worker) lanes
        assert {e["pid"] for e in des_events} <= set(range(4))


def _reference_utilization_profile(trace, n_workers_total, n_bins=50):
    """The seed's per-interval loop, kept verbatim as the oracle."""
    t0, t1 = trace.span()
    if t1 <= t0:
        return np.zeros(n_bins + 1), {}
    edges = np.linspace(t0, t1, n_bins + 1)
    width = edges[1] - edges[0]
    out = {}
    for _, _, start, end, label in trace.intervals:
        series = out.setdefault(label, np.zeros(n_bins))
        first = int(np.clip((start - t0) // width, 0, n_bins - 1))
        last = int(np.clip((end - t0) // width, 0, n_bins - 1))
        for b in range(first, last + 1):
            lo = max(start, edges[b])
            hi = min(end, edges[b + 1])
            if hi > lo:
                series[b] += hi - lo
    denom = width * n_workers_total
    for label in out:
        out[label] = out[label] / denom
    return edges, out


class TestVectorizedProfiles:
    def test_utilization_profile_matches_reference(self):
        rng = np.random.default_rng(11)
        trace = ActivityTrace()
        labels = ["local_traversal", "cache_request", "resume"]
        for _ in range(400):
            start = rng.uniform(0, 10)
            trace.record(
                int(rng.integers(4)), int(rng.integers(8)),
                start, start + rng.uniform(0, 0.5),
                labels[int(rng.integers(3))],
            )
        edges, got = utilization_profile(trace, n_workers_total=32, n_bins=37)
        ref_edges, ref = _reference_utilization_profile(trace, 32, n_bins=37)
        assert np.allclose(edges, ref_edges)
        assert set(got) == set(ref)
        for label in ref:
            assert np.allclose(got[label], ref[label])

    def test_utilization_profile_empty(self):
        edges, out = utilization_profile(ActivityTrace(), 4, n_bins=10)
        assert out == {}
        assert len(edges) == 11

    def test_leaf_partition_matches_unique_reference(self):
        p = clustered_clumps(2500, seed=29)
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        parts = SfcDecomposer().assign(tree.particles, 17)
        dec = decompose(tree, parts, n_subtrees=16)

        got = _leaf_partition(tree, dec)

        ref = np.zeros(tree.n_nodes, dtype=np.int64)
        pp = dec.particle_partition
        for leaf in tree.leaf_indices:
            s, e = int(tree.pstart[leaf]), int(tree.pend[leaf])
            vals, cnt = np.unique(pp[s:e], return_counts=True)
            ref[leaf] = vals[np.argmax(cnt)]
        assert np.array_equal(got, ref)


class TestChromeTraceEdgeCases:
    """Export corner cases: empty sessions, zero-width spans, metrics-only."""

    def test_empty_trace_exports_valid_document(self, tmp_path):
        telemetry = Telemetry()
        doc = chrome_trace(telemetry)
        assert doc["traceEvents"] == []
        assert doc["displayTimeUnit"] == "ms"
        path = tmp_path / "empty.json"
        assert write_chrome_trace(telemetry, str(path)) == 0
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_identical_timestamps_zero_duration(self, tmp_path):
        tracer = Tracer(clock=lambda: 7.0)  # frozen clock
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.complete("c", 7.0, 7.0)
        doc = chrome_trace(tracer)
        assert len(doc["traceEvents"]) == 3
        for e in doc["traceEvents"]:
            assert e["ph"] == "X"
            assert e["ts"] == pytest.approx(7.0 * 1e6)
            assert e["dur"] == 0.0
        # still serializable and round-trippable
        path = tmp_path / "zero.json"
        telemetry = Telemetry()
        telemetry.tracer = tracer
        write_chrome_trace(telemetry, str(path))
        assert len(json.loads(path.read_text())["traceEvents"]) == 3

    def test_metrics_only_export(self, tmp_path):
        telemetry = Telemetry()
        telemetry.metrics.counter("jobs").inc(3)
        telemetry.metrics.gauge("depth").set(11.0)
        # no spans at all: trace export is empty but valid...
        assert chrome_trace(telemetry)["traceEvents"] == []
        # ...while every metrics exporter still carries the data.
        assert len(metrics_dict(telemetry)["metrics"]) == 2
        jpath = tmp_path / "m.json"
        cpath = tmp_path / "m.csv"
        assert write_metrics_json(telemetry, str(jpath)) == 2
        assert write_metrics_csv(telemetry, str(cpath)) == 2
        names = {m["name"] for m in json.loads(jpath.read_text())["metrics"]}
        assert names == {"jobs", "depth"}
        report = console_report(telemetry)
        assert "jobs" in report and "spans" not in report

    def test_critical_path_lane_named_in_metadata(self):
        from repro.perf import CPRecorder, analyze_critical_path

        rec = CPRecorder()
        a = rec.add("work", "compute", 0.0, 1.0)
        rec.add("send", "latency", 1.0, 1.5, preds=(a,))
        report = analyze_critical_path(rec)
        tracer = Tracer()
        assert tracer.record_critical_path(report) == len(report.segments)
        doc = chrome_trace(tracer)
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert meta and meta[0]["args"]["name"] == "⚑ critical path"
        assert meta[0]["pid"] == -1
        lanes = [e for e in doc["traceEvents"]
                 if e.get("cat") == "critical-path"]
        assert [e["name"] for e in lanes] == ["work", "send"]
