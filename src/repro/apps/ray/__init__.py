"""First-hit ray queries against particle spheres.

The paper names "a priority-driven traversal for ray tracing" as the
canonical user-defined Traverser (§II-A-2; SPIRIT in §V also proved itself
on ray tracing).  This app implements it: rays walk the spatial tree
best-first by entry distance, pruning every subtree that starts beyond the
current closest hit — the ray-tracing analogue of the kNN radius shrink.
"""

from .trace import RayHits, trace_rays, brute_force_trace, ray_box_entry, ray_sphere_hit

__all__ = [
    "RayHits",
    "trace_rays",
    "brute_force_trace",
    "ray_box_entry",
    "ray_sphere_hit",
]
