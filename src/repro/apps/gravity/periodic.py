"""Periodic-boundary Barnes-Hut gravity (replica summation).

Cosmological volumes are periodic; production codes handle the infinite
image sum with Ewald summation (ChaNGa, Gadget).  This module implements
the direct replica expansion: the source tree is re-traversed once per
periodic image offset within ``n_images`` boxes, shifting every source
centroid/particle by the image vector through the visitor's ``offset``
hook.  The truncated sum is exact with respect to brute-force replica
summation (tested to BH accuracy); the untruncated periodic limit —
which also cancels the super-cluster tidal field the truncation leaves
behind — would require full Ewald summation and is out of scope.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ...core import TraversalStats, get_traverser
from ...particles import ParticleSet
from ...trees import Tree, build_tree
from .centroid import compute_centroid_arrays
from .visitor import GravityVisitor

__all__ = ["PeriodicGravityResult", "compute_gravity_periodic", "minimum_image"]


def minimum_image(displacements: np.ndarray, box_size: float) -> np.ndarray:
    """Wrap displacement vectors into [-L/2, L/2) per component."""
    L = float(box_size)
    return displacements - L * np.round(np.asarray(displacements) / L)


class _ShiftedGravityVisitor(GravityVisitor):
    """GravityVisitor whose sources appear translated by ``offset``.

    The shift enters in exactly two places: the MAC sphere centre used by
    ``open`` and the source coordinates used by the kernels.  Implemented
    by translating the *targets* the other way, which reuses every batched
    kernel unchanged.
    """

    def __init__(self, *args, offset=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.offset = np.zeros(3) if offset is None else np.asarray(offset, float)

    # Shift the opening test: a source at c appears at c + offset.
    def open_batch(self, tree, source, targets):
        from ...geometry import boxes_intersect_sphere

        return boxes_intersect_sphere(
            tree.box_lo[targets],
            tree.box_hi[targets],
            self.arrays.centroid[source] + self.offset,
            self.arrays.open_radius_sq[source],
        )

    def open_sources(self, tree, sources, target):
        from ...geometry import spheres_intersect_box

        return spheres_intersect_box(
            self.arrays.centroid[sources] + self.offset,
            self.arrays.open_radius_sq[sources],
            tree.box_lo[target],
            tree.box_hi[target],
        )

    # Shift the kernels by moving the targets the opposite way; the
    # resulting relative separations equal (source + offset) - target.
    def _apply_node(self, source, idx):
        from .kernels import pairwise_potential, point_mass_accel

        pos = self.tree.particles.position[idx] - self.offset
        self.accel[idx] += point_mass_accel(
            pos,
            self.arrays.centroid[source],
            float(self.arrays.mass[source]),
            self.G,
            self.softening,
        )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                pos,
                self.arrays.centroid[source][None, :],
                np.array([self.arrays.mass[source]]),
                self.G,
                self.softening,
            )

    def _apply_leaf(self, source, idx):
        from .kernels import pairwise_accel, pairwise_potential

        s, e = int(self.tree.pstart[source]), int(self.tree.pend[source])
        tgt = self.tree.particles.position[idx] - self.offset
        self.accel[idx] += pairwise_accel(
            tgt,
            self.tree.particles.position[s:e],
            self.tree.particles.mass[s:e],
            self.G,
            self.softening,
        )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                tgt,
                self.tree.particles.position[s:e],
                self.tree.particles.mass[s:e],
                self.G,
                self.softening,
            )

    def node_sources(self, tree, sources, target):
        from .kernels import pairwise_accel, pairwise_potential

        idx = np.arange(tree.pstart[target], tree.pend[target])
        pos = tree.particles.position[idx] - self.offset
        self.accel[idx] += pairwise_accel(
            pos, self.arrays.centroid[sources], self.arrays.mass[sources],
            self.G, self.softening,
        )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                pos, self.arrays.centroid[sources], self.arrays.mass[sources],
                self.G, self.softening,
            )

    def leaf_sources(self, tree, sources, target):
        from ...core.util import ranges_to_indices
        from .kernels import pairwise_accel, pairwise_potential

        idx = np.arange(tree.pstart[target], tree.pend[target])
        src_idx = ranges_to_indices(tree.pstart[sources], tree.pend[sources])
        tgt = tree.particles.position[idx] - self.offset
        self.accel[idx] += pairwise_accel(
            tgt, tree.particles.position[src_idx], tree.particles.mass[src_idx],
            self.G, self.softening,
        )
        if self.potential is not None:
            self.potential[idx] += pairwise_potential(
                tgt, tree.particles.position[src_idx], tree.particles.mass[src_idx],
                self.G, self.softening,
            )


@dataclass
class PeriodicGravityResult:
    tree: Tree
    accel: np.ndarray       # input order
    stats: TraversalStats
    n_image_cells: int


def compute_gravity_periodic(
    particles: ParticleSet,
    box_size: float,
    theta: float = 0.6,
    G: float = 1.0,
    softening: float = 0.0,
    n_images: int = 1,
    bucket_size: int = 16,
    traverser: str = "transposed",
    subtract_mean_field: bool = True,
) -> PeriodicGravityResult:
    """Barnes-Hut accelerations with periodic images out to ``n_images``
    boxes in each direction ((2n+1)³ replicas).

    ``subtract_mean_field`` removes the average acceleration (the uniform
    background's net pull, which must vanish in an infinite periodic
    system but survives truncation of the image sum).
    """
    if box_size <= 0:
        raise ValueError("box_size must be > 0")
    if n_images < 0:
        raise ValueError("n_images must be >= 0")
    tree = build_tree(particles, tree_type="oct", bucket_size=bucket_size)
    arrays = compute_centroid_arrays(tree, theta=theta)
    engine = get_traverser(traverser)
    total_stats = TraversalStats()
    accel = np.zeros((tree.n_particles, 3))

    shifts = list(itertools.product(range(-n_images, n_images + 1), repeat=3))
    for shift in shifts:
        offset = np.asarray(shift, dtype=np.float64) * box_size
        visitor = _ShiftedGravityVisitor(
            tree, arrays, G=G, softening=softening, offset=offset
        )
        stats = engine.traverse(tree, visitor)
        total_stats.merge(stats)
        accel += visitor.accel

    if subtract_mean_field:
        accel -= accel.mean(axis=0)

    return PeriodicGravityResult(
        tree=tree,
        accel=tree.particles.scatter_to_input_order(accel),
        stats=total_stats,
        n_image_cells=len(shifts),
    )
