"""Load re-balancing strategies (paper §II-D-1, §V).

Two built-in strategies, both adopted from the ChaNGa/Charm++ lineage:

* :func:`sfc_rebalance` — "mapping measured load to the space-filling curve
  and redistributing it in chunks": particles keep their SFC order but the
  curve is re-sliced by *measured* load instead of particle count.
* :func:`spatial_bisection_rebalance` — "aggregating load and assigning it
  recursively in 3D space": orthogonal recursive bisection with measured
  weights.

Both return a fresh per-particle partition assignment;
:func:`apply_rebalance` rewires an existing :class:`Decomposition`.
The paper reports these reduce the 1536-core gravity runtime by ~26 %
(with the evaluation otherwise run LB-off); the ablation bench
reproduces that contrast through the DES.
"""

from __future__ import annotations

import numpy as np

from ..geometry import morton_keys
from ..particles import ParticleSet
from .partitions import Decomposition, decompose
from .splitters import LongestDimDecomposer, _weighted_contiguous_slices

__all__ = ["imbalance", "sfc_rebalance", "spatial_bisection_rebalance", "apply_rebalance"]


def imbalance(loads: np.ndarray) -> float:
    """Max/mean load ratio; 1.0 is perfect balance."""
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) == 0 or loads.sum() == 0:
        return 1.0
    return float(loads.max() / loads.mean())


def sfc_rebalance(
    particles: ParticleSet, measured_load: np.ndarray, n_parts: int
) -> np.ndarray:
    """Re-slice the Morton curve so each slice carries equal measured load."""
    measured_load = np.asarray(measured_load, dtype=np.float64)
    if np.any(measured_load < 0):
        raise ValueError("loads must be non-negative")
    box = particles.bounding_box().cubified()
    keys = morton_keys(particles.position, box)
    order = np.argsort(keys, kind="stable")
    # Guard against all-zero load (first iteration): fall back to counts.
    if measured_load.sum() == 0:
        measured_load = np.ones(len(particles))
    return _weighted_contiguous_slices(order, measured_load, n_parts)


def spatial_bisection_rebalance(
    particles: ParticleSet, measured_load: np.ndarray, n_parts: int
) -> np.ndarray:
    """Recursive orthogonal bisection with measured load as weights."""
    measured_load = np.asarray(measured_load, dtype=np.float64)
    if measured_load.sum() == 0:
        measured_load = np.ones(len(particles))
    return LongestDimDecomposer().assign(particles, n_parts, weights=measured_load)


def apply_rebalance(
    decomp: Decomposition, new_particle_partition: np.ndarray
) -> Decomposition:
    """Rebuild the Partitions view of an existing decomposition with a new
    assignment (the Subtrees — and hence the tree — are untouched: in the
    Partitions-Subtrees model load moves without moving memory)."""
    return decompose(
        decomp.tree,
        new_particle_partition,
        n_subtrees=len(decomp.subtrees),
        n_processes=decomp.n_processes,
    )
