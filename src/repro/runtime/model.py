"""The distributed-traversal DES: one iteration on P simulated processes.

Per process the model runs the event sequence of paper Fig 2 / Fig 9:

* every bucket starts as a **local traversal** task (its work on the shared
  branch, on subtrees homed on its process, and on groups already cached);
* when a bucket's local task starts, it issues **cache requests** for every
  remote fetch group it will need (first-toucher only, per the cache
  model's dedupe rule);
* a request travels to the home process (latency), the response is
  serialized through the home's injection-bandwidth pipe, travels back
  (latency), and becomes a **cache insertion** whose execution depends on
  the model — any worker (WaitFree, least-busy dispatch), a process-wide
  mutex (XWrite), or the single designated writer thread (Sequential);
* once inserted, all bucket shares waiting on that group are released as
  **traversal resumption** tasks.

The simulated wall-clock of the slowest process is the iteration time.

When a :class:`~repro.faults.FaultPlan` is supplied, the same lifecycle
runs under injected faults — message drop/duplication, latency jitter,
transient fill failures, straggler processes, crash-with-restart — and the
runtime's recovery semantics engage: every outstanding request carries a
cancellable timeout timer with exponential-backoff resends, and a request
that exhausts its attempts raises a structured
:class:`~repro.faults.IterationFailure` instead of parking its waiters
forever.  Faults affect timing and communication only, never the physics
(the workload's interaction work is fixed before simulation starts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..cache.models import CacheModel, RetryPolicy, WAITFREE
from ..faults import FaultCounters, FaultInjector, FaultPlan, IterationFailure, as_injector
from ..obs import Telemetry, get_telemetry
from ..perf.critical_path import CPRecorder, CriticalPathReport, analyze_critical_path
from ..resilience.recovery import CrashRecovery, RecoveryReport
from .des import FifoResource, Simulator, WorkerPool
from .machine import MachineSpec, STAMPEDE2
from .tracing import ActivityTrace, activity_totals, barrier_waits
from .workload import CostModel, WorkloadSpec

__all__ = ["SimResult", "TraversalSim", "simulate_traversal"]


@dataclass
class SimResult:
    """Outcome of one simulated iteration."""

    time: float
    n_processes: int
    workers_per_process: int
    cache_model: str
    requests: int
    duplicate_requests: int
    bytes_moved: float
    activity: dict[str, float]
    trace: ActivityTrace | None = None
    events: int = 0
    #: injected-fault and recovery counters (None when no injector ran)
    faults: FaultCounters | None = None
    #: critical-path attribution (None unless ``critical_path=True``)
    critical_path: CriticalPathReport | None = None
    #: per-crash recovery accounting (None unless a crash actually fired)
    recovery: RecoveryReport | None = None
    #: the raw recorded event graph (None unless ``critical_path=True``);
    #: not serialized — the what-if engine replays it with virtual
    #: speedups (``repro explain``)
    cp_graph: CPRecorder | None = None

    @property
    def total_cores(self) -> int:
        return self.n_processes * self.workers_per_process

    @property
    def efficiency_denominator(self) -> float:
        busy = sum(self.activity.values())
        span = self.time * self.total_cores
        return busy / span if span > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable summary (trace omitted)."""
        out = {
            "time": self.time,
            "n_processes": self.n_processes,
            "workers_per_process": self.workers_per_process,
            "cache_model": self.cache_model,
            "requests": self.requests,
            "duplicate_requests": self.duplicate_requests,
            "bytes_moved": self.bytes_moved,
            "events": self.events,
            "activity": {k: float(v) for k, v in self.activity.items()},
        }
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.critical_path is not None:
            out["critical_path"] = self.critical_path.to_dict()
        if self.recovery is not None:
            out["recovery"] = self.recovery.to_dict()
        return out


@dataclass
class _GroupState:
    """Per (process, cache-key) fetch lifecycle.

    ``requesters`` tracks which worker threads have already asked for this
    group: with a process-wide atomic flag (WaitFree/XWrite) the first
    requester suppresses everyone; with per-thread request tracking
    (Sequential, PerThread) each thread's first touch sends its own
    message.
    """

    present: bool = False
    requesters: set = field(default_factory=set)
    waiters: list = field(default_factory=list)
    #: cancellable timeout timer of the outstanding send (fault runs only)
    timer: Any = None
    #: physical sends so far (1 + retries)
    attempts: int = 0


class TraversalSim:
    """One configured simulation; call :meth:`run`."""

    def __init__(
        self,
        workload: WorkloadSpec,
        machine: MachineSpec = STAMPEDE2,
        n_processes: int = 4,
        workers_per_process: int | None = None,
        cache_model: CacheModel = WAITFREE,
        cost: CostModel | None = None,
        traversal_style: str = "transposed",
        collect_trace: bool = False,
        processes_per_node: int = 1,
        telemetry: Telemetry | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        critical_path: bool = False,
    ) -> None:
        self.workload = workload
        self.machine = machine
        self.n_processes = n_processes
        self.workers = workers_per_process or machine.workers_per_node
        self.cache_model = cache_model
        base_cost = cost or CostModel()
        self.cost = base_cost.scaled_to(machine.clock_ghz)
        self.style_factor = self.cost.style_factor(traversal_style)
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        # Telemetry wants the timeline: the exported Chrome trace reproduces
        # the Projections-style Fig 9 view from the worker intervals.
        self.collect_trace = collect_trace or self.telemetry.enabled
        # Placement: block maps, hierarchy-preserving for SFC orders.
        self.part_proc = (
            np.arange(workload.n_partitions, dtype=np.int64) * n_processes
        ) // workload.n_partitions
        self.st_proc = (
            np.arange(workload.n_subtrees, dtype=np.int64) * n_processes
        ) // workload.n_subtrees

        self.sim = Simulator()
        self.trace = ActivityTrace() if self.collect_trace else None
        self.pools = [
            WorkerPool(self.sim, self.workers, trace=self.trace, process_id=p)
            for p in range(n_processes)
        ]
        #: home-side response serialization pipes (injection bandwidth)
        self.pipes = [FifoResource(self.sim, capacity=1) for _ in range(n_processes)]
        #: per-process comm thread: serializes outgoing fills in arrival
        #: order (Charm++ SMP comm thread), so duplicated requests queue
        #: behind the originals instead of racing them.
        self.comm_threads = [FifoResource(self.sim, capacity=1) for _ in range(n_processes)]
        #: XWrite: analytic per-process insertion mutex (time it frees up).
        self.mutex_free_at = [0.0] * n_processes
        #: Sequential: the single designated writer thread per process
        self.writers = [FifoResource(self.sim, capacity=1) for _ in range(n_processes)]
        self.states: list[dict[tuple[int, int], _GroupState]] = [
            {} for _ in range(n_processes)
        ]
        self.requests = 0
        self.duplicate_requests = 0
        self.bytes_moved = 0.0
        # Topology: processes sharing a node exchange messages through
        # shared memory; everything else crosses the network.
        self.processes_per_node = max(int(processes_per_node), 1)
        # Fault injection + recovery.  The injector is None on the fault-free
        # path, which therefore costs one `is not None` check per message
        # leg and schedules no timers at all.
        self.injector = as_injector(faults)
        self.retry: RetryPolicy = (
            self.injector.plan.retry if self.injector is not None else RetryPolicy()
        )
        #: per-process service-time multiplier (stragglers > 1)
        self._slow: list[float] = [1.0] * n_processes
        #: processes currently down (process -> restart-complete time)
        self._crashed_until: dict[int, float] = {}
        #: one CrashRecovery per fired crash event, in crash order
        self.recovery_events: list[CrashRecovery] = []
        #: lazily computed per-process checkpoint blob sizes
        self._ckpt_bytes_by_proc: np.ndarray | None = None
        # Critical-path recording: one shared event graph; the pools and
        # FIFO resources record their own queue/service nodes, the request
        # lifecycle below records the wire legs.  None keeps every hook on
        # the `is not None` fast path.
        self.cp: CPRecorder | None = CPRecorder() if critical_path else None
        if self.cp is not None:
            for pool in self.pools:
                pool.cp = self.cp
            for p, res in enumerate(self.comm_threads):
                res.cp = self.cp
                res.cp_label = "response serialize"
                res.cp_kind = "latency"
                res.cp_resource = f"comm.p{p}"
            for p, res in enumerate(self.pipes):
                res.cp = self.cp
                res.cp_label = "response send"
                res.cp_kind = "latency"
                res.cp_resource = f"pipe.p{p}"
            for p, res in enumerate(self.writers):
                res.cp = self.cp
                res.cp_label = "cache insertion"
                res.cp_kind = "compute"
                res.cp_resource = f"writer.p{p}"

    def _latency(self, a: int, b: int) -> float:
        if a // self.processes_per_node == b // self.processes_per_node:
            return self.machine.intra_latency_s
        return self.machine.net_latency_s

    # -- helpers --------------------------------------------------------------
    def _cache_key(self, group: int, thread: int) -> tuple[int, int]:
        """Which cache holds the fill: per-thread caches (PerThread) key by
        thread; every process-visible cache keys by group only."""
        if self.cache_model.name == "PerThread":
            return (thread % self.workers, group)
        return (0, group)

    def _enable(self, proc: int, state: _GroupState, cp: int | None = None) -> None:
        if state.timer is not None:
            # The fill landed: disarm the pending timeout so the fault-free
            # timeline (and final clock) is untouched by the timer.
            state.timer.cancel()
            state.timer = None
        state.present = True
        waiters = state.waiters
        state.waiters = []
        slow = self._slow[proc]
        for work in waiters:
            self.pools[proc].submit(work * slow, label="traversal resumption", cp=cp)

    def _request_group(self, proc: int, group: int, thread_hint: int,
                       origin: int | None = None) -> _GroupState:
        """Issue (or join) the fetch of ``group`` on process ``proc``."""
        thread = thread_hint % self.workers
        state = self.states[proc].setdefault(self._cache_key(group, thread), _GroupState())
        if state.present:
            return state
        if self.cache_model.dedupe_scope == "process":
            # Atomic requested flag on the placeholder: first toucher only.
            if state.requesters:
                return state
            requester = 0
        else:
            # Per-thread request tracking (no shared flag): each thread's
            # first touch sends its own message.
            if thread in state.requesters:
                return state
            requester = thread
        is_duplicate = bool(state.requesters)
        state.requesters.add(requester)
        if is_duplicate:
            self.duplicate_requests += 1
        self.requests += 1
        home = int(self.st_proc[self.workload.groups.group_subtree[group]])
        size = float(self.workload.groups.group_bytes[group])
        self._issue_request(proc, home, state, group, size, attempt=0, origin=origin)
        return state

    def _issue_request(
        self, proc: int, home: int, state: _GroupState, group: int,
        size: float, attempt: int, origin: int | None = None,
    ) -> None:
        """One physical send of the request, with per-leg faults applied
        and (on fault runs) a cancellable timeout that re-sends with
        exponential backoff."""
        sim = self.sim
        inj = self.injector
        cp = self.cp
        # Wire-leg nodes of this send, threaded through the closures so the
        # serialize -> send -> insert chain records causal edges.
        cp_req: list[int | None] = [None]
        cp_ret: list[int | None] = [None]
        send_time = size / self.machine.net_bandwidth_Bps
        # Stragglers slow CPU-bound steps: the home's serialization and the
        # requester's insertion, not wire latency or bandwidth.
        serialize_time = (
            self.cost.serialize_fixed + self.cost.serialize_per_byte * size
        ) * self._slow[home]
        insert_time = (
            self.cost.insert_fixed + self.cost.insert_per_byte * size
        ) * self._slow[proc]

        def arrive_home():
            # The home's comm thread serializes the response in arrival
            # order, then it streams through the injection-bandwidth pipe —
            # §III-A's "costs of these extra requests and responses" land
            # here when a cache design duplicates fetches (and when faults
            # force resends).
            self.bytes_moved += size
            self.comm_threads[home].submit(
                serialize_time,
                on_done=lambda: self.pipes[home].submit(
                    send_time, on_done=back_in_flight,
                    cp=self.comm_threads[home].cp_last if cp is not None else None,
                ),
                cp=cp_req[0],
            )

        def back_in_flight():
            latency = self._latency(home, proc)
            if inj is None:
                delay = latency
            else:
                if inj.drop_message():
                    return  # response lost; the timeout will re-send
                delay = inj.jittered(latency)
            if cp is not None:
                cp_ret[0] = cp.add(
                    "response wire", "latency", sim.now, sim.now + delay,
                    f"net.p{home}-p{proc}",
                    (self.pipes[home].cp_last,) if self.pipes[home].cp_last is not None else (),
                )
            sim.schedule(delay, do_insert)
            if inj is not None and inj.duplicate_message():
                sim.schedule(inj.jittered(latency), do_insert)

        def do_insert():
            if state.present:
                return  # a duplicate response landed after the first fill
            if inj is not None:
                if self._is_crashed(proc):
                    # The response reached a process that is down: lost with
                    # everything else in its memory; the timeout (still
                    # armed) re-sends after the restart.
                    inj.counters.drops += 1
                    return
                if state.timer is not None:
                    # The response made it back: the loss timeout is done.
                    # From here on the insertion is local work whose
                    # completion the worker pool guarantees.
                    state.timer.cancel()
                    state.timer = None
                if inj.fill_fails():
                    # Transient insertion failure after the data arrived —
                    # detected locally (unlike a lost message), so retry
                    # immediately instead of waiting out a timeout.
                    self._retry(proc, home, state, group, size, attempt,
                                reason="fill failure", sent_at=sent_at)
                    return
            policy = self.cache_model.insert_policy
            if policy == "parallel":
                # Wait-free: any worker inserts; dispatched to the least busy.
                self.pools[proc].submit_to_least_busy(
                    insert_time, label="cache insertion",
                    on_done=lambda: self._enable(
                        proc, state, cp=self.pools[proc].cp_last),
                    cp=cp_ret[0],
                )
            elif policy == "locked":
                # Exclusive write: the inserting worker spins until the
                # process-wide lock frees, then holds it for the insert —
                # both the wait and the insert burn worker time, which is
                # the degradation mechanism the paper observes at scale.
                # (On the critical path the lock wait is folded into the
                # insertion's compute time — it burns the worker either way.)
                now = sim.now
                wait = max(0.0, self.mutex_free_at[proc] - now)
                self.mutex_free_at[proc] = now + wait + insert_time
                self.pools[proc].submit_to_least_busy(
                    wait + insert_time, label="cache insertion",
                    on_done=lambda: self._enable(
                        proc, state, cp=self.pools[proc].cp_last),
                    cp=cp_ret[0],
                )
            else:  # single_thread
                # All fills funnel through the one designated writer; the
                # queue at that writer delays dependent traversals.
                self.writers[proc].submit(
                    insert_time,
                    on_done=lambda: self._enable(
                        proc, state, cp=self.writers[proc].cp_last),
                    cp=cp_ret[0],
                )

        latency_out = self._latency(proc, home)
        if inj is None:
            if cp is not None:
                cp_req[0] = cp.add(
                    "request wire", "latency", sim.now, sim.now + latency_out,
                    f"net.p{proc}-p{home}", (origin,) if origin is not None else (),
                )
            sim.schedule(latency_out, arrive_home)
            return
        # Fault path: apply request-leg faults and arm the retry timeout.
        sent_at = sim.now
        if not inj.drop_message():
            delay_out = inj.jittered(latency_out)
            if cp is not None:
                cp_req[0] = cp.add(
                    "request wire", "latency", sim.now, sim.now + delay_out,
                    f"net.p{proc}-p{home}", (origin,) if origin is not None else (),
                )
            sim.schedule(delay_out, arrive_home)
            if inj.duplicate_message():
                sim.schedule(inj.jittered(latency_out), arrive_home)
        state.attempts = attempt + 1
        # The timeout guards against *message loss* only — once the
        # response is back (do_insert) the timer is disarmed, because the
        # insertion is local work the worker pool is guaranteed to finish.
        self._arm_timeout(proc, home, state, group, size, attempt, sent_at)

    def _net_rtt(self, proc: int, home: int, size: float) -> float:
        """Round-trip estimate for a request message under the *current*
        congestion of the home's comm thread and injection pipe."""
        send_time = size / self.machine.net_bandwidth_Bps
        serialize_time = (
            self.cost.serialize_fixed + self.cost.serialize_per_byte * size
        ) * self._slow[home]
        return (
            self._latency(proc, home)
            + (self.comm_threads[home].backlog_jobs + 1) * serialize_time
            + (self.pipes[home].backlog_jobs + 1) * send_time
            + self._latency(home, proc)
        )

    def _arm_timeout(
        self, proc: int, home: int, state: _GroupState, group: int,
        size: float, attempt: int, sent_at: float,
    ) -> None:
        window = self.retry.timeout_for(attempt, self._net_rtt(proc, home, size))

        def on_timeout():
            self._on_timeout(proc, home, state, group, size, attempt, sent_at,
                             this_timer)

        this_timer = self.sim.schedule(window, on_timeout, silent=True)
        if state.timer is not None:
            # Thread-scope models send duplicate requests for one group
            # state; a single outstanding timeout (the newest send) covers
            # the fill.  Cancelling the superseded timer keeps it from
            # firing into the stale guard later — which would silently
            # stretch the simulated clock.
            state.timer.cancel()
        state.timer = this_timer

    def _on_timeout(
        self, proc: int, home: int, state: _GroupState, group: int,
        size: float, attempt: int, sent_at: float, this_timer,
    ) -> None:
        if state.present or state.timer is not this_timer:
            # The fill landed (or a newer send owns the request); a stale
            # timer must not trigger a duplicate retry chain.
            return
        if self.comm_threads[home].backlog_jobs or self.pipes[home].backlog_jobs:
            # The home is still streaming responses — ours may simply be
            # queued behind them (a burst of requests can outgrow any
            # window estimated at send time).  Extend the wait instead of
            # burning an attempt: loss is only declared against an idle
            # home, which keeps congestion from masquerading as loss and
            # starving the retry budget.
            self._arm_timeout(proc, home, state, group, size, attempt, sent_at)
            return
        state.timer = None
        self.injector.counters.timeouts += 1
        self._retry(proc, home, state, group, size, attempt,
                    reason="timeout", sent_at=sent_at)

    def _retry(
        self, proc: int, home: int, state: _GroupState, group: int,
        size: float, attempt: int, reason: str, sent_at: float | None = None,
    ) -> None:
        """Re-send with exponential backoff; structured failure at the cap."""
        counters = self.injector.counters
        if attempt + 1 >= self.retry.max_attempts:
            raise IterationFailure(
                f"retries exhausted after {reason}",
                process=proc, group=group, attempts=attempt + 1,
                sim_time=self.sim.now, counters=counters,
            )
        counters.retries += 1
        if self.telemetry.enabled and sent_at is not None:
            # The retry interval as a span on simulated time: from the
            # failed send to the re-send.
            self.telemetry.tracer.complete(
                "faults.retry", sent_at, self.sim.now, cat="faults",
                pid=proc, group=group, attempt=attempt,
            )
        self.telemetry.flight.record(
            "faults.retry", process=proc, group=group, attempt=attempt,
            reason=reason, sim_time=self.sim.now,
        )
        self._issue_request(proc, home, state, group, size, attempt=attempt + 1)

    # -- crash-with-restart ----------------------------------------------------
    def _is_crashed(self, proc: int) -> bool:
        until = self._crashed_until.get(proc)
        return until is not None and self.sim.now < until

    def _checkpoint_bytes(self, proc: int) -> float:
        """Size of the rank's in-memory checkpoint blob: the fill payload
        of every fetch group homed on it (the Subtree data that rank owns)
        plus a fixed header for particle/bookkeeping state."""
        if self._ckpt_bytes_by_proc is None:
            group_bytes = np.asarray(self.workload.groups.group_bytes, dtype=np.float64)
            home = self.st_proc[np.asarray(self.workload.groups.group_subtree)]
            self._ckpt_bytes_by_proc = np.bincount(
                home, weights=group_bytes, minlength=self.n_processes
            )
        return float(self._ckpt_bytes_by_proc[proc]) + 4096.0

    def _crash(self, proc: int, restart_delay: float) -> None:
        """Process ``proc`` dies now and restarts ``restart_delay`` later —
        and the crash *loses state*, which recovery must pay to rebuild:

        * every present cache line is forgotten (cold cache: later buckets
          re-request those groups) and counted as lost bytes;
        * responses in flight to the process are lost (their timeouts
          re-send after the restart);
        * queued worker tasks stall through the restart window, then are
          re-issued from the preempted queues;
        * after the restart the process fetches its buddy's in-memory
          checkpoint replica (Charm++ double checkpointing): request
          latency to the buddy, serialization on the buddy's comm thread,
          the blob through the buddy's injection pipe, latency back, and a
          local deserialize that stalls every worker again.  Re-issued
          traversal work overlaps the fetch (the restarted workers chew
          their queues while the blob streams in), mirroring a restart
          that overlaps recovery with recomputation.

        On single-process runs there is no buddy; the local blob is
        reloaded, paying deserialize time only.
        """
        sim = self.sim
        self.injector.counters.crash_restarts += 1
        self._crashed_until[proc] = sim.now + restart_delay
        self.telemetry.flight.record(
            "des.crash", process=proc, sim_time=sim.now,
            restart_delay=restart_delay,
        )
        group_bytes = self.workload.groups.group_bytes
        lost_lines = 0
        lost_bytes = 0.0
        in_flight = 0
        for key, st in self.states[proc].items():
            if st.present:
                st.present = False
                st.requesters.clear()
                lost_lines += 1
                lost_bytes += float(group_bytes[key[1]])
            elif st.requesters:
                in_flight += 1
        tasks_reissued = self.pools[proc].queued
        self.pools[proc].preempt_all(restart_delay, label="restart")

        buddy = (proc + 1) % self.n_processes if self.n_processes > 1 else None
        ckpt_bytes = self._checkpoint_bytes(proc)
        rec = CrashRecovery(
            process=proc, buddy=buddy, crashed_at=sim.now,
            restart_delay=restart_delay, lost_cache_lines=lost_lines,
            lost_bytes=lost_bytes, requests_in_flight=in_flight,
            tasks_reissued=tasks_reissued, checkpoint_bytes=ckpt_bytes,
        )
        self.recovery_events.append(rec)

        deserialize_time = (
            self.cost.insert_fixed + self.cost.insert_per_byte * ckpt_bytes
        ) * self._slow[proc]

        def finish_recovery():
            rec.recovered_at = sim.now
            self.telemetry.flight.record(
                "des.recovered", process=proc, sim_time=sim.now,
                bytes_refetched=rec.bytes_refetched,
            )

        def deserialize():
            if buddy is not None:
                rec.bytes_refetched = ckpt_bytes
            self.pools[proc].preempt_all(deserialize_time, label="checkpoint load")
            sim.schedule(deserialize_time, finish_recovery)

        if buddy is None:
            sim.schedule(restart_delay, deserialize)
            return

        serialize_time = (
            self.cost.serialize_fixed + self.cost.serialize_per_byte * ckpt_bytes
        ) * self._slow[buddy]
        send_time = ckpt_bytes / self.machine.net_bandwidth_Bps

        def response_back():
            sim.schedule(self._latency(buddy, proc), deserialize)

        def request_arrives():
            # The checkpoint channel is reliable (the recovery protocol
            # retries internally), but it shares the buddy's comm thread
            # and injection pipe with regular fills, so a busy buddy slows
            # the recovery — and the blob slows the buddy's own responses.
            self.bytes_moved += ckpt_bytes
            self.comm_threads[buddy].submit(
                serialize_time,
                on_done=lambda: self.pipes[buddy].submit(
                    send_time, on_done=response_back
                ),
            )

        def start_fetch():
            sim.schedule(self._latency(proc, buddy), request_arrives)

        sim.schedule(restart_delay, start_fetch)

    def _export_telemetry(
        self, telemetry: Telemetry, total_time: float, activity: dict[str, float],
        cp_report: CriticalPathReport | None = None,
        recovery: RecoveryReport | None = None,
    ) -> None:
        """Fold the finished simulation into the telemetry session: every
        worker-task interval becomes a trace event on simulated time (pid =
        process, tid = worker — the Fig 9 timeline), and the communication
        counters land in the metrics registry."""
        if self.trace is not None:
            telemetry.tracer.record_activity_trace(self.trace)
        metrics = telemetry.metrics
        model = self.cache_model.name
        if self.trace is not None and self.trace.intervals:
            # Per-task simulated service durations, vectorised into the
            # log2 latency histogram (the DES analogue of exec.task.latency,
            # what SLO specs evaluate over simulated traffic shapes).
            iv = np.asarray(
                [(s, e) for (_, _, s, e, _) in self.trace.intervals],
                dtype=np.float64,
            )
            metrics.latency("des.task.latency", model=model).observe_many(
                iv[:, 1] - iv[:, 0]
            )
        metrics.counter("des.requests", model=model).inc(self.requests)
        metrics.counter("des.duplicate_requests", model=model).inc(self.duplicate_requests)
        metrics.counter("des.bytes_moved", model=model).inc(self.bytes_moved)
        metrics.counter("des.events", model=model).inc(self.sim.events_processed)
        metrics.gauge("des.sim_time", model=model).set(total_time)
        for label, seconds in activity.items():
            metrics.counter("des.busy_seconds", model=model, activity=label).inc(seconds)
        if self.injector is not None:
            metrics.absorb_fault_counters(self.injector.counters, model=model)
        if cp_report is not None:
            telemetry.tracer.record_critical_path(cp_report)
            for kind, seconds in cp_report.components.items():
                metrics.gauge("des.critical_path", model=model, kind=kind).set(seconds)
        if recovery is not None:
            telemetry.tracer.record_recovery(recovery)
            metrics.absorb_recovery_report(recovery, model=model)

    # -- main -------------------------------------------------------------------
    def run(self) -> SimResult:
        wl = self.workload
        st_proc = self.st_proc
        group_subtree = wl.groups.group_subtree
        factor = self.style_factor
        if self.injector is not None:
            # Per-process draws happen once, up front, in process order —
            # the straggler factors then scale every CPU-bound service time,
            # and crashes are pinned to fractions of the estimated
            # fault-free makespan.
            self._slow = self.injector.straggler_factors(self.n_processes)
            est_makespan = wl.total_work * factor / max(
                self.n_processes * self.workers, 1
            )
            for ev in self.injector.crash_events(self.n_processes):
                self.sim.schedule(
                    ev.at_fraction * est_makespan,
                    lambda p=ev.process, d=ev.restart_fraction * est_makespan:
                        self._crash(p, d),
                )
        # Buckets are spatially contiguous in workload order (tree order);
        # block-assign them to worker threads within each process so
        # per-thread caches overlap only at block borders, like partitions
        # bound to PEs do in the real runtime.
        proc_of_bucket = [int(self.part_proc[b.partition]) for b in wl.buckets]
        per_proc_seq: dict[int, int] = {}
        seq_in_proc = []
        for p in proc_of_bucket:
            seq_in_proc.append(per_proc_seq.get(p, 0))
            per_proc_seq[p] = seq_in_proc[-1] + 1
        thread_hints = [
            (s * self.workers) // max(per_proc_seq[p], 1)
            for s, p in zip(seq_in_proc, proc_of_bucket)
        ]
        for seq, bucket in enumerate(wl.buckets):
            proc = proc_of_bucket[seq]
            local_work = 0.0
            remote: list[tuple[int, float]] = []
            for g, w in bucket.work_by_group.items():
                if g < 0 or int(st_proc[group_subtree[g]]) == proc:
                    local_work += w * factor
                else:
                    remote.append((g, w * factor))

            def start_bucket(proc=proc, remote=remote, hint=thread_hints[seq]):
                slow = self._slow[proc]
                # The local traversal task that is just starting is the
                # causal origin of every request it issues.
                origin = self.pools[proc].cp_last if self.cp is not None else None
                # Issuing the requests costs worker time ("cache request").
                for g, w in remote:
                    state = self._request_group(proc, g, thread_hint=hint,
                                                origin=origin)
                    if state.present:
                        self.pools[proc].submit(w * slow,
                                                label="traversal resumption",
                                                cp=origin)
                    else:
                        state.waiters.append(w)
                if remote:
                    self.pools[proc].submit(
                        self.cost.request_cpu * len(remote) * slow,
                        label="cache request", cp=origin,
                    )

            # Requests go out when this bucket's local traversal *starts*
            # (the traversal discovers its remote needs as it walks), which
            # spreads requests through the iteration like Fig 9 shows.
            self.pools[proc].submit(
                max(local_work, 1e-12) * self._slow[proc], label="local traversal",
                on_start=start_bucket,
            )

        telemetry = self.telemetry
        with telemetry.tracer.span(
            "des.run", cat="des.loop",
            n_processes=self.n_processes, workers=self.workers,
            cache_model=self.cache_model.name, machine=self.machine.name,
        ):
            total_time = self.sim.run()
        activity = activity_totals(self.trace) if self.trace else {
            "busy": sum(p.busy_time for p in self.pools)
        }
        cp_report = None
        if self.cp is not None:
            cp_report = analyze_critical_path(
                self.cp,
                makespan=total_time,
                barrier_wait=(barrier_waits(self.trace, total_time)
                              if self.trace is not None else None),
            )
        recovery = (
            RecoveryReport(list(self.recovery_events))
            if self.recovery_events else None
        )
        if telemetry.enabled:
            self._export_telemetry(telemetry, total_time, activity, cp_report,
                                   recovery)
        return SimResult(
            time=total_time,
            n_processes=self.n_processes,
            workers_per_process=self.workers,
            cache_model=self.cache_model.name,
            requests=self.requests,
            duplicate_requests=self.duplicate_requests,
            bytes_moved=self.bytes_moved,
            activity=activity,
            trace=self.trace,
            events=self.sim.events_processed,
            faults=self.injector.counters if self.injector is not None else None,
            critical_path=cp_report,
            recovery=recovery,
            cp_graph=self.cp,
        )


def simulate_traversal(
    workload: WorkloadSpec,
    machine: MachineSpec = STAMPEDE2,
    n_processes: int = 4,
    workers_per_process: int | None = None,
    cache_model: CacheModel = WAITFREE,
    cost: CostModel | None = None,
    traversal_style: str = "transposed",
    collect_trace: bool = False,
    processes_per_node: int = 1,
    telemetry: Telemetry | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    critical_path: bool = False,
) -> SimResult:
    """Convenience wrapper: configure and run one :class:`TraversalSim`."""
    return TraversalSim(
        workload,
        machine=machine,
        n_processes=n_processes,
        workers_per_process=workers_per_process,
        cache_model=cache_model,
        cost=cost,
        traversal_style=traversal_style,
        collect_trace=collect_trace,
        processes_per_node=processes_per_node,
        telemetry=telemetry,
        faults=faults,
        critical_path=critical_path,
    ).run()
