"""Decomposition: dividing particles (load) and tree (memory) across processes.

Implements the paper's *Partitions–Subtrees* model (§II-C): Partitions own
particle buckets and represent work; Subtrees own tree segments and
represent memory.  The two are decomposed independently — Partitions by the
configured decomposition type (SFC, octree, longest-dimension/ORB), Subtrees
always consistently with the tree — and reconciled in the leaf-sharing step,
where buckets whose particles span several Partitions are split into local
buckets (Fig 5).
"""

from .splitters import (
    Decomposer,
    SfcDecomposer,
    HilbertDecomposer,
    OctDecomposer,
    LongestDimDecomposer,
    get_decomposer,
    register_decomposer,
)
from .partitions import (
    Decomposition,
    Partition,
    Subtree,
    decompose,
    branch_duplication_count,
)
from .buildtime import BuildTimes, estimate_build_times
from .loadbalance import (
    imbalance,
    sfc_rebalance,
    spatial_bisection_rebalance,
    apply_rebalance,
)

__all__ = [
    "Decomposer",
    "SfcDecomposer",
    "HilbertDecomposer",
    "OctDecomposer",
    "LongestDimDecomposer",
    "get_decomposer",
    "register_decomposer",
    "Decomposition",
    "Partition",
    "Subtree",
    "decompose",
    "branch_duplication_count",
    "BuildTimes",
    "estimate_build_times",
    "imbalance",
    "sfc_rebalance",
    "spatial_bisection_rebalance",
    "apply_rebalance",
]
