"""Initial-condition generators for the paper's workloads.

The evaluation uses three particle distributions:

* a *uniform* cosmological volume (Fig 10 gravity, Fig 11 SPH),
* a *clustered* dataset (Fig 3 cache-model study) — we model clustering as a
  superposition of Plummer clumps on a uniform background, which produces the
  deep, imbalanced octrees that stress caching and decomposition,
* a *Keplerian planetesimal disk* with an embedded giant planet
  (Figs 12 & 13 case study).

All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .particles import ParticleSet

__all__ = [
    "uniform_cube",
    "plummer_sphere",
    "clustered_clumps",
    "keplerian_disk",
    "DiskParams",
]


def uniform_cube(
    n: int,
    side: float = 1.0,
    total_mass: float = 1.0,
    seed: int = 0,
    velocity_dispersion: float = 0.0,
) -> ParticleSet:
    """Uniform random particles in a cube centred on the origin."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-side / 2, side / 2, size=(n, 3))
    vel = (
        rng.normal(0.0, velocity_dispersion, size=(n, 3))
        if velocity_dispersion > 0
        else np.zeros((n, 3))
    )
    mass = np.full(n, total_mass / n)
    return ParticleSet(pos, vel, mass)


def plummer_sphere(
    n: int,
    scale_radius: float = 1.0,
    total_mass: float = 1.0,
    seed: int = 0,
    center=(0.0, 0.0, 0.0),
    max_radius_factor: float = 10.0,
) -> ParticleSet:
    """Plummer-model sphere (Aarseth, Henon & Wielen 1974 sampling).

    Radius is drawn by inverting the cumulative mass profile
    ``M(r) = M (r/a)^3 / (1 + (r/a)^2)^{3/2}``; directions are isotropic.
    Velocities are set to zero (the paper's traversal studies are
    force-evaluation benchmarks, not dynamical evolution).
    """
    rng = np.random.default_rng(seed)
    # Inverse-CDF radius sampling, clipped to avoid unbounded outliers.
    x = rng.uniform(0.0, 1.0, n)
    x = np.clip(x, 1e-10, 1 - 1e-10)
    r = scale_radius / np.sqrt(x ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, max_radius_factor * scale_radius)
    # Isotropic directions.
    cos_t = rng.uniform(-1.0, 1.0, n)
    sin_t = np.sqrt(1.0 - cos_t**2)
    phi = rng.uniform(0.0, 2 * np.pi, n)
    pos = np.column_stack(
        [r * sin_t * np.cos(phi), r * sin_t * np.sin(phi), r * cos_t]
    ) + np.asarray(center, dtype=np.float64)
    mass = np.full(n, total_mass / n)
    return ParticleSet(pos, np.zeros((n, 3)), mass)


def clustered_clumps(
    n: int,
    n_clumps: int = 8,
    side: float = 1.0,
    background_fraction: float = 0.2,
    clump_scale: float = 0.02,
    total_mass: float = 1.0,
    seed: int = 0,
) -> ParticleSet:
    """Clustered distribution: Plummer clumps over a uniform background.

    Mimics the highly non-uniform datasets (e.g. evolved cosmological
    volumes) the paper uses for the Fig 3 cache study; produces octrees with
    large depth variance, which drives remote-fetch imbalance.
    """
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_bg = int(round(n * background_fraction))
    n_cl = n - n_bg
    pieces: list[ParticleSet] = []
    if n_bg:
        pieces.append(uniform_cube(n_bg, side=side, total_mass=1.0, seed=seed + 1))
    if n_cl and n_clumps > 0:
        counts = np.full(n_clumps, n_cl // n_clumps)
        counts[: n_cl % n_clumps] += 1
        centers = rng.uniform(-0.4 * side, 0.4 * side, size=(n_clumps, 3))
        for k, (cnt, c) in enumerate(zip(counts, centers)):
            if cnt == 0:
                continue
            pieces.append(
                plummer_sphere(
                    int(cnt),
                    scale_radius=clump_scale * side,
                    total_mass=1.0,
                    seed=seed + 100 + k,
                    center=c,
                    max_radius_factor=5.0,
                )
            )
    out = ParticleSet.concatenate(pieces)
    out.mass[:] = total_mass / len(out)
    # Restore a fresh identity ordering: pieces each carried their own indices.
    out._fields["orig_index"] = np.arange(len(out), dtype=np.int64)
    return out


@dataclass
class DiskParams:
    """Parameters of the planetesimal-disk generator (paper §IV).

    Defaults follow the case study: a disk of planetesimals around a solar
    mass star with a Jupiter-mass planet at 5.2 AU.  Units: AU, years,
    solar masses, with G = 4π² (so a 1 AU circular orbit has period 1 yr).
    """

    inner_radius: float = 2.0       # AU
    outer_radius: float = 4.0       # AU
    star_mass: float = 1.0          # M_sun
    planet_mass: float = 9.55e-4    # M_sun (Jupiter)
    planet_radius_au: float = 5.2   # semi-major axis of the perturber
    planetesimal_total_mass: float = 1e-6
    planetesimal_radius: float = 3.3e-7  # 50 km in AU
    eccentricity_dispersion: float = 1e-3
    inclination_dispersion: float = 5e-4
    surface_density_exponent: float = -1.5  # Sigma ~ r^-3/2 (MMSN)


#: Gravitational constant in AU^3 / (M_sun yr^2).
G_AU_MSUN_YR = 4.0 * np.pi**2


def keplerian_disk(
    n: int,
    params: DiskParams | None = None,
    seed: int = 0,
    include_star: bool = True,
    include_planet: bool = True,
) -> ParticleSet:
    """Planetesimal disk on near-circular, near-coplanar Keplerian orbits.

    Returns a ParticleSet with extra fields:

    * ``radius`` — physical radius for collision detection,
    * ``ptype`` — 0 planetesimal, 1 star, 2 planet.

    The star sits at the origin and the planet on a circular orbit; both are
    included as particles so the same gravity traversal handles them.
    """
    p = params or DiskParams()
    rng = np.random.default_rng(seed)
    # Sample semi-major axes from Sigma(r) ~ r^alpha => P(a) ~ a^(alpha+1).
    k = p.surface_density_exponent + 1.0
    u = rng.uniform(0.0, 1.0, n)
    if abs(k + 1.0) < 1e-12:
        a = p.inner_radius * (p.outer_radius / p.inner_radius) ** u
    else:
        lo, hi = p.inner_radius ** (k + 1.0), p.outer_radius ** (k + 1.0)
        a = (lo + u * (hi - lo)) ** (1.0 / (k + 1.0))
    ecc = np.abs(rng.rayleigh(p.eccentricity_dispersion, n))
    inc = np.abs(rng.rayleigh(p.inclination_dispersion, n))
    # Random phase angles.
    omega = rng.uniform(0, 2 * np.pi, n)   # argument of pericentre
    capom = rng.uniform(0, 2 * np.pi, n)   # longitude of ascending node
    nu = rng.uniform(0, 2 * np.pi, n)      # true anomaly

    mu = G_AU_MSUN_YR * p.star_mass
    pos, vel = _elements_to_cartesian(a, ecc, inc, omega, capom, nu, mu)

    mass = np.full(n, p.planetesimal_total_mass / max(n, 1))
    radius = np.full(n, p.planetesimal_radius)
    ptype = np.zeros(n, dtype=np.int8)

    bodies = [pos]
    vels = [vel]
    masses = [mass]
    radii = [radius]
    types = [ptype]
    if include_planet:
        v_circ = np.sqrt(mu / p.planet_radius_au)
        bodies.append(np.array([[p.planet_radius_au, 0.0, 0.0]]))
        vels.append(np.array([[0.0, v_circ, 0.0]]))
        masses.append(np.array([p.planet_mass]))
        radii.append(np.array([4.78e-4]))  # Jupiter radius in AU
        types.append(np.array([2], dtype=np.int8))
    if include_star:
        bodies.append(np.zeros((1, 3)))
        vels.append(np.zeros((1, 3)))
        masses.append(np.array([p.star_mass]))
        radii.append(np.array([4.65e-3]))  # solar radius in AU
        types.append(np.array([1], dtype=np.int8))

    return ParticleSet(
        np.concatenate(bodies),
        np.concatenate(vels),
        np.concatenate(masses),
        radius=np.concatenate(radii),
        ptype=np.concatenate(types),
    )


def _elements_to_cartesian(a, ecc, inc, omega, capom, nu, mu):
    """Convert Keplerian orbital elements to Cartesian state vectors.

    Standard perifocal-to-inertial rotation; all inputs are arrays of equal
    length, ``mu`` is the standard gravitational parameter.
    """
    a = np.asarray(a, dtype=np.float64)
    semilatus = a * (1.0 - ecc**2)
    r = semilatus / (1.0 + ecc * np.cos(nu))
    # Perifocal coordinates.
    x_pf = r * np.cos(nu)
    y_pf = r * np.sin(nu)
    vfac = np.sqrt(mu / semilatus)
    vx_pf = -vfac * np.sin(nu)
    vy_pf = vfac * (ecc + np.cos(nu))

    co, so = np.cos(omega), np.sin(omega)
    cO, sO = np.cos(capom), np.sin(capom)
    ci, si = np.cos(inc), np.sin(inc)

    # Rotation matrix rows (perifocal -> inertial).
    r11 = cO * co - sO * so * ci
    r12 = -cO * so - sO * co * ci
    r21 = sO * co + cO * so * ci
    r22 = -sO * so + cO * co * ci
    r31 = so * si
    r32 = co * si

    pos = np.column_stack(
        [r11 * x_pf + r12 * y_pf, r21 * x_pf + r22 * y_pf, r31 * x_pf + r32 * y_pf]
    )
    vel = np.column_stack(
        [r11 * vx_pf + r12 * vy_pf, r21 * vx_pf + r22 * vy_pf, r31 * vx_pf + r32 * vy_pf]
    )
    return pos, vel
