"""Exporters: Chrome trace-event JSON, metrics JSON/CSV, console report.

The trace format is the Trace Event Format consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: a ``traceEvents`` array
of complete events (``ph == "X"``) with microsecond ``ts``/``dur`` and
``pid``/``tid`` lanes.  Driver-phase spans land on pid 0; DES worker
intervals keep their simulated (process, worker) as (pid, tid), which
reproduces a Projections-style Fig 9 timeline.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dict",
    "write_metrics_json",
    "write_metrics_csv",
    "console_report",
]


def chrome_trace(telemetry_or_tracer, **other_data: Any) -> dict[str, Any]:
    """The trace as a JSON-ready dict ``{"traceEvents": [...]}``."""
    tracer = getattr(telemetry_or_tracer, "tracer", telemetry_or_tracer)
    events: list[dict[str, Any]] = list(tracer.events)
    # Name the critical-path lane(s) so the highlighted track reads as such
    # in Perfetto; "M" metadata events are the format's naming mechanism.
    cp_pids = sorted({e["pid"] for e in events if e.get("cat") == "critical-path"})
    meta = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "⚑ critical path"}}
        for pid in cp_pids
    ]
    rec_pids = sorted({e["pid"] for e in events if e.get("cat") == "recovery"})
    meta += [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "⟲ recovery"}}
        for pid in rec_pids
    ]
    doc: dict[str, Any] = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
    }
    if other_data:
        doc["otherData"] = {k: str(v) for k, v in other_data.items()}
    return doc


def write_chrome_trace(telemetry_or_tracer, path: str, **other_data: Any) -> int:
    """Write the trace to ``path``; returns the number of events."""
    doc = chrome_trace(telemetry_or_tracer, **other_data)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def metrics_dict(telemetry_or_registry) -> dict[str, Any]:
    """All metric snapshots as a JSON-ready dict."""
    registry = getattr(telemetry_or_registry, "metrics", telemetry_or_registry)
    return {"metrics": registry.collect()}


def write_metrics_json(telemetry_or_registry, path: str) -> int:
    doc = metrics_dict(telemetry_or_registry)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return len(doc["metrics"])


def _metric_rows(registry) -> list[dict[str, Any]]:
    rows = []
    for snap in registry.collect():
        labels = ";".join(f"{k}={v}" for k, v in sorted(snap["labels"].items()))
        if snap["type"] == "histogram":
            value, extra = snap["mean"], f"count={snap['count']}"
        elif snap["type"] == "latency":
            q = snap.get("quantiles", {})
            value = snap["mean"]
            extra = (f"count={snap['count']}"
                     + "".join(f";{k}={v:.4g}" for k, v in q.items()))
        else:
            value, extra = snap["value"], ""
        rows.append({"name": snap["name"], "type": snap["type"],
                     "labels": labels, "value": value, "extra": extra})
    return rows


def write_metrics_csv(telemetry_or_registry, path: str) -> int:
    """``name,type,labels,value,extra`` rows, one per instrument."""
    registry = getattr(telemetry_or_registry, "metrics", telemetry_or_registry)
    rows = _metric_rows(registry)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=["name", "type", "labels", "value", "extra"])
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def console_report(telemetry, max_rows: int = 60) -> str:
    """Human-readable summary: span totals by name, then the metrics table."""
    out = io.StringIO()
    tracer = telemetry.tracer
    events = [e for e in tracer.events if e.get("cat") != "des"]
    des_events = len(tracer.events) - len(events)

    if events:
        agg: dict[str, list[float]] = {}
        for e in events:
            slot = agg.setdefault(e["name"], [0, 0.0])
            slot[0] += 1
            slot[1] += e["dur"]
        print("-- spans " + "-" * 51, file=out)
        print(f"{'span':<32} {'count':>7} {'total ms':>12}", file=out)
        for name, (count, dur_us) in sorted(agg.items(), key=lambda kv: -kv[1][1]):
            print(f"{name:<32} {count:>7} {dur_us / 1e3:>12.3f}", file=out)
        if des_events:
            print(f"(+ {des_events} DES timeline events on simulated time)", file=out)

    metrics = telemetry.metrics.collect()
    if metrics:
        print("-- metrics " + "-" * 49, file=out)
        print(f"{'metric':<40} {'value':>14}", file=out)
        for snap in metrics[:max_rows]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(snap["labels"].items()))
            name = snap["name"] + (f"{{{labels}}}" if labels else "")
            if snap["type"] == "histogram":
                value = f"n={snap['count']} mean={snap['mean']:.4g}"
                print(f"{name:<40} {value:>14}", file=out)
            elif snap["type"] == "latency":
                q = snap.get("quantiles", {})
                value = (f"n={snap['count']}"
                         f" p50={q.get('p50', 0.0):.4g}"
                         f" p99={q.get('p99', 0.0):.4g}")
                print(f"{name:<40} {value:>24}", file=out)
            else:
                print(f"{name:<40} {snap['value']:>14.6g}", file=out)
        if len(metrics) > max_rows:
            print(f"... {len(metrics) - max_rows} more metrics", file=out)
    return out.getvalue()
