"""ParticleSet container, generators, and snapshot I/O."""

import numpy as np
import pytest

from repro.particles import (
    DiskParams,
    ParticleSet,
    clustered_clumps,
    keplerian_disk,
    load_particles,
    plummer_sphere,
    save_particles,
    uniform_cube,
)
from repro.particles.generators import G_AU_MSUN_YR


class TestParticleSet:
    def test_defaults(self):
        p = ParticleSet(np.zeros((5, 3)))
        assert len(p) == 5
        assert np.array_equal(p.velocity, np.zeros((5, 3)))
        assert np.array_equal(p.mass, np.ones(5))
        assert np.array_equal(p.orig_index, np.arange(5))

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((5, 2)))

    def test_extra_fields(self):
        p = ParticleSet(np.zeros((4, 3)), radius=np.ones(4))
        assert p.has_field("radius")
        assert "radius" in p.field_names
        with pytest.raises(AttributeError):
            p.nonexistent_field

    def test_extra_field_wrong_length_raises(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((4, 3)), radius=np.ones(3))

    def test_add_field_reserved_name(self):
        p = ParticleSet(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            p.add_field("orig_index", np.zeros(2))

    def test_permuted_keeps_alignment(self):
        rng = np.random.default_rng(0)
        pos = rng.normal(size=(10, 3))
        mass = rng.uniform(1, 2, 10)
        p = ParticleSet(pos, mass=mass)
        order = rng.permutation(10)
        q = p.permuted(order)
        assert np.array_equal(q.position, pos[order])
        assert np.array_equal(q.mass, mass[order])
        assert np.array_equal(q.orig_index, order)

    def test_scatter_to_input_order(self):
        pos = np.arange(30, dtype=float).reshape(10, 3)
        p = ParticleSet(pos)
        order = np.random.default_rng(1).permutation(10)
        q = p.permuted(order)
        values = q.position[:, 0]  # some per-particle result in q's order
        back = q.scatter_to_input_order(values)
        assert np.array_equal(back, pos[:, 0])

    def test_double_permutation_scatter(self):
        """scatter_to_input_order undoes *all* accumulated permutations."""
        p = ParticleSet(np.arange(15, dtype=float).reshape(5, 3))
        rng = np.random.default_rng(2)
        q = p.permuted(rng.permutation(5)).permuted(rng.permutation(5))
        assert np.array_equal(
            q.scatter_to_input_order(q.position[:, 0]), p.position[:, 0]
        )

    def test_select_mask_and_index(self):
        p = ParticleSet(np.arange(12, dtype=float).reshape(4, 3))
        sub = p.select(np.array([True, False, True, False]))
        assert len(sub) == 2
        sub2 = p.select(np.array([2, 3]))
        assert np.array_equal(sub2.position, p.position[2:])

    def test_center_of_mass(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        p = ParticleSet(pos, mass=np.array([1.0, 3.0]))
        assert np.allclose(p.center_of_mass(), [0.75, 0, 0])

    def test_concatenate(self):
        a = ParticleSet(np.zeros((2, 3)))
        b = ParticleSet(np.ones((3, 3)))
        c = ParticleSet.concatenate([a, b])
        assert len(c) == 5

    def test_concatenate_field_mismatch(self):
        a = ParticleSet(np.zeros((2, 3)), radius=np.ones(2))
        b = ParticleSet(np.ones((3, 3)))
        with pytest.raises(ValueError):
            ParticleSet.concatenate([a, b])

    def test_copy_is_deep(self):
        p = ParticleSet(np.zeros((3, 3)))
        q = p.copy()
        q.position[0, 0] = 5.0
        assert p.position[0, 0] == 0.0

    def test_bounding_box_contains_all(self):
        p = uniform_cube(500, seed=1)
        box = p.bounding_box()
        assert all(box.contains(x) for x in p.position[:20])


class TestGenerators:
    def test_uniform_cube_bounds_and_mass(self):
        p = uniform_cube(1000, side=2.0, total_mass=5.0, seed=0)
        assert np.all(np.abs(p.position) <= 1.0)
        assert p.total_mass == pytest.approx(5.0)

    def test_determinism(self):
        a = uniform_cube(100, seed=9)
        b = uniform_cube(100, seed=9)
        assert np.array_equal(a.position, b.position)
        assert not np.array_equal(a.position, uniform_cube(100, seed=10).position)

    def test_plummer_half_mass_radius(self):
        """Plummer half-mass radius is ~1.3 a."""
        p = plummer_sphere(20000, scale_radius=1.0, seed=4)
        r = np.linalg.norm(p.position, axis=1)
        assert np.median(r) == pytest.approx(1.305, rel=0.1)

    def test_clustered_is_clustered(self):
        """Clumped ICs have far higher density contrast than uniform."""
        c = clustered_clumps(4000, seed=2)
        u = uniform_cube(4000, seed=2)

        def contrast(ps):
            H, _ = np.histogramdd(ps.position, bins=8)
            return H.max() / max(H.mean(), 1)

        assert contrast(c) > 4 * contrast(u)

    def test_clustered_background_fraction_validation(self):
        with pytest.raises(ValueError):
            clustered_clumps(100, background_fraction=1.5)

    def test_disk_structure(self):
        params = DiskParams()
        p = keplerian_disk(500, params=params, seed=1)
        assert len(p) == 502  # + star + planet
        assert p.has_field("radius") and p.has_field("ptype")
        assert (p.ptype == 1).sum() == 1  # one star
        assert (p.ptype == 2).sum() == 1  # one planet
        # planetesimals lie in the configured annulus (cylindrical radius)
        disk = p.select(p.ptype == 0)
        rho = np.hypot(disk.position[:, 0], disk.position[:, 1])
        assert rho.min() > 0.9 * params.inner_radius
        assert rho.max() < 1.2 * params.outer_radius
        # thin disk
        assert np.abs(disk.position[:, 2]).max() < 0.1 * params.outer_radius

    def test_disk_orbits_are_circularish(self):
        """v ≈ sqrt(mu/r) for near-circular orbits."""
        p = keplerian_disk(300, seed=2, include_planet=False, include_star=False)
        r = np.linalg.norm(p.position, axis=1)
        v = np.linalg.norm(p.velocity, axis=1)
        v_circ = np.sqrt(G_AU_MSUN_YR / r)
        assert np.allclose(v, v_circ, rtol=0.1)


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path):
        p = keplerian_disk(50, seed=3)
        path = tmp_path / "snap.npz"
        save_particles(path, p)
        q = load_particles(path)
        assert q.field_names == p.field_names
        for name in p.field_names:
            assert np.array_equal(p[name], q[name]), name

    def test_missing_position_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, field_velocity=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            load_particles(path)
