"""Simulated machine descriptions (paper Table I).

Core counts, CPU types and communication layers come straight from Table I;
interconnect latencies/bandwidths are public figures for the respective
fabrics (EDR/HDR InfiniBand, Intel OPA) and per-interaction costs are
calibrated so single-node iteration times land in the regime the paper
reports.  The *shapes* of the scaling studies depend on the ratios
(compute per byte moved, latency vs task grain), not on the absolute
values; EXPERIMENTS.md discusses sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "SUMMIT", "STAMPEDE2", "BRIDGES2", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """One supercomputer configuration for the DES.

    Attributes
    ----------
    cores_per_node:
        Physical cores used per node (Table I "Cores/N").
    smt:
        Hardware threads per core used as workers (Summit runs 2-way SMT in
        Fig 10: "84 workers per node" on 42 cores).
    clock_ghz:
        Nominal clock; scales per-interaction compute cost.
    net_latency_s:
        One-way inter-node message latency (seconds).
    net_bandwidth_Bps:
        Per-process share of injection bandwidth (bytes/second).
    intra_latency_s:
        Latency of an intra-node (inter-process, same node) message.
    comm_layer:
        Informational (Table I "Comm. Layer").
    """

    name: str
    cores_per_node: int
    cpu_type: str
    clock_ghz: float
    comm_layer: str
    smt: int = 1
    net_latency_s: float = 1.5e-6
    net_bandwidth_Bps: float = 12.5e9
    intra_latency_s: float = 3.0e-7

    @property
    def workers_per_node(self) -> int:
        return self.cores_per_node * self.smt

    def with_(self, **kwargs) -> "MachineSpec":
        return replace(self, **kwargs)


#: ORNL Summit: POWER9, NVLink/EDR IB via UCX; Fig 10 uses 2-way SMT
#: (42 cores -> 84 workers per node).
SUMMIT = MachineSpec(
    name="Summit",
    cores_per_node=42,
    cpu_type="POWER9",
    clock_ghz=3.1,
    comm_layer="UCX",
    smt=2,
    net_latency_s=1.3e-6,
    net_bandwidth_Bps=23e9 / 2,  # dual-rail EDR, shared
    intra_latency_s=2.5e-7,
)

#: TACC Stampede2 SKX partition: Skylake 8160, Intel Omni-Path (MPI layer).
STAMPEDE2 = MachineSpec(
    name="Stampede2",
    cores_per_node=48,
    cpu_type="Skylake",
    clock_ghz=2.1,
    comm_layer="MPI",
    smt=1,
    net_latency_s=1.8e-6,
    net_bandwidth_Bps=12.5e9,
    intra_latency_s=3.0e-7,
)

#: PSC Bridges2 RM: EPYC 7742, HDR-200 InfiniBand.
BRIDGES2 = MachineSpec(
    name="Bridges2",
    cores_per_node=128,
    cpu_type="EPYC 7742",
    clock_ghz=2.25,
    comm_layer="Infiniband",
    smt=1,
    net_latency_s=1.2e-6,
    net_bandwidth_Bps=25e9,
    intra_latency_s=3.0e-7,
)

MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (SUMMIT, STAMPEDE2, BRIDGES2)
}
