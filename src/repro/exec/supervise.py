"""Supervised chunk dispatch: deadlines, retry, quarantine, pool rebuild.

The exec backends' original dispatch loop — submit every chunk, then block
on ``f.result()`` in chunk order — inherits none of the worker supervision
the paper gets for free from Charm++: a worker killed by the OOM killer
raises ``BrokenProcessPool`` out of the whole iteration, leaves the pool
permanently broken, and a hung worker blocks forever.  The
:class:`ChunkSupervisor` replaces that loop with an event-driven one,
following the re-dispatch-constrained-work model of Dekate et al.:

* **wait-with-timeout dispatch** — the parent waits on *all* in-flight
  futures at once with a timeout derived from the per-chunk deadline, so
  it notices hung or dead workers instead of blocking on one future;
* **per-chunk deadlines** — explicit (``--chunk-deadline``) or seeded from
  the observed ``exec.task.latency`` distribution (a multiple of p99 once
  enough chunks have completed); an expired attempt is abandoned and the
  chunk re-dispatched (``exec.redispatches``);
* **bounded retry with exponential backoff** — a failed attempt is retried
  up to ``max_chunk_retries`` times (``exec.retries``), with a short
  backoff so a transiently sick pool gets air;
* **automatic pool rebuild** — a broken executor (worker SIGKILLed, OOM)
  fails every in-flight future; the supervisor drains them, asks the
  backend to rebuild the pool, and re-dispatches every unfinished chunk
  (``exec.worker_deaths`` / ``exec.pool_rebuilds``);
* **poison-chunk quarantine** — a chunk that exhausts its attempts is
  re-executed *serially in-parent*, where no injection and no pool can
  hurt it (``exec.quarantined``).  The run degrades; it does not die.

The determinism contract survives supervision because workers never mutate
shared state: every attempt computes the same pure per-chunk outputs from
read-only inputs, the parent keeps exactly one result per chunk (whichever
attempt finished first), and ``exec_apply`` still runs exactly once per
chunk, in chunk order.  A fault-free supervised run takes the identical
code path per chunk as an unsupervised one — same visitor rebuilds, same
reduction order — so its results are bit-identical to PR 5 behaviour.
"""

from __future__ import annotations

import concurrent.futures as cf
import time
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..faults.execfaults import WorkerDeath
from ..obs import Log2Histogram, get_telemetry

__all__ = ["SupervisorConfig", "SupervisionStats", "ChunkSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for the supervised dispatch loop (frozen, reusable)."""

    #: master switch: False restores the PR 5 block-on-result dispatch
    enabled: bool = True
    #: explicit per-chunk deadline in seconds (None = seed from latency)
    chunk_deadline: float | None = None
    #: deadline = deadline_factor x observed p99, once seeded
    deadline_factor: float = 8.0
    #: never let a seeded deadline drop below this (seconds)
    min_deadline: float = 0.05
    #: chunk completions required before the latency-seeded deadline arms
    seed_observations: int = 8
    #: re-dispatch budget per chunk before quarantine
    max_chunk_retries: int = 3
    #: first-retry backoff in seconds; attempt k sleeps base * factor**(k-1)
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    #: hard cap on any single backoff sleep (seconds)
    backoff_max: float = 1.0

    def __post_init__(self) -> None:
        if self.chunk_deadline is not None and self.chunk_deadline <= 0:
            raise ValueError(
                f"chunk_deadline must be > 0, got {self.chunk_deadline}"
            )
        if self.max_chunk_retries < 0:
            raise ValueError(
                f"max_chunk_retries must be >= 0, got {self.max_chunk_retries}"
            )
        if self.deadline_factor <= 0 or self.min_deadline <= 0:
            raise ValueError("deadline_factor and min_deadline must be > 0")

    def with_(self, **changes) -> "SupervisorConfig":
        return replace(self, **changes)


@dataclass
class SupervisionStats:
    """What the supervisor had to do during one (or more) runs."""

    #: failed attempts re-dispatched after an exception
    retries: int = 0
    #: attempts abandoned past their deadline and re-dispatched
    redispatches: int = 0
    #: worker deaths observed (broken pool, SIGKILL, WorkerDeath)
    worker_deaths: int = 0
    #: chunks that exhausted retries and ran serially in-parent
    quarantined: int = 0
    #: executor pools torn down and rebuilt after a death
    pool_rebuilds: int = 0
    #: attempts that overran their deadline (== redispatches unless the
    #: straggler finished in the same wait round it expired)
    deadline_misses: int = 0

    @property
    def degraded(self) -> bool:
        """True when any recovery action fired — the run completed, but
        not on the clean path."""
        return any(
            (self.retries, self.redispatches, self.worker_deaths,
             self.quarantined, self.pool_rebuilds)
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "redispatches": self.redispatches,
            "worker_deaths": self.worker_deaths,
            "quarantined": self.quarantined,
            "pool_rebuilds": self.pool_rebuilds,
            "deadline_misses": self.deadline_misses,
        }

    def merge(self, other: "SupervisionStats") -> None:
        self.retries += other.retries
        self.redispatches += other.redispatches
        self.worker_deaths += other.worker_deaths
        self.quarantined += other.quarantined
        self.pool_rebuilds += other.pool_rebuilds
        self.deadline_misses += other.deadline_misses


@dataclass
class _Attempt:
    chunk: int
    number: int
    submitted: float


@dataclass
class _RunState:
    results: list[Any]
    filled: list[bool]
    attempts: list[int]
    pending: dict[Future, _Attempt] = field(default_factory=dict)


class ChunkSupervisor:
    """Event-driven dispatch of chunk attempts over an executor pool.

    The supervisor is backend-agnostic: it drives three callables the
    backend provides —

    ``submit(chunk, attempt) -> Future``
        dispatch one attempt to the pool (a fresh visitor/fork per
        attempt, so a failed attempt leaves no partial state);
    ``serial_exec(chunk) -> result``
        the quarantine path: compute the chunk in-parent, no pool, no
        injection;
    ``rebuild() -> None`` (optional)
        tear down and replace a broken executor pool.

    Latency observations persist across runs on the same supervisor, so
    the seeded deadline tightens as the workload's chunk-time distribution
    fills in.
    """

    def __init__(self, config: SupervisorConfig, backend_name: str,
                 cancel_abandoned: bool = True) -> None:
        self.config = config
        self.backend_name = backend_name
        #: whether abandoned attempts get Future.cancel().  Process pools
        #: must not: CPython's executor-manager thread calls
        #: ``set_exception`` on every pending work item when the pool
        #: breaks, and a future we already cancelled makes that raise
        #: InvalidStateError inside the manager thread (cpython#94777
        #: family).  An uncancelled stale attempt just runs to completion
        #: and its result is discarded.
        self.cancel_abandoned = cancel_abandoned
        #: cumulative across runs; :meth:`run` also returns per-run stats
        self.total_stats = SupervisionStats()
        #: observed successful chunk durations (parent clock), deadline seed
        self._observed = Log2Histogram()

    # -- deadline ------------------------------------------------------------
    def effective_deadline(self) -> float | None:
        """Current per-chunk deadline in seconds (None = wait forever)."""
        cfg = self.config
        if cfg.chunk_deadline is not None:
            return cfg.chunk_deadline
        if self._observed.count < cfg.seed_observations:
            return None
        seeded = cfg.deadline_factor * self._observed.quantile(0.99)
        return max(seeded, cfg.min_deadline)

    def observe(self, duration: float) -> None:
        """Feed one successful chunk duration into the deadline seed."""
        if duration > 0:
            self._observed.observe(duration)

    # -- main loop -----------------------------------------------------------
    def run(
        self,
        n_chunks: int,
        submit: Callable[[int, int], Future],
        serial_exec: Callable[[int], Any],
        rebuild: Callable[[], None] | None = None,
    ) -> tuple[list[Any], SupervisionStats]:
        """Dispatch ``n_chunks`` chunks; return one result per chunk (in
        chunk order) and the per-run :class:`SupervisionStats`."""
        stats = SupervisionStats()
        state = _RunState(
            results=[None] * n_chunks,
            filled=[False] * n_chunks,
            attempts=[0] * n_chunks,
        )
        for chunk in range(n_chunks):
            self._dispatch(state, stats, chunk, submit, serial_exec)

        while not all(state.filled):
            if not state.pending:
                # every unfinished chunk lost its in-flight attempts (e.g.
                # a pool break drained them and retries were exhausted);
                # quarantine is the floor, so this terminates.
                for chunk in range(n_chunks):
                    if not state.filled[chunk]:
                        self._quarantine(state, stats, chunk, serial_exec)
                break
            deadline = self.effective_deadline()
            timeout = self._wait_timeout(state, deadline)
            done, _ = cf.wait(
                set(state.pending), timeout=timeout,
                return_when=cf.FIRST_COMPLETED,
            )
            pool_broke = self._drain(
                state, stats, done, submit, serial_exec
            )
            if pool_broke:
                self._handle_pool_break(
                    state, stats, submit, serial_exec, rebuild
                )
            if deadline is not None:
                self._expire(state, stats, deadline, submit, serial_exec)

        self.total_stats.merge(stats)
        return state.results, stats

    # -- internals -----------------------------------------------------------
    def _wait_timeout(self, state: _RunState, deadline: float | None) -> float | None:
        if deadline is None:
            return None
        now = time.perf_counter()
        remaining = min(
            att.submitted + deadline - now for att in state.pending.values()
        )
        return max(remaining, 0.0)

    def _dispatch(
        self,
        state: _RunState,
        stats: SupervisionStats,
        chunk: int,
        submit: Callable[[int, int], Future],
        serial_exec: Callable[[int], Any],
    ) -> None:
        """Launch the next attempt for ``chunk``, or quarantine it when the
        attempt budget is spent."""
        cfg = self.config
        number = state.attempts[chunk]
        if number > cfg.max_chunk_retries:
            self._quarantine(state, stats, chunk, serial_exec)
            return
        state.attempts[chunk] += 1
        if number > 0:
            delay = min(
                cfg.backoff_base * cfg.backoff_factor ** (number - 1),
                cfg.backoff_max,
            )
            if delay > 0:
                time.sleep(delay)
        try:
            fut = submit(chunk, number)
        except BrokenExecutor:
            # pool died between drain and resubmit; retry accounting is
            # handled by the caller's next loop round via the empty-pending
            # quarantine floor, but give the chunk its attempt back first
            state.attempts[chunk] -= 1
            self._quarantine(state, stats, chunk, serial_exec)
            return
        state.pending[fut] = _Attempt(chunk, number, time.perf_counter())

    def _quarantine(
        self,
        state: _RunState,
        stats: SupervisionStats,
        chunk: int,
        serial_exec: Callable[[int], Any],
    ) -> None:
        """Re-execute a poison chunk serially in-parent — exactly once."""
        if state.filled[chunk]:
            return
        state.results[chunk] = serial_exec(chunk)
        state.filled[chunk] = True
        stats.quarantined += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "exec.quarantined", backend=self.backend_name
            ).inc()
            tel.flight.record(
                "exec.quarantine", backend=self.backend_name, chunk=chunk,
                attempts=state.attempts[chunk],
            )

    def _drain(
        self,
        state: _RunState,
        stats: SupervisionStats,
        done: set[Future],
        submit: Callable[[int, int], Future],
        serial_exec: Callable[[int], Any],
    ) -> bool:
        """Collect finished futures; returns True when the pool broke."""
        tel = get_telemetry()
        pool_broke = False
        for fut in done:
            att = state.pending.pop(fut)
            try:
                result = fut.result()
            except BrokenExecutor:
                pool_broke = True
                continue  # every sibling future is dead too; handled after
            except WorkerDeath as exc:
                stats.worker_deaths += 1
                if tel.enabled:
                    tel.metrics.counter(
                        "exec.worker_deaths", backend=self.backend_name
                    ).inc()
                    tel.flight.record(
                        "exec.worker_death", backend=self.backend_name,
                        chunk=att.chunk, attempt=att.number, error=str(exc),
                    )
                self._retry(state, stats, att, submit, serial_exec)
                continue
            except Exception as exc:
                stats.retries += 1
                if tel.enabled:
                    tel.metrics.counter(
                        "exec.retries", backend=self.backend_name
                    ).inc()
                    tel.flight.record(
                        "exec.retry", backend=self.backend_name,
                        chunk=att.chunk, attempt=att.number,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                self._retry(state, stats, att, submit, serial_exec)
                continue
            if not state.filled[att.chunk]:
                state.results[att.chunk] = result
                state.filled[att.chunk] = True
                self.observe(time.perf_counter() - att.submitted)
            # else: a superseded straggler finished after its replacement —
            # identical result by determinism, safe to discard
        return pool_broke

    def _retry(
        self,
        state: _RunState,
        stats: SupervisionStats,
        att: _Attempt,
        submit: Callable[[int, int], Future],
        serial_exec: Callable[[int], Any],
    ) -> None:
        if state.filled[att.chunk]:
            return
        # another attempt for this chunk may still be in flight (after a
        # deadline redispatch); only dispatch anew when none is
        if any(a.chunk == att.chunk for a in state.pending.values()):
            return
        self._dispatch(state, stats, att.chunk, submit, serial_exec)

    def _handle_pool_break(
        self,
        state: _RunState,
        stats: SupervisionStats,
        submit: Callable[[int, int], Future],
        serial_exec: Callable[[int], Any],
        rebuild: Callable[[], None] | None,
    ) -> None:
        """A worker died hard enough to break the executor: drain every
        doomed future, rebuild the pool, re-dispatch unfinished chunks."""
        stats.worker_deaths += 1
        stats.pool_rebuilds += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "exec.worker_deaths", backend=self.backend_name
            ).inc()
            tel.metrics.counter(
                "exec.pool_rebuilds", backend=self.backend_name
            ).inc()
            tel.flight.record(
                "exec.worker_death", backend=self.backend_name,
                error="broken executor",
            )
            tel.flight.record(
                "exec.pool_rebuild", backend=self.backend_name,
            )
        doomed = list(state.pending)
        state.pending.clear()
        if self.cancel_abandoned:
            for fut in doomed:
                # results on a broken pool are lost even if marked done
                fut.cancel()
        if rebuild is not None:
            rebuild()
        for chunk in range(len(state.filled)):
            if not state.filled[chunk]:
                self._dispatch(state, stats, chunk, submit, serial_exec)

    def _expire(
        self,
        state: _RunState,
        stats: SupervisionStats,
        deadline: float,
        submit: Callable[[int, int], Future],
        serial_exec: Callable[[int], Any],
    ) -> None:
        """Abandon attempts past their deadline and re-dispatch their
        chunks.  The abandoned future keeps running (a thread cannot be
        cancelled mid-flight); if it finishes first its result is simply
        never used — both attempts compute identical outputs."""
        now = time.perf_counter()
        tel = get_telemetry()
        for fut, att in list(state.pending.items()):
            if state.filled[att.chunk]:
                # stale attempt for an already-finished chunk: stop
                # tracking it so it cannot trigger bogus expiries
                state.pending.pop(fut)
                continue
            if now - att.submitted < deadline:
                continue
            state.pending.pop(fut)
            if self.cancel_abandoned:
                # a never-started attempt is simply dequeued; a running one
                # keeps going and its late result is discarded as stale
                fut.cancel()
            stats.deadline_misses += 1
            stats.redispatches += 1
            if tel.enabled:
                tel.metrics.counter(
                    "exec.redispatches", backend=self.backend_name
                ).inc()
                tel.flight.record(
                    "exec.redispatch", backend=self.backend_name,
                    chunk=att.chunk, attempt=att.number,
                    deadline=deadline,
                )
            self._dispatch(state, stats, att.chunk, submit, serial_exec)
