"""The benchmark harness: warmup + repeated timed runs, robust statistics,
an environment fingerprint, and schema-versioned machine-readable results.

A run produces a ``BENCH_<timestamp>.json`` document::

    {
      "schema": "repro-bench",
      "schema_version": 1,
      "created": "2026-08-06T12:34:56",
      "quick": false,
      "environment": {"python": ..., "numpy": ..., "git_sha": ..., ...},
      "results": [
        {"id": "des.fig9_profile", "group": "des", "samples": [...],
         "median": ..., "iqr": ..., "mad": ..., "n_outliers": 0,
         "extra": {...}},
        ...
      ]
    }

Statistics are robust by design: the headline number is the **median** of
the kept samples, spread is the **IQR**, and samples more than
``5 x MAD`` from the median are rejected as outliers (a GC pause or a
noisy-neighbour burst should not poison a regression verdict).  The
regression detector in :mod:`repro.perf.compare` consumes two of these
documents.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable

from .registry import BenchmarkDef, BenchmarkRegistry, discover, get_registry

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "environment_fingerprint",
    "robust_stats",
    "run_one",
    "run_suite",
    "write_report",
    "load_report",
    "validate_report",
    "format_report",
]

SCHEMA = "repro-bench"
SCHEMA_VERSION = 1

#: samples further than this many MADs from the median are rejected
MAD_OUTLIER_K = 5.0


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> dict[str, Any]:
    """Where these numbers came from — enough to judge comparability."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def robust_stats(samples: list[float]) -> dict[str, Any]:
    """Median/IQR/MAD with MAD-based outlier rejection.

    Returns the statistics of the *kept* samples plus how many were
    rejected; degenerate sample counts (0, 1) fall back sensibly.
    """
    if not samples:
        return {"median": None, "iqr": 0.0, "mad": 0.0, "mean": None,
                "min": None, "max": None, "n_samples": 0, "n_outliers": 0}

    def median(xs: list[float]) -> float:
        s = sorted(xs)
        n = len(s)
        mid = n // 2
        return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])

    med = median(samples)
    mad = median([abs(x - med) for x in samples])
    if mad > 0 and len(samples) >= 3:
        kept = [x for x in samples if abs(x - med) <= MAD_OUTLIER_K * mad]
    else:
        kept = list(samples)
    n_out = len(samples) - len(kept)
    med = median(kept)

    def quantile(xs: list[float], q: float) -> float:
        s = sorted(xs)
        if len(s) == 1:
            return s[0]
        pos = q * (len(s) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (s[hi] - s[lo]) * (pos - lo)

    return {
        "median": med,
        "iqr": quantile(kept, 0.75) - quantile(kept, 0.25),
        "mad": median([abs(x - med) for x in kept]),
        "mean": sum(kept) / len(kept),
        "min": min(kept),
        "max": max(kept),
        "n_samples": len(samples),
        "n_outliers": n_out,
    }


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of extras (numpy scalars etc.) to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def run_one(
    d: BenchmarkDef,
    quick: bool = False,
    repeats: int | None = None,
    warmup: int | None = None,
    timer: Callable[[], float] = time.perf_counter,
) -> dict[str, Any]:
    """Set up, warm up, and time one registered benchmark.

    A benchmark that raises is reported with an ``error`` field instead of
    aborting the suite.
    """
    n_rep = repeats if repeats is not None else (d.quick_repeats if quick else d.repeats)
    n_warm = warmup if warmup is not None else d.warmup
    base = {"id": d.id, "group": d.group, "description": d.description,
            "quick": quick, "repeats": n_rep, "warmup": n_warm}
    try:
        runner = d.fn(quick=quick)
        if not callable(runner):
            raise TypeError(
                f"benchmark {d.id!r} setup must return a zero-arg callable, "
                f"got {type(runner).__name__}")
        extra: Any = None
        for _ in range(n_warm):
            out = runner()
            if isinstance(out, dict):
                extra = out
        samples: list[float] = []
        for _ in range(max(n_rep, 1)):
            t0 = timer()
            out = runner()
            samples.append(timer() - t0)
            if isinstance(out, dict):
                extra = out
        result = dict(base, samples=samples, **robust_stats(samples))
        result["extra"] = _jsonable(extra) if extra else {}
        return result
    except Exception as exc:
        return dict(base, samples=[], error=f"{type(exc).__name__}: {exc}",
                    **robust_stats([]), extra={})


def run_suite(
    ids: list[str] | None = None,
    quick: bool = False,
    repeats: int | None = None,
    warmup: int | None = None,
    registry: BenchmarkRegistry | None = None,
    discover_first: bool = True,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run (a selection of) the registered benchmarks into one report."""
    if registry is None:
        if discover_first:
            discover()
        registry = get_registry()
    defs = registry.select(ids)
    results = []
    for d in defs:
        if progress:
            progress(f"running {d.id} ...")
        res = run_one(d, quick=quick, repeats=repeats, warmup=warmup)
        if progress:
            if res.get("error"):
                progress(f"  {d.id}: ERROR {res['error']}")
            else:
                progress(f"  {d.id}: median {res['median'] * 1e3:.2f} ms "
                         f"(iqr {res['iqr'] * 1e3:.2f} ms, "
                         f"{res['n_samples']} samples)")
        results.append(res)
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": quick,
        "environment": environment_fingerprint(),
        "results": results,
    }


def write_report(
    report: dict[str, Any],
    path: str | os.PathLike | None = None,
    artifacts_dir: str | os.PathLike | None = None,
) -> Path:
    """Write ``BENCH_<timestamp>.json`` (or ``path``); optionally one
    per-benchmark artifact file each under ``artifacts_dir``."""
    if path is None:
        stamp = report.get("created", time.strftime("%Y-%m-%dT%H:%M:%S"))
        stamp = stamp.replace("-", "").replace(":", "")
        candidate = Path(f"BENCH_{stamp}.json")
        n = 1
        while candidate.exists():
            candidate = Path(f"BENCH_{stamp}_{n}.json")
            n += 1
        path = candidate
    path = Path(path)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
    if artifacts_dir is not None:
        artifacts = Path(artifacts_dir)
        artifacts.mkdir(parents=True, exist_ok=True)
        for res in report.get("results", []):
            name = res["id"].replace("/", "_") + ".json"
            doc = {"schema": SCHEMA, "schema_version": SCHEMA_VERSION,
                   "created": report.get("created"),
                   "environment": report.get("environment"), "result": res}
            with open(artifacts / name, "w") as fh:
                json.dump(doc, fh, indent=1)
    return path


def validate_report(doc: Any, source: str = "report") -> dict[str, Any]:
    """Schema-check a loaded BENCH document; raises ``ValueError``."""
    if not isinstance(doc, dict):
        raise ValueError(f"{source}: not a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{source}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
        raise ValueError(f"{source}: unsupported schema_version {version!r} "
                         f"(this build reads <= {SCHEMA_VERSION})")
    results = doc.get("results")
    if not isinstance(results, list):
        raise ValueError(f"{source}: missing results list")
    for i, res in enumerate(results):
        if not isinstance(res, dict) or "id" not in res:
            raise ValueError(f"{source}: results[{i}] has no id")
        if "error" not in res and not isinstance(res.get("median"), (int, float)):
            raise ValueError(f"{source}: results[{i}] ({res.get('id')}) has no median")
    return doc


def load_report(path: str | os.PathLike) -> dict[str, Any]:
    """Load + validate a BENCH JSON file."""
    p = Path(path)
    try:
        with open(p) as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p}: not valid JSON ({exc})") from exc
    return validate_report(doc, source=str(p))


def format_report(report: dict[str, Any]) -> str:
    """Console table of one BENCH document, critical-path extras included."""
    env = report.get("environment", {})
    sha = (env.get("git_sha") or "unknown")[:12]
    lines = [
        f"bench report — created {report.get('created')}  "
        f"quick={report.get('quick')}  git={sha}  "
        f"python={env.get('python')}  numpy={env.get('numpy')}  "
        f"cpus={env.get('cpu_count')}",
        f"{'benchmark':<28} {'median ms':>12} {'iqr ms':>10} {'n':>3} {'out':>3}  note",
    ]
    for res in report.get("results", []):
        if res.get("error"):
            lines.append(f"{res['id']:<28} {'-':>12} {'-':>10} {0:>3} {0:>3}  "
                         f"ERROR {res['error']}")
            continue
        extra_note = ""
        extra = res.get("extra") or {}
        cp = extra.get("critical_path")
        lines.append(
            f"{res['id']:<28} {res['median'] * 1e3:>12.3f} {res['iqr'] * 1e3:>10.3f} "
            f"{res['n_samples']:>3} {res['n_outliers']:>3}  {extra_note}")
        if isinstance(cp, dict) and "components" in cp:
            from .critical_path import format_components
            lines.append(f"{'':<28}   critical path: "
                         + format_components(cp["components"], cp.get("makespan")))
    return "\n".join(lines)
