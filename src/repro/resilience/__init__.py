"""Checkpoint/restart and crash recovery.

Four layers (mirroring the Charm++/ChaNGa lineage the paper builds on):

* :mod:`~repro.resilience.checkpoint` — versioned, CRC-checksummed
  checkpoints of the full pipeline state, with interval policy and
  rotation (:class:`CheckpointWriter`) and the driver-facing
  :func:`capture_run` / :func:`restore_run` pair;
* :mod:`~repro.resilience.buddy` — in-memory double checkpointing: each
  rank mirrors its blob to a ring buddy, so any single failure recovers
  without touching disk;
* :mod:`~repro.resilience.recovery` — the accounting the DES runtime
  fills in when ``crash=P@R`` fires: state lost, bytes refetched from the
  buddy, recovery span (:class:`RecoveryReport` on ``SimResult``);
* :mod:`~repro.resilience.audit` — consistency checks after any restore
  (tree invariants, well-formed arrays) and the bit-exact cross-checkpoint
  audit that underwrites the "resume == uninterrupted baseline" guarantee.

``repro resume <checkpoint>`` (see :mod:`repro.resilience.resume`) rebuilds
the owning application Driver and continues the run.

:mod:`~repro.resilience.interrupt` turns SIGTERM/SIGINT into a
:class:`RunInterrupted` exception so long-running CLI commands can write
a final checkpoint (and dump the flight recorder) before exiting
``128 + signum`` — an interrupted batch run is resumable, not lost.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointWriter,
    array_checksum,
    capture_run,
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    latest_checkpoint,
    load_checkpoint,
    restore_run,
    save_checkpoint,
)
from .buddy import BuddyStore
from .interrupt import RunInterrupted, graceful_interrupts
from .recovery import CrashRecovery, RecoveryReport
from .audit import (
    ConsistencyError,
    assert_consistent,
    audit_checkpoints,
    audit_restore,
    audit_state_files,
    compare_checkpoints,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointWriter",
    "array_checksum",
    "capture_run",
    "checkpoint_from_bytes",
    "checkpoint_to_bytes",
    "latest_checkpoint",
    "load_checkpoint",
    "restore_run",
    "save_checkpoint",
    "BuddyStore",
    "RunInterrupted",
    "graceful_interrupts",
    "CrashRecovery",
    "RecoveryReport",
    "ConsistencyError",
    "assert_consistent",
    "audit_checkpoints",
    "audit_restore",
    "audit_state_files",
    "compare_checkpoints",
]
