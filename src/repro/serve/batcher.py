"""Micro-batcher: coalesce queued queries into bucket-shaped batches.

ParaTreeT's bucket is the unit of traversal work, so the server batches
queries to (a small multiple of) the tree's bucket size before handing
them to the supervised executor.  Deadline-expired entries are dropped
*here*, before any execution cost is paid — the batcher is the single
place an admitted query can die without running.

Like :class:`~repro.serve.admission.AdmissionController`, this is a
plain synchronous object driven by both the asyncio service and the DES
model, so both report identical expiry accounting for the same trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .admission import QueueEntry


@dataclass(frozen=True)
class BatchPolicy:
    """How large a batch may grow and how long the server lingers for one.

    ``batch_max`` defaults to a small multiple of the tree bucket size
    (set by the service once the tree is resident).  ``batch_wait`` is
    the linger: with a non-empty but sub-max queue the dispatcher waits
    this long for stragglers before cutting a batch.
    """

    batch_max: int = 64
    batch_wait: float = 0.002

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_wait < 0:
            raise ValueError("batch_wait must be >= 0")


class MicroBatcher:
    """Pops FIFO entries from the admission queue into one batch."""

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self.batches_formed = 0
        self.dropped_expired = 0

    def form_batch(
        self, queue: deque[QueueEntry], now: float,
    ) -> tuple[list[QueueEntry], list[QueueEntry]]:
        """Pop up to ``batch_max`` live entries; return ``(batch, expired)``.

        Expired entries encountered while filling the batch are popped
        and returned separately — they never reach the executor.  Both
        lists preserve queue (FIFO) order.
        """
        batch: list[QueueEntry] = []
        expired: list[QueueEntry] = []
        while queue and len(batch) < self.policy.batch_max:
            entry = queue.popleft()
            if entry.expired_at(now):
                expired.append(entry)
            else:
                batch.append(entry)
        if batch:
            self.batches_formed += 1
        self.dropped_expired += len(expired)
        return batch, expired
