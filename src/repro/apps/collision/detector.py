"""Collision detection between finite-radius particles.

Candidate pairs are gathered with a tree ball search (radius = own radius +
largest other radius + relative drift over the step), then refined with the
exact closest-approach test on the linear trajectories of the step — the
standard planetesimal-code treatment (cf. ChaNGa's collision module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import TraversalStats
from ...trees import Tree
from ..knn.balls import ball_search

__all__ = ["CollisionEvent", "closest_approach", "detect_collisions"]


@dataclass(frozen=True)
class CollisionEvent:
    """One detected collision (indices in tree order of the search tree)."""

    i: int
    j: int
    time: float          # within-step time of closest approach
    distance: float      # separation at that time
    position: np.ndarray  # midpoint at closest approach


def closest_approach(
    dr: np.ndarray, dv: np.ndarray, dt: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair time (clamped to [0, dt]) and squared distance of closest
    approach for linear relative motion ``dr + dv t``."""
    dr = np.atleast_2d(dr)
    dv = np.atleast_2d(dv)
    dv2 = np.einsum("ij,ij->i", dv, dv)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_star = np.where(dv2 > 0, -np.einsum("ij,ij->i", dr, dv) / dv2, 0.0)
    t_star = np.clip(t_star, 0.0, dt)
    closest = dr + dv * t_star[:, None]
    return t_star, np.einsum("ij,ij->i", closest, closest)


def detect_collisions(
    tree: Tree,
    dt: float,
    radius_field: str = "radius",
    v_rel_max: float | None = None,
    exclude_types: np.ndarray | None = None,
) -> tuple[list[CollisionEvent], TraversalStats]:
    """Find all particle pairs that come within the sum of their radii
    during a step of length ``dt``.

    ``v_rel_max`` bounds the relative speed used to inflate the search
    radius; by default it is estimated from the velocity spread.
    ``exclude_types`` is a boolean mask of particles to skip as *targets*
    (e.g. the star and planet — they collide with nothing at these radii).
    """
    p = tree.particles
    radii = p[radius_field]
    vel = p.velocity
    if v_rel_max is None:
        # Conservative: full spread of velocities.
        v_rel_max = float(np.linalg.norm(vel - vel.mean(axis=0), axis=1).max()) * 2.0
    r_max = float(radii.max())
    search = radii + r_max + v_rel_max * dt
    if exclude_types is not None:
        search = np.where(exclude_types, 0.0, search)

    lists, stats = ball_search(tree, search, include_self=False)

    events: list[CollisionEvent] = []
    seen: set[tuple[int, int]] = set()
    pos = p.position
    for i, nbrs in enumerate(lists):
        if len(nbrs) == 0:
            continue
        for j in nbrs:
            j = int(j)
            key = (i, j) if i < j else (j, i)
            if key in seen:
                continue
            seen.add(key)
            if exclude_types is not None and (exclude_types[i] or exclude_types[j]):
                continue
            dr = pos[j] - pos[i]
            dv = vel[j] - vel[i]
            t_star, d2 = closest_approach(dr[None, :], dv[None, :], dt)
            rsum = float(radii[i] + radii[j])
            if d2[0] <= rsum * rsum:
                mid = pos[i] + vel[i] * t_star[0] + 0.5 * (dr + dv * t_star[0])
                events.append(
                    CollisionEvent(
                        i=key[0],
                        j=key[1],
                        time=float(t_star[0]),
                        distance=float(np.sqrt(d2[0])),
                        position=mid,
                    )
                )
    return events, stats
