"""Parallel execution backend scaling: serial vs threads vs processes.

Times the *same* gravity/kNN traversal through each ``repro.exec`` backend
(the differential harness guarantees the answers are bit-identical, so
these are honest apples-to-apples timings) and records a speedup curve for
the process backend.  Numbers are environment-fingerprinted by the perf
harness — on a single-core machine the curve is flat and that is the
correct result; the regression gate compares like with like.

Run ``python -m repro bench run --quick 'exec.*' -o BENCH_pr5.json`` to
regenerate the PR 5 record.
"""

import time

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.apps.knn.knn import knn_search
from repro.core import get_traverser
from repro.exec import get_backend
from repro.particles.generators import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.trees import build_tree


def _gravity_workload(quick=False):
    n = 4_000 if quick else 20_000
    tree = build_tree(clustered_clumps(n, seed=29), tree_type="oct",
                      bucket_size=16)
    arrays = compute_centroid_arrays(tree, theta=0.6)

    def make_visitor():
        return GravityVisitor(tree, arrays, softening=1e-3)

    return tree, make_visitor


@perf_benchmark("exec.gravity_serial", group="exec",
                description="gravity traversal, serial backend (oracle)")
def perf_gravity_serial(quick=False):
    tree, make_visitor = _gravity_workload(quick)
    engine = get_traverser("transposed")

    def run():
        engine.traverse(tree, make_visitor(), None)

    return run


def _gravity_backend_bench(backend_name, workers):
    def setup(quick=False):
        tree, make_visitor = _gravity_workload(quick)
        backend = get_backend(backend_name, workers=workers)
        # warm the pool (process fork / thread spawn) outside the samples
        backend.run(tree, "transposed", make_visitor())

        def run():
            backend.run(tree, "transposed", make_visitor())
            return {"mode": backend.last_mode}

        return run

    return setup


perf_gravity_threads = perf_benchmark(
    "exec.gravity_threads_w4", group="exec",
    description="gravity traversal, thread backend, 4 workers",
)(_gravity_backend_bench("threads", 4))

perf_gravity_processes = perf_benchmark(
    "exec.gravity_processes_w4", group="exec",
    description="gravity traversal, process backend, 4 workers (shm zero-copy)",
)(_gravity_backend_bench("processes", 4))


@perf_benchmark("exec.knn_processes_w4", group="exec",
                description="kNN (k=16) up-and-down, process backend, 4 workers")
def perf_knn_processes(quick=False):
    n = 4_000 if quick else 20_000
    tree = build_tree(clustered_clumps(n, seed=31), tree_type="kd",
                      bucket_size=16)
    backend = get_backend("processes", workers=4)
    knn_search(tree, 16, backend=backend)  # warm the pool

    def run():
        knn_search(tree, 16, backend=backend)
        return {"mode": backend.last_mode}

    return run


@perf_benchmark("exec.speedup_curve", group="exec", repeats=3, quick_repeats=2,
                description="process-backend speedup at 2 and 4 workers vs serial")
def perf_speedup_curve(quick=False):
    tree, make_visitor = _gravity_workload(quick)
    engine = get_traverser("transposed")
    backends = {w: get_backend("processes", workers=w) for w in (2, 4)}
    for b in backends.values():
        b.run(tree, "transposed", make_visitor())  # warm pools

    def run():
        t0 = time.perf_counter()
        engine.traverse(tree, make_visitor(), None)
        serial_s = time.perf_counter() - t0
        extras = {"serial_ms": serial_s * 1e3}
        for w, b in backends.items():
            t0 = time.perf_counter()
            b.run(tree, "transposed", make_visitor())
            par_s = time.perf_counter() - t0
            extras[f"speedup_w{w}"] = serial_s / par_s if par_s > 0 else 0.0
        return extras

    return run


def test_backends_agree_and_scale(benchmark):
    """pytest-benchmark wrapper: one quick 4-worker process run, asserting
    the parallel path actually engaged."""
    tree, make_visitor = _gravity_workload(quick=True)
    backend = get_backend("processes", workers=4)
    backend.run(tree, "transposed", make_visitor())

    def run():
        backend.run(tree, "transposed", make_visitor())
        return backend.last_mode

    mode = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mode == "parallel"
    backend.shutdown()
