"""Table II orchestration: profile a traversal style on N simulated CPUs.

For ``n_cpus`` CPUs the target buckets are block-partitioned (the Partition
placement of the paper's experiment: "the set of buckets in a Partition fits
in the L2 cache"), each CPU's traversal is run for real to produce its
access stream, and the streams are interleaved through the shared-L3 SKX
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.gravity import GravityVisitor, compute_centroid_arrays
from ..core import get_traverser
from ..obs import get_telemetry, traced
from ..trees import Tree
from .hierarchy import CacheHierarchy
from .trace import DataLayout, MemoryTraceRecorder, interleave_traces, replay_trace

__all__ = ["CacheProfile", "profile_traversal_style"]

#: Simulated access latencies (cycles) for the runtime estimate: L1 hit,
#: L2 hit, L3 hit, DRAM.  Standard SKX figures.
_LAT_L1, _LAT_L2, _LAT_L3, _LAT_MEM = 4, 14, 50, 200


@dataclass
class CacheProfile:
    """One row of Table II (one style, one CPU count)."""

    style: str
    n_cpus: int
    n_accesses: int
    l1_loads: int
    l1_stores: int
    l1_load_miss_rate: float
    l2_load_miss_rate: float
    l3_load_miss_rate: float
    l1l2_store_miss_rate: float
    l3_store_miss_rate: float
    runtime_estimate_s: float

    def as_dict(self) -> dict[str, float]:
        return dict(self.__dict__)


@traced("memsim.profile", cat="memsim")
def profile_traversal_style(
    tree: Tree,
    style: str = "transposed",
    n_cpus: int = 1,
    theta: float = 0.7,
    clock_ghz: float = 2.1,
    max_accesses: int | None = None,
    layout: DataLayout | None = None,
    buckets_per_partition: int = 96,
    cache_scale: int = 1,
) -> CacheProfile:
    """Run the real traversal per CPU, replay the merged trace, summarise.

    Buckets are first block-partitioned across CPUs, then each CPU walks
    its buckets one *Partition* at a time (``buckets_per_partition``),
    because the Table II experiment sizes Partitions so a Partition's bucket
    set fits in L2 — the transposed traversal streams one Partition's
    buckets per node, not the whole machine's.

    ``cache_scale`` divides every cache capacity by that factor so a scaled
    problem (e.g. 25k particles) sits in the same regime relative to the
    hierarchy as the paper's 100k vs a 33 MB L3.
    """
    arrays = compute_centroid_arrays(tree, theta=theta)
    leaves = tree.leaf_indices
    # Block-partition buckets across CPUs (contiguous in tree order, like
    # SFC partitions bound to processes).
    bounds = np.linspace(0, len(leaves), n_cpus + 1).astype(int)
    traces = []
    engine = get_traverser(style)
    for c in range(n_cpus):
        my_leaves = leaves[bounds[c]:bounds[c + 1]]
        if len(my_leaves) == 0:
            continue
        recorder = MemoryTraceRecorder(
            tree, layout, batched_kernels=(style == "transposed")
        )
        visitor = GravityVisitor(tree, arrays)
        for s in range(0, len(my_leaves), buckets_per_partition):
            targets = my_leaves[s:s + buckets_per_partition]
            engine.traverse(tree, visitor, targets, recorder)
        traces.append(recorder.trace())

    addrs, writes, cpus = interleave_traces(traces)
    # L1 stays at its true 32 KB (a bucket batch must relate to L1 exactly
    # as in hardware); cache_scale shrinks L2/L3 so the scaled-down problem
    # keeps the paper's regime: Partition buckets ⊂ L2, traversed tree ⊂ L3.
    hier = CacheHierarchy(
        n_cpus=n_cpus,
        l1=(32 * 1024, 8),
        l2=(1024 * 1024 // cache_scale, 16),
        l3=(33 * 1024 * 1024 // cache_scale // 64 // 11 * 11 * 64, 11),
    )
    replay_trace(hier, addrs, writes, cpus, max_accesses=max_accesses)
    st = hier.stats()
    row = st.as_table_row()

    telemetry = get_telemetry()
    if telemetry.enabled:
        for level, cache_stats in (("L1", st.l1), ("L2", st.l2), ("L3", st.l3)):
            telemetry.metrics.absorb_cache_stats(
                cache_stats, level=level, style=style, n_cpus=n_cpus
            )

    # Cycle-weighted runtime estimate from the hit distribution (divided
    # across CPUs; the traversal is embarrassingly parallel over buckets).
    l1_hits = st.l1.accesses - st.l1.misses
    l2_hits = st.l2.accesses - st.l2.misses
    l3_hits = st.l3.accesses - st.l3.misses
    mem = st.l3.misses
    cycles = (
        l1_hits * _LAT_L1 + l2_hits * _LAT_L2 + l3_hits * _LAT_L3 + mem * _LAT_MEM
    )
    runtime = cycles / (clock_ghz * 1e9) / n_cpus

    return CacheProfile(
        style=style,
        n_cpus=n_cpus,
        n_accesses=int(st.l1.accesses),
        l1_loads=int(row["l1_loads"]),
        l1_stores=int(row["l1_stores"]),
        l1_load_miss_rate=float(row["l1_load_miss_rate"]),
        l2_load_miss_rate=float(row["l2_load_miss_rate"]),
        l3_load_miss_rate=float(row["l3_load_miss_rate"]),
        l1l2_store_miss_rate=float(row["l1l2_store_miss_rate"]),
        l3_store_miss_rate=float(row["l3_store_miss_rate"]),
        runtime_estimate_s=float(runtime),
    )
