"""The *Visitor* abstraction (paper §II-A-2).

A Visitor tells a traversal when to prune and what to do at each step:

* ``open(source, target)``  — traverse beneath ``source``?  If not, the
  engine calls ``node``; if ``source`` is a leaf and opened, ``leaf``.
* ``node(source, target)``  — consume the node's summary Data (e.g. apply a
  centroid approximation to every target particle).
* ``leaf(source, target)``  — exact interaction with the leaf's particles.
* ``cell(source, target)``  — dual-tree traversals only: open the *target*
  as well (B² child interactions) or keep the target and open only the
  source (B interactions)?

The scalar methods operate on :class:`~repro.trees.SpatialNode` views, just
like the C++ templates in the paper's Fig 7.  The batched hooks
(``open_batch``/``node_batch``/``leaf_batch`` over many targets, and the
``*_sources`` mirror over many sources) let vectorised engines amortise the
interpreter cost; their default implementations fall back to the scalar
methods, so a minimal paper-style visitor works with every engine.
"""

from __future__ import annotations

import numpy as np

from ..trees import SpatialNode, Tree

__all__ = ["Visitor"]


def _group_pairs_by_source(sources: np.ndarray):
    """Yield ``(source, index_array)`` segments of a pair frontier, sorted by
    source.  The stable sort keeps each target's per-source pair order
    deterministic regardless of how the frontier was assembled."""
    order = np.argsort(sources, kind="stable")
    sorted_src = sources[order]
    bounds = np.flatnonzero(sorted_src[1:] != sorted_src[:-1]) + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds, [len(sorted_src)]])
    for a, b in zip(starts, ends):
        yield int(sorted_src[a]), order[a:b]


class Visitor:
    """Base visitor; subclass and override at least ``open``/``node``/``leaf``.

    Targets are identified by *leaf index* of the target tree; engines pass
    batches of those indices to the batched hooks.
    """

    #: Parallel execution (``repro.exec``): True means the thread backend
    #: may run one shared instance from many workers because every write
    #: targets per-particle rows of the chunk being traversed — chunks are
    #: disjoint, so under the GIL no synchronisation is needed.
    exec_shareable = False

    # -- scalar interface (paper-faithful) ---------------------------------
    def open(self, source: SpatialNode, target: SpatialNode) -> bool:
        raise NotImplementedError

    def node(self, source: SpatialNode, target: SpatialNode) -> None:
        raise NotImplementedError

    def leaf(self, source: SpatialNode, target: SpatialNode) -> None:
        raise NotImplementedError

    def cell(self, source: SpatialNode, target: SpatialNode) -> bool:
        """Dual-tree only; default: always open the target too."""
        return True

    def done(self, target: SpatialNode) -> bool:
        """Early-exit hook for up-and-down traversals (e.g. kNN can stop
        climbing when the current search ball is inside already-visited
        space).  Default: never stop early."""
        return False

    def path_advanced(self, target: SpatialNode, path_node: SpatialNode) -> None:
        """Up-and-down only: called after the top-down pass rooted at
        ``path_node`` (a node on the leaf-to-root path) completes, before
        ``done`` is consulted.  Lets the visitor track how much space has
        been covered (kNN containment test)."""

    # -- batched over targets (one source node, many target leaves) --------
    def open_batch(self, tree: Tree, source: int, targets: np.ndarray) -> np.ndarray:
        src = tree.node(source)
        return np.fromiter(
            (self.open(src, tree.node(int(t))) for t in targets),
            dtype=bool,
            count=len(targets),
        )

    def node_batch(self, tree: Tree, source: int, targets: np.ndarray) -> None:
        src = tree.node(source)
        for t in targets:
            self.node(src, tree.node(int(t)))

    def leaf_batch(self, tree: Tree, source: int, targets: np.ndarray) -> None:
        src = tree.node(source)
        for t in targets:
            self.leaf(src, tree.node(int(t)))

    # -- batched over (source, target) pairs (whole-frontier engines) ------
    # The level-synchronous "batched" engine carries its frontier as flat
    # pair arrays.  Defaults group the pairs by source (stable, so per-target
    # ordering is deterministic) and delegate to the *_batch hooks — every
    # existing visitor works unchanged; vectorised visitors override these
    # with whole-frontier kernels (see repro.trees.kernels).

    def open_pairs(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        out = np.empty(len(sources), dtype=bool)
        for src, idx in _group_pairs_by_source(sources):
            out[idx] = np.asarray(self.open_batch(tree, src, targets[idx]), dtype=bool)
        return out

    def node_pairs(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        for src, idx in _group_pairs_by_source(sources):
            self.node_batch(tree, src, targets[idx])

    def leaf_pairs(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        for src, idx in _group_pairs_by_source(sources):
            self.leaf_batch(tree, src, targets[idx])

    # -- batched over sources (many source nodes, one target leaf) ---------
    def open_sources(self, tree: Tree, sources: np.ndarray, target: int) -> np.ndarray:
        tgt = tree.node(target)
        return np.fromiter(
            (self.open(tree.node(int(s)), tgt) for s in sources),
            dtype=bool,
            count=len(sources),
        )

    def node_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        tgt = tree.node(target)
        for s in sources:
            self.node(tree.node(int(s)), tgt)

    def leaf_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        tgt = tree.node(target)
        for s in sources:
            self.leaf(tree.node(int(s)), tgt)

    # -- parallel-execution protocol (repro.exec) --------------------------
    # A visitor opts into worker-side reconstruction by returning a non-None
    # exec_config().  The contract: for a chunk of target leaves,
    #   worker = cls.exec_rebuild(tree, exec_arrays(), exec_config())
    #   <traverse chunk with worker>
    #   self.exec_apply(tree, chunk, worker.exec_collect(tree, chunk))
    # must leave ``self`` bit-identical to having traversed the chunk
    # directly.  Backends call exec_apply in chunk order.

    def exec_config(self) -> dict | None:
        """Small picklable kwargs for :meth:`exec_rebuild`; None means this
        visitor does not support worker-side reconstruction (the backend
        falls back to serial, or to instance sharing for threads)."""
        return None

    def exec_arrays(self) -> dict[str, np.ndarray]:
        """Large read-only arrays the backend shares with workers
        (zero-copy via shared memory for the process backend)."""
        return {}

    @classmethod
    def exec_rebuild(cls, tree: Tree, arrays: dict[str, np.ndarray], config: dict) -> "Visitor":
        """Construct a worker-local visitor over shared ``arrays``."""
        raise NotImplementedError

    def exec_collect(self, tree: Tree, targets: np.ndarray) -> dict[str, np.ndarray]:
        """Extract this (worker) visitor's outputs for ``targets`` — the
        small per-chunk payload shipped back to the parent."""
        raise NotImplementedError

    def exec_apply(self, tree: Tree, targets: np.ndarray, outputs: dict[str, np.ndarray]) -> None:
        """Fold a worker's :meth:`exec_collect` payload into this (parent)
        visitor.  Called once per chunk, in chunk order."""
        raise NotImplementedError
