"""Two-point correlation estimation from dual-tree pair counts."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...particles import ParticleSet
from .paircount import pair_counts

__all__ = ["CorrelationResult", "two_point_correlation"]


@dataclass
class CorrelationResult:
    edges: np.ndarray
    xi: np.ndarray        # (B,) natural-estimator correlation per bin
    dd: np.ndarray        # ordered data-data pair counts
    rr: np.ndarray        # ordered random-random pair counts
    wholesale_fraction: float  # fraction of DD pairs pruned wholesale


def two_point_correlation(
    particles: ParticleSet,
    edges: np.ndarray,
    n_random: int | None = None,
    seed: int = 0,
    bucket_size: int = 16,
) -> CorrelationResult:
    """Natural estimator ``xi = (DD/RR) * (nr(nr-1))/(nd(nd-1)) - 1``.

    ``RR`` is counted on a uniform random catalogue drawn in the data's
    bounding box (``n_random`` defaults to the data size).  Positive ``xi``
    in a bin means an excess of pairs at that separation over a uniform
    distribution — clustering.
    """
    edges = np.asarray(edges, dtype=np.float64)
    nd = len(particles)
    n_random = n_random or nd
    dd, visitor, _ = pair_counts(particles, edges, bucket_size=bucket_size)

    box = particles.bounding_box()
    rng = np.random.default_rng(seed)
    random_pos = rng.uniform(box.lo, box.hi, size=(n_random, 3))
    rr, _, _ = pair_counts(ParticleSet(random_pos), edges, bucket_size=bucket_size)

    norm = (n_random * (n_random - 1)) / (nd * (nd - 1))
    with np.errstate(divide="ignore", invalid="ignore"):
        xi = np.where(rr > 0, dd / np.maximum(rr, 1) * norm - 1.0, np.nan)
    return CorrelationResult(
        edges=edges,
        xi=xi,
        dd=dd,
        rr=rr,
        wholesale_fraction=visitor.wholesale_pairs / max(dd.sum(), 1),
    )
