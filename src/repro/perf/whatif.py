"""Coz-style causal what-if analysis over the DES event graph.

:func:`analyze_critical_path` tells you where the simulated iteration's
time *went*; this module tells you what a fix would *buy*.  It replays the
recorded :class:`~repro.perf.critical_path.CPRecorder` DAG with a
**virtual speedup** applied to a matched subset of activities (Coz's
central idea: the causal effect of optimising X is measured by shrinking X
and re-propagating the schedule) and reports the predicted makespan delta.
Shrinking an off-critical-path activity predicts ~0 gain; shrinking a
critical latency leg predicts the real gain *after* the schedule
re-converges — which is usually much less than the naive
``component_time × (1 − factor)`` because a secondary chain takes over.

Replay model
------------

The recorded graph is topological (every predecessor id < node id).  A
node's recorded start may exceed every predecessor's end — scheduler or
resource wait the edges do not capture.  Replay keeps that *unexplained
wait* ``W(n) = n.start − max_p(p.end)`` fixed and lets edge slack absorb
shifts, PERT-style: a predecessor finishing earlier only helps once it is
the binding constraint.

Rather than recomputing absolute times — which would fail the "null
speedup reproduces the measured makespan *exactly*" contract, since IEEE
floats do not guarantee ``max_p(p.end) + W(n) == n.start`` — the replay
propagates **deltas**::

    shift(n)  = max_p(p.end + delta[p]) − max_p(p.end)      (0 for roots)
    delta[n]  = shift(n) + (n.end − n.start) · (f(n) − 1)

    makespan' = makespan + max_n(n.end + delta[n]) − max_n(n.end)

With every factor exactly ``1.0`` the duration term is ``dur · 0.0 == 0.0``
and ``shift`` is a float minus itself, so all deltas are identically zero
and the predicted makespan is the measured one bit-for-bit — the
acceptance gate ``repro explain`` prints.  Pure speedups (f ≤ 1) can only
produce non-positive deltas, so a predicted makespan never exceeds the
baseline; the unexplained-wait term stays fixed even when preds finish
early, keeping predictions conservative where the graph is incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Iterable

from .critical_path import CPRecorder

__all__ = [
    "VirtualSpeedup",
    "WhatIfResult",
    "parse_whatif",
    "what_if",
    "standard_whatifs",
    "format_whatifs",
]


@dataclass(frozen=True)
class VirtualSpeedup:
    """One virtual optimisation: scale matching activities' durations.

    ``factor`` multiplies the duration (×0.5 = twice as fast, ×4 = four
    times slower — slowdowns are legal and useful for sensitivity).  An
    activity matches when every given predicate holds: ``kind`` equals,
    ``label`` is a substring, ``resource`` matches as an ``fnmatch`` glob.
    """

    factor: float
    kind: str | None = None
    label: str | None = None
    resource: str | None = None

    def matches(self, node) -> bool:
        if self.kind is not None and node.kind != self.kind:
            return False
        if self.label is not None and self.label not in node.label:
            return False
        if self.resource is not None and not fnmatch(node.resource, self.resource):
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.kind is not None:
            parts.append(f"kind={self.kind}")
        if self.label is not None:
            parts.append(f"label~{self.label}")
        if self.resource is not None:
            parts.append(f"resource={self.resource}")
        return f"{','.join(parts) or 'everything'} ×{self.factor:g}"


@dataclass
class WhatIfResult:
    """Predicted effect of one speedup battery on the DES makespan."""

    speedups: tuple[VirtualSpeedup, ...]
    baseline: float
    predicted: float
    matched: int
    matched_seconds: float

    @property
    def delta(self) -> float:
        return self.predicted - self.baseline

    @property
    def gain_frac(self) -> float:
        return -self.delta / self.baseline if self.baseline > 0 else 0.0

    def describe(self) -> str:
        return "; ".join(s.describe() for s in self.speedups)

    def to_dict(self) -> dict[str, Any]:
        return {
            "speedup": self.describe(),
            "baseline_s": float(self.baseline),
            "predicted_s": float(self.predicted),
            "delta_s": float(self.delta),
            "gain_frac": float(self.gain_frac),
            "matched_activities": int(self.matched),
            "matched_seconds": float(self.matched_seconds),
        }


def parse_whatif(spec: str) -> VirtualSpeedup:
    """Parse a CLI what-if spec: ``<matchers> ×<factor>``.

    Matchers are comma-separated ``kind=K`` / ``label=SUBSTR`` /
    ``resource=GLOB`` clauses; a bare word is shorthand for ``kind=word``.
    The factor separator is ``×`` or ``*``.  Examples::

        latency ×0.5
        kind=compute,resource=p3/* *0.8
        label=request x2
    """
    text = spec.strip().replace("×", "*")
    # also accept a lone "x2" style factor separator
    if "*" not in text:
        head, _, tail = text.rpartition(" x")
        if tail and _ == " x":
            text = f"{head}*{tail}"
    if "*" not in text:
        raise ValueError(
            f"what-if spec {spec!r} has no ×<factor> (try 'latency ×0.5')"
        )
    matchers, _, factor_text = text.rpartition("*")
    try:
        factor = float(factor_text)
    except ValueError:
        raise ValueError(f"bad what-if factor {factor_text!r} in {spec!r}") from None
    if factor <= 0:
        raise ValueError(f"what-if factor must be positive, got {factor:g}")
    kind = label = resource = None
    for clause in matchers.split(","):
        clause = clause.strip()
        if not clause:
            continue
        key, eq, value = clause.partition("=")
        if not eq:
            key, value = "kind", key
        key, value = key.strip(), value.strip()
        if key == "kind":
            kind = value
        elif key == "label":
            label = value
        elif key == "resource":
            resource = value
        else:
            raise ValueError(
                f"unknown what-if matcher {key!r} in {spec!r} "
                "(expected kind=/label=/resource=)"
            )
    return VirtualSpeedup(factor=factor, kind=kind, label=label, resource=resource)


def what_if(recorder: CPRecorder, makespan: float,
            speedups: VirtualSpeedup | Iterable[VirtualSpeedup]) -> WhatIfResult:
    """Replay the event graph with virtual speedups applied.

    Multiple speedups compose multiplicatively on activities matching more
    than one.  See the module docstring for the delta recurrence and the
    exact-null guarantee.
    """
    if isinstance(speedups, VirtualSpeedup):
        speedups = (speedups,)
    battery = tuple(speedups)
    nodes = recorder.nodes
    if not nodes:
        return WhatIfResult(battery, float(makespan), float(makespan), 0, 0.0)

    delta = [0.0] * len(nodes)
    max_end = max_shifted = None
    matched = 0
    matched_seconds = 0.0
    for n in nodes:  # ids are topological: preds always precede
        f = 1.0
        hit = False
        for s in battery:
            if s.matches(n):
                f *= s.factor
                hit = True
        dur = n.end - n.start
        if hit:
            matched += 1
            matched_seconds += dur
        # shift = max_p(p.end + delta[p]) − max_p(p.end): slack on
        # non-binding edges absorbs pred shifts; exactly 0.0 when all
        # pred deltas are 0.0 (same float minus itself)
        if n.preds:
            rec_bind = shifted_bind = None
            for p in n.preds:
                p_end = nodes[p].end
                if rec_bind is None or p_end > rec_bind:
                    rec_bind = p_end
                p_shifted = p_end + delta[p]
                if shifted_bind is None or p_shifted > shifted_bind:
                    shifted_bind = p_shifted
            shift = shifted_bind - rec_bind
        else:
            shift = 0.0
        delta[n.id] = shift + dur * (f - 1.0)
        end = n.end
        if max_end is None or end > max_end:
            max_end = end
        shifted = end + delta[n.id]
        if max_shifted is None or shifted > max_shifted:
            max_shifted = shifted

    predicted = makespan + (max_shifted - max_end)
    return WhatIfResult(battery, float(makespan), float(predicted),
                        matched, matched_seconds)


def standard_whatifs(recorder: CPRecorder, makespan: float,
                     top_resources: int = 3) -> list[WhatIfResult]:
    """The default battery ``repro explain`` reports: halve each activity
    kind, then halve compute on the busiest resources (Fig 11-style "which
    process would you optimise first" advice)."""
    results = [
        what_if(recorder, makespan, VirtualSpeedup(0.5, kind=kind))
        for kind in ("latency", "compute", "queue")
    ]
    busy: dict[str, float] = {}
    for n in recorder.nodes:
        if n.resource and n.kind == "compute":
            busy[n.resource] = busy.get(n.resource, 0.0) + (n.end - n.start)
    for resource, _ in sorted(busy.items(), key=lambda kv: -kv[1])[:top_resources]:
        results.append(what_if(
            recorder, makespan,
            VirtualSpeedup(0.5, kind="compute", resource=resource),
        ))
    results.sort(key=lambda r: r.predicted)
    return results


def format_whatifs(results: list[WhatIfResult], baseline: float) -> str:
    """Console table of predicted makespans, best first."""
    lines = [f"what-if (baseline {baseline * 1e3:.3f} ms simulated):"]
    for r in results:
        lines.append(
            f"  {r.describe():<42} → {r.predicted * 1e3:9.3f} ms "
            f"({r.gain_frac:+6.1%}, {r.matched} activities, "
            f"{r.matched_seconds * 1e3:.3f} ms matched)"
        )
    return "\n".join(lines)
