"""Seeded open-loop traffic generator.

Open-loop means arrivals follow the *schedule*, not the server: a slow
server does not slow the offered load down, which is exactly the regime
where admission control has to shed instead of queueing unboundedly.

The shape composes three ingredients from the serving literature:
Poisson arrivals at a base rate, a multiplicative burst window (the 4x
overload of the acceptance criteria), and heavy-tailed (Pareto) think
times that clump arrivals the way real users do.  Everything is drawn
from one seeded generator, so a trace is reproducible and can be fed to
both the real server and the DES model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .protocol import Query


@dataclass(frozen=True)
class TrafficShape:
    """Knobs for one seeded trace."""

    rate: float                      # base arrivals per second
    duration: float                  # trace length in seconds
    burst_factor: float = 1.0        # rate multiplier inside the burst window
    burst_window: tuple[float, float] = (0.4, 0.6)  # fractions of duration
    think_tail: float = 0.0          # probability of a Pareto think-time gap
    think_alpha: float = 1.5         # Pareto tail index (smaller = heavier)
    think_scale: float = 0.02        # Pareto scale in seconds
    deadline: float | None = None    # relative deadline for tagged queries
    deadline_frac: float = 0.0       # fraction of queries carrying it
    ops: tuple[str, ...] = ("knn",)
    k: int = 8
    radius: float = 0.1

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")


@dataclass
class TrafficTrace:
    """The generated schedule: queries sorted by arrival offset ``t``."""

    queries: list[Query]
    shape: TrafficShape
    seed: int = 0
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def generate_traffic(shape: TrafficShape, domain_lo: np.ndarray,
                     domain_hi: np.ndarray, seed: int = 0,
                     max_queries: int | None = None) -> TrafficTrace:
    """Draw one seeded trace; query points are uniform in the domain box."""
    rng = np.random.default_rng(seed)
    lo = np.asarray(domain_lo, dtype=np.float64)
    hi = np.asarray(domain_hi, dtype=np.float64)
    b0 = shape.burst_window[0] * shape.duration
    b1 = shape.burst_window[1] * shape.duration

    queries: list[Query] = []
    t = 0.0
    i = 0
    while True:
        rate = shape.rate * (shape.burst_factor if b0 <= t < b1 else 1.0)
        t += float(rng.exponential(1.0 / rate))
        if shape.think_tail > 0.0 and rng.random() < shape.think_tail:
            t += float(shape.think_scale * (rng.pareto(shape.think_alpha) + 1.0))
        if t >= shape.duration:
            break
        point = lo + rng.random(3) * (hi - lo)
        op = shape.ops[int(rng.integers(len(shape.ops)))]
        deadline = (shape.deadline
                    if shape.deadline_frac > 0.0
                    and rng.random() < shape.deadline_frac else None)
        queries.append(Query(id=f"q{i:07d}", op=op, point=point, k=shape.k,
                             radius=shape.radius, deadline=deadline, t=t))
        i += 1
        if max_queries is not None and i >= max_queries:
            break

    return TrafficTrace(queries=queries, shape=shape, seed=seed,
                        meta={"burst_s": (b0, b1)})
