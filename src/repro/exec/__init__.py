"""Shared-memory parallel execution backends.

The paper's headline results come from *actually running* traversals in
parallel: Partitions spread load across processing elements while the
software cache shares tree data.  This package supplies that real parallel
path for the Python reproduction — the first layer where wall-clock, not
simulated, time improves:

* :class:`SerialBackend` — the seed behaviour, kept as the oracle every
  other backend must match bit-for-bit;
* :class:`ThreadBackend` — a shared-address-space pool.  Worker threads
  traverse disjoint target-bucket chunks against one shared visitor (NumPy
  releases the GIL inside the large kernels) and contend on one
  :class:`~repro.cache.concurrent.SharedTreeCache`, exercising its
  wait-free fill/park/complete protocol under real concurrency;
* :class:`ProcessBackend` — worker processes attach the particle/tree
  structure-of-arrays via ``multiprocessing.shared_memory`` (zero-copy
  views) and return per-chunk accumulators that the parent reduces in
  deterministic partition order.

Every backend produces results **bit-identical** to serial regardless of
worker count: target buckets are partitioned exactly (reusing the
Partitions decomposition), per-particle accumulation order inside a chunk
equals the serial order, and reductions always run in chunk order, never
completion order.  ``tests/harness/differential.py`` enforces this for
every (engine × backend × worker-count) combination.
"""

from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    SerialBackend,
    get_backend,
    register_backend,
)
from .chunking import chunk_targets
from .shm import ShmArena, attach_arena, sweep_orphan_segments
from .supervise import ChunkSupervisor, SupervisionStats, SupervisorConfig
from .threads import ThreadBackend
from .processes import ProcessBackend

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "register_backend",
    "chunk_targets",
    "ShmArena",
    "attach_arena",
    "sweep_orphan_segments",
    "ChunkSupervisor",
    "SupervisionStats",
    "SupervisorConfig",
]
