"""Tree-build phase time model: Partitions-Subtrees vs the traditional model.

§II-C's motivation is the *build*, not just the traversal: "All such branch
nodes, or tree nodes whose descendants are divided across multiple
processing elements, require synchronization to merge their data ... At the
extreme end of strong scaling ... merging these tree nodes will require a
significant amount of communication."

This model turns the structural quantities we measure for real
(:func:`~repro.decomp.partitions.branch_duplication_count`, the
leaf-sharing counts of :func:`~repro.decomp.partitions.decompose`) into
build-phase times on a :class:`~repro.runtime.machine.MachineSpec`:

* **both models** pay a local sort+build proportional to the heaviest
  process's particle count;
* **traditional** pays a log₂(P)-round reduction that merges every
  duplicated branch node's data (bytes + latency per round);
* **Partitions-Subtrees** pays the one-shot leaf-sharing exchange (the
  split-bucket particles, point-to-point), which the paper measures at
  0.1-0.4 % of iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..trees import Tree
from .partitions import branch_duplication_count, decompose

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..runtime.machine import MachineSpec

__all__ = ["BuildTimes", "estimate_build_times"]

#: per-particle local sort+build cost on the reference 2.1 GHz core
_C_BUILD = 2.5e-7
#: per-node merge CPU cost (deserialize + combine moments)
_C_MERGE = 1.5e-7


@dataclass
class BuildTimes:
    """Build-phase breakdown for one model at one process count."""

    model: str
    n_processes: int
    local_build: float
    sync_time: float      # merge reduction (traditional) / leaf share (P-S)
    sync_bytes: float

    @property
    def total(self) -> float:
        return self.local_build + self.sync_time


def estimate_build_times(
    tree: Tree,
    particle_partition: np.ndarray,
    n_processes: int,
    machine: "MachineSpec | None" = None,
    workers_per_process: int | None = None,
) -> tuple[BuildTimes, BuildTimes]:
    """(traditional, partitions_subtrees) build times for one assignment.

    ``particle_partition`` is the per-particle (tree-order) partition id;
    partitions map to processes in blocks like the traversal DES does.
    ``machine`` defaults to Stampede2.
    """
    # Imported here: decomp must not depend on cache/runtime at load time
    # (cache.stats itself imports decomp).
    from ..cache.stats import NODE_BYTES, PARTICLE_BYTES
    from ..runtime.machine import STAMPEDE2

    machine = machine or STAMPEDE2
    particle_partition = np.asarray(particle_partition)
    n_parts = int(particle_partition.max()) + 1
    workers = workers_per_process or machine.workers_per_node
    clock = 2.1 / machine.clock_ghz

    part_proc = (np.arange(n_parts) * n_processes) // n_parts
    proc_of_particle = part_proc[particle_partition]
    counts = np.bincount(proc_of_particle, minlength=n_processes)
    # local build parallelises over a process's workers
    local = float(counts.max()) * _C_BUILD * clock / workers

    # --- traditional: duplicated branch nodes merged in a reduction -------
    dup_nodes = branch_duplication_count(tree, particle_partition)
    rounds = max(int(np.ceil(np.log2(max(n_processes, 2)))), 1)
    dup_bytes = dup_nodes * NODE_BYTES
    per_round_bytes = dup_bytes / max(n_processes, 1)
    sync_traditional = rounds * (
        machine.net_latency_s
        + per_round_bytes / machine.net_bandwidth_Bps
        + (dup_nodes / max(n_processes, 1)) * _C_MERGE * clock
    )
    traditional = BuildTimes(
        model="traditional",
        n_processes=n_processes,
        local_build=local,
        sync_time=float(sync_traditional),
        sync_bytes=float(dup_bytes),
    )

    # --- Partitions-Subtrees: one point-to-point leaf-sharing exchange ----
    dec = decompose(tree, particle_partition, n_subtrees=n_parts,
                    n_processes=n_processes)
    share_bytes = dec.n_shared_particles * PARTICLE_BYTES
    sync_ps = (
        machine.net_latency_s
        + (share_bytes / max(n_processes, 1)) / machine.net_bandwidth_Bps
        + (dec.n_shared_particles / max(n_processes, 1)) * _C_MERGE * clock
    )
    partitions_subtrees = BuildTimes(
        model="partitions-subtrees",
        n_processes=n_processes,
        local_build=local,
        sync_time=float(sync_ps),
        sync_bytes=float(share_bytes),
    )
    return traditional, partitions_subtrees
