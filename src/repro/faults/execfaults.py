"""Real-execution fault injection for the ``repro.exec`` backends.

PR 2's :class:`~repro.faults.plan.FaultPlan` only ever fires inside the
simulated DES; an :class:`ExecFaultPlan` instead fires inside *live*
worker threads and processes, proving the supervised execution layer
(:mod:`repro.exec.supervise`) recovers from genuine failures:

``err=P``
    A chunk attempt raises :class:`ExecFaultError` before computing
    (deserialisation bug, corrupt input, poison chunk, ...).
``hang=P@T``
    A chunk attempt sleeps ``T`` seconds (default 30) before computing —
    a straggler or livelocked worker the per-chunk deadline must catch.
``kill=P``
    The worker dies mid-chunk.  In a worker **process** this is a real
    ``SIGKILL`` on the worker's own pid (the parent sees
    ``BrokenProcessPool``, exactly like the OOM killer); in a worker
    thread — which cannot be killed — it raises :class:`WorkerDeath`,
    the closest thread-pool analogue.
``seed=N``
    Seed for every decision (default 0).

Every decision is a pure function of ``(seed, fault class, chunk index,
attempt number)`` — never of scheduling — so the same plan replays
bit-identically for any worker count, and a *retried* chunk redraws its
faults: a chunk that was killed on attempt 0 usually survives attempt 1,
while ``kill=1.0`` keeps firing until the supervisor quarantines the
chunk and re-executes it serially in-parent (where no injection happens).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "ExecFaultPlan",
    "ExecFaultError",
    "WorkerDeath",
    "parse_exec_fault_spec",
]

# per-fault-class stream tags, so enabling one class never perturbs another
_CLASS_KILL = 1
_CLASS_HANG = 2
_CLASS_ERROR = 3


class ExecFaultError(RuntimeError):
    """The injected transient per-chunk failure (``err=P``)."""


class WorkerDeath(RuntimeError):
    """Simulated worker death in a thread pool (``kill=P`` on threads).

    Threads cannot be SIGKILLed; the supervisor treats this exception as
    a worker death (counted in ``exec.worker_deaths``) and re-dispatches
    the chunk, mirroring the process backend's pool-rebuild path.
    """


@dataclass(frozen=True)
class ExecFaultPlan:
    """Seed-driven description of faults injected into live exec workers."""

    seed: int = 0
    #: probability a chunk attempt raises :class:`ExecFaultError`
    chunk_error: float = 0.0
    #: probability a chunk attempt stalls for :attr:`hang_time` seconds
    worker_hang: float = 0.0
    #: stall duration for ``worker_hang`` (seconds)
    hang_time: float = 30.0
    #: probability the worker dies mid-chunk (SIGKILL / :class:`WorkerDeath`)
    worker_kill: float = 0.0

    def __post_init__(self) -> None:
        for name in ("chunk_error", "worker_hang", "worker_kill"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {p}")
        if self.hang_time < 0:
            raise ValueError(f"hang_time must be >= 0, got {self.hang_time}")

    @property
    def any_faults(self) -> bool:
        return any(p > 0 for p in (self.chunk_error, self.worker_hang, self.worker_kill))

    def with_(self, **changes) -> "ExecFaultPlan":
        return replace(self, **changes)

    def _fires(self, class_tag: int, prob: float, chunk: int, attempt: int) -> bool:
        if prob <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, class_tag, chunk, attempt))
        )
        return bool(rng.random() < prob)

    def draw(self, chunk: int, attempt: int) -> str | None:
        """Which fault (if any) fires for this (chunk, attempt):
        ``"kill"`` | ``"hang"`` | ``"error"`` | None.  Kill wins over hang
        wins over error, each from its own deterministic stream."""
        if self._fires(_CLASS_KILL, self.worker_kill, chunk, attempt):
            return "kill"
        if self._fires(_CLASS_HANG, self.worker_hang, chunk, attempt):
            return "hang"
        if self._fires(_CLASS_ERROR, self.chunk_error, chunk, attempt):
            return "error"
        return None

    def apply_in_worker(self, chunk: int, attempt: int, in_process: bool) -> None:
        """Inject the drawn fault from inside a live worker.

        Called at the top of every worker chunk attempt when the plan is
        shipped with the task.  ``in_process`` selects real ``SIGKILL``
        (worker processes) versus :class:`WorkerDeath` (worker threads).
        """
        fault = self.draw(chunk, attempt)
        if fault is None:
            return
        if fault == "kill":
            if in_process:
                os.kill(os.getpid(), signal.SIGKILL)  # never returns
            raise WorkerDeath(
                f"injected worker death (chunk {chunk}, attempt {attempt})"
            )
        if fault == "hang":
            time.sleep(self.hang_time)
            return
        raise ExecFaultError(
            f"injected chunk error (chunk {chunk}, attempt {attempt})"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "chunk_error": self.chunk_error,
            "worker_hang": self.worker_hang,
            "hang_time": self.hang_time,
            "worker_kill": self.worker_kill,
        }

    def describe(self) -> str:
        """The plan back in spec-grammar form (round-trips through
        :func:`parse_exec_fault_spec`)."""
        parts = []
        if self.chunk_error:
            parts.append(f"err={self.chunk_error:g}")
        if self.worker_hang:
            parts.append(f"hang={self.worker_hang:g}@{self.hang_time:g}")
        if self.worker_kill:
            parts.append(f"kill={self.worker_kill:g}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def _parse_prob(key: str, text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"exec fault spec: {key}={text!r} is not a number") from None
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"exec fault spec: {key}={value} must be in [0, 1]")
    return value


def parse_exec_fault_spec(spec: str) -> ExecFaultPlan:
    """Parse the ``--exec-faults`` grammar (see module docstring)."""
    fields: dict = {}
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        if "=" not in raw:
            raise ValueError(f"exec fault spec: expected key=value, got {raw!r}")
        key, _, value = raw.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in ("err", "error", "chunk_error"):
            fields["chunk_error"] = _parse_prob(key, value)
        elif key in ("hang", "worker_hang"):
            prob, _, dur = value.partition("@")
            fields["worker_hang"] = _parse_prob(key, prob)
            if dur:
                fields["hang_time"] = float(dur)
        elif key in ("kill", "worker_kill"):
            fields["worker_kill"] = _parse_prob(key, value)
        elif key == "seed":
            fields["seed"] = int(value)
        else:
            raise ValueError(f"exec fault spec: unknown key {key!r}")
    return ExecFaultPlan(**fields)
