"""Memory-trace generation from real traversals.

:class:`MemoryTraceRecorder` plugs into a traversal engine as a
:class:`~repro.core.traverser.Recorder`; every callback converts the
engine's actual evaluation step into the cache lines it touches, under an
explicit :class:`DataLayout`.  Because the per-bucket and transposed engines
deliver the callbacks in their own loop orders, the *same physics* produces
two different address streams — exactly the effect Table II measures.

Touched data per step (line-granular):

* opening test      — the source node's summary (centroid/mass/MAC sphere)
  and the target leaf's box;
* node interaction  — source node summary + every target particle's
  position (load) and acceleration (load + store);
* leaf interaction  — source leaf's positions & masses (load) + every
  target particle's position (load) and acceleration (load + store).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.traverser import Recorder
from ..trees import Tree
from .hierarchy import CacheHierarchy

__all__ = ["DataLayout", "MemoryTraceRecorder", "replay_trace", "interleave_traces"]


@dataclass(frozen=True)
class DataLayout:
    """Virtual address map of the traversal working set.

    Node summaries are 128 B (centroid, mass, MAC radius, box: the compact
    working set the Data abstraction drives); particle positions and
    accelerations are 24 B, masses 8 B.  Regions are spaced far apart so
    they never share lines.
    """

    line_size: int = 64
    node_stride: int = 128
    node_base: int = 0x0000_0000
    pos_base: int = 0x4000_0000
    mass_base: int = 0x6000_0000
    acc_base: int = 0x8000_0000
    pos_stride: int = 24
    mass_stride: int = 8
    acc_stride: int = 24

    def node_lines(self, nodes: np.ndarray) -> np.ndarray:
        return self._range_lines(self.node_base, nodes, self.node_stride)

    def pos_lines(self, pstart: np.ndarray, pend: np.ndarray) -> np.ndarray:
        return self._span_lines(self.pos_base, pstart, pend, self.pos_stride)

    def mass_lines(self, pstart: np.ndarray, pend: np.ndarray) -> np.ndarray:
        return self._span_lines(self.mass_base, pstart, pend, self.mass_stride)

    def acc_lines(self, pstart: np.ndarray, pend: np.ndarray) -> np.ndarray:
        return self._span_lines(self.acc_base, pstart, pend, self.acc_stride)

    def _range_lines(self, base: int, idx: np.ndarray, stride: int) -> np.ndarray:
        """Lines covered by objects ``idx`` of size ``stride`` at ``base``."""
        idx = np.atleast_1d(idx).astype(np.int64)
        first = (base + idx * stride) // self.line_size
        last = (base + (idx + 1) * stride - 1) // self.line_size
        if stride <= self.line_size:
            # At most two lines per object; build without Python loops.
            out = np.concatenate([first, last[last > first]])
            return out
        return np.concatenate(
            [np.arange(f, l + 1) for f, l in zip(first, last)]
        )

    def _span_lines(self, base: int, starts, ends, stride: int) -> np.ndarray:
        """Lines covered by the contiguous element ranges [starts, ends)."""
        starts = np.atleast_1d(starts).astype(np.int64)
        ends = np.atleast_1d(ends).astype(np.int64)
        pieces = []
        for s, e in zip(starts, ends):
            if e <= s:
                continue
            f = (base + s * stride) // self.line_size
            l = (base + e * stride - 1) // self.line_size
            pieces.append(np.arange(f, l + 1))
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)


#: Size (lines) of the rotating scratch window modelling traversal
#: bookkeeping memory (DFS stacks, active-target lists).  Small and reused,
#: so it is L1-resident — bookkeeping inflates access *counts*, not miss
#: rates, exactly as Table II's low store-miss-rates suggest.
_SCRATCH_LINES = 64
_SCRATCH_BASE = 0xC000_0000


class MemoryTraceRecorder(Recorder):
    """Collects a (line_address, is_write) stream in engine order."""

    def __init__(
        self,
        tree: Tree,
        layout: DataLayout | None = None,
        batched_kernels: bool = True,
    ) -> None:
        """``batched_kernels=True`` models kernels that stream the target
        batch once per delivered event (ParaTreeT's transposed processing);
        ``False`` models the classic node-at-a-time DFS kernel (ChaNGa),
        which re-touches the target bucket for every source node/leaf of a
        batched event."""
        self.tree = tree
        self.layout = layout or DataLayout()
        self.batched_kernels = batched_kernels
        self._chunks: list[tuple[np.ndarray, bool]] = []
        self._scratch_cursor = 0

    def _scratch(self, n_lines: int) -> np.ndarray:
        """``n_lines`` successive lines of the rotating scratch window."""
        base = _SCRATCH_BASE // self.layout.line_size
        idx = (self._scratch_cursor + np.arange(n_lines)) % _SCRATCH_LINES
        self._scratch_cursor = (self._scratch_cursor + n_lines) % _SCRATCH_LINES
        return base + idx

    # -- Recorder interface ---------------------------------------------------
    def on_open(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        lay = self.layout
        s = np.atleast_1d(sources)
        t = np.atleast_1d(targets)
        self._load(lay.node_lines(s))
        self._load(lay.node_lines(t))
        # Traversal bookkeeping. Per-bucket walks push a stack entry per
        # visited node (8 B each); the transposed walk appends surviving
        # targets to compact active lists (4 B each).  Both live in small
        # reused buffers.
        if len(t) == 1:  # per-bucket direction: stack pushes per source node
            self._store(self._scratch(max(1, len(s) * 8 // lay.line_size)))
        else:  # transposed direction: active-list append per target
            self._store(self._scratch(max(1, len(t) * 4 // lay.line_size)))

    def on_node(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        lay = self.layout
        s = np.atleast_1d(sources)
        t = np.atleast_1d(targets)
        self._load(lay.node_lines(s))
        pos = lay.pos_lines(tree.pstart[t], tree.pend[t])
        acc = lay.acc_lines(tree.pstart[t], tree.pend[t])
        # Batched kernels stream the target batch once per event; the
        # node-at-a-time DFS re-touches the bucket per source node.
        reps = 1 if self.batched_kernels else max(len(s), 1)
        for _ in range(reps):
            self._load(pos)
            self._load(acc)
            self._store(acc)

    def on_leaf(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        lay = self.layout
        s = np.atleast_1d(sources)
        t = np.atleast_1d(targets)
        tgt_pos = lay.pos_lines(tree.pstart[t], tree.pend[t])
        tgt_acc = lay.acc_lines(tree.pstart[t], tree.pend[t])
        if self.batched_kernels:
            self._load(lay.pos_lines(tree.pstart[s], tree.pend[s]))
            self._load(lay.mass_lines(tree.pstart[s], tree.pend[s]))
            self._load(tgt_pos)
            self._load(tgt_acc)
            self._store(tgt_acc)
        else:
            # One leaf at a time: re-touch the target bucket per source leaf.
            for leaf in s:
                one = np.array([leaf])
                self._load(lay.pos_lines(tree.pstart[one], tree.pend[one]))
                self._load(lay.mass_lines(tree.pstart[one], tree.pend[one]))
                self._load(tgt_pos)
                self._load(tgt_acc)
                self._store(tgt_acc)

    # -- stream assembly --------------------------------------------------------
    def _load(self, lines: np.ndarray) -> None:
        if len(lines):
            self._chunks.append((lines, False))

    def _store(self, lines: np.ndarray) -> None:
        if len(lines):
            self._chunks.append((lines, True))

    def trace(self) -> tuple[np.ndarray, np.ndarray]:
        """The full stream as (line_addrs, is_write) arrays."""
        if not self._chunks:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        addrs = np.concatenate([c[0] for c in self._chunks])
        writes = np.concatenate(
            [np.full(len(c[0]), c[1], dtype=bool) for c in self._chunks]
        )
        return addrs, writes

    @property
    def n_accesses(self) -> int:
        return sum(len(c[0]) for c in self._chunks)


def interleave_traces(
    traces: list[tuple[np.ndarray, np.ndarray]], chunk: int = 256
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Round-robin-merge per-CPU traces into one stream with a cpu column.

    Emulates concurrent execution: each CPU advances ``chunk`` accesses per
    turn, which is what the shared L3 sees.
    """
    cursors = [0] * len(traces)
    addr_out: list[np.ndarray] = []
    write_out: list[np.ndarray] = []
    cpu_out: list[np.ndarray] = []
    live = True
    while live:
        live = False
        for cpu, (addrs, writes) in enumerate(traces):
            c = cursors[cpu]
            if c >= len(addrs):
                continue
            live = True
            e = min(c + chunk, len(addrs))
            addr_out.append(addrs[c:e])
            write_out.append(writes[c:e])
            cpu_out.append(np.full(e - c, cpu, dtype=np.int32))
            cursors[cpu] = e
    if not addr_out:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.int32),
        )
    return np.concatenate(addr_out), np.concatenate(write_out), np.concatenate(cpu_out)


def replay_trace(
    hierarchy: CacheHierarchy,
    addrs: np.ndarray,
    writes: np.ndarray,
    cpus: np.ndarray | None = None,
    max_accesses: int | None = None,
) -> None:
    """Feed a line stream through the hierarchy (optionally truncated)."""
    if max_accesses is not None and len(addrs) > max_accesses:
        addrs = addrs[:max_accesses]
        writes = writes[:max_accesses]
        if cpus is not None:
            cpus = cpus[:max_accesses]
    access = hierarchy.access
    if cpus is None:
        for a, w in zip(addrs.tolist(), writes.tolist()):
            access(0, a, w)
    else:
        for a, w, c in zip(addrs.tolist(), writes.tolist(), cpus.tolist()):
            access(c, a, w)
