"""Table II — cache-utilisation statistics, ParaTreeT vs ChaNGa styles.

Reproduces §III-A's PMU profile through the trace-driven cache-hierarchy
simulator: the *same* gravity traversal is recorded in both loop orders
(transposed vs per-bucket/node-at-a-time) and replayed through the SKX
hierarchy of the paper's Stampede2 node.

Substitutions (documented in DESIGN.md): 12k particles instead of 100k with
L2/L3 scaled by 8x so the working-set regime matches ("the set of buckets
in a Partition fits in the L2 cache and the tree traversed for that set
fits in the L3 cache"); access counts are line-granular rather than
instruction-granular, so absolute counts and miss rates differ from PMU
numbers — the reproduced quantities are the ratios and orderings:

* ParaTreeT does fewer cache accesses ("fewer cache accesses by not
  walking the tree once per bucket"),
* ParaTreeT's runtime is ~0.6x ChaNGa's (paper: 9.2/16 ≈ 0.58 at 1 CPU),
* ParaTreeT's store miss rate is higher (paper: 0.036% vs 0.020%).
"""


from repro.bench import format_table, paper_reference, print_banner
from repro.memsim import profile_traversal_style
from repro.particles import uniform_cube
from repro.perf import benchmark as perf_benchmark
from repro.trees import build_tree

CPUS = (1, 2, 4)
N_PARTICLES = 12_000
CACHE_SCALE = 8


_CACHE = {}


@perf_benchmark("memsim.transposed", group="memsim",
                description="cache-hierarchy replay of a transposed traversal")
def perf_memsim_transposed(quick=False):
    tree = build_tree(uniform_cube(1_000 if quick else 2_000, seed=3),
                      tree_type="oct", bucket_size=16)

    def run():
        p = profile_traversal_style(
            tree, style="transposed", n_cpus=1, cache_scale=16,
            buckets_per_partition=48,
        )
        return {"accesses": p.n_accesses}

    return run


def _profiles():
    if "out" in _CACHE:
        return _CACHE["out"]
    tree = build_tree(uniform_cube(N_PARTICLES, seed=2), tree_type="oct", bucket_size=16)
    out = {}
    for style in ("transposed", "per-bucket"):
        for n_cpus in CPUS:
            out[(style, n_cpus)] = profile_traversal_style(
                tree, style=style, n_cpus=n_cpus,
                cache_scale=CACHE_SCALE, buckets_per_partition=64,
            )
    _CACHE["out"] = out
    return out


def test_table2(benchmark):
    profiles = benchmark.pedantic(_profiles, rounds=1, iterations=1)
    headers = [
        "CPU", "style", "runtime (s)", "L1D loads", "L1D stores",
        "L1 miss %", "L2 miss %", "L3 miss %", "st(L1&L2) %", "st L3 %",
    ]
    rows = []
    for n_cpus in CPUS:
        for style, label in (("transposed", "ParaTreeT"), ("per-bucket", "ChaNGa")):
            p = profiles[(style, n_cpus)]
            rows.append([
                n_cpus, label, p.runtime_estimate_s, p.l1_loads, p.l1_stores,
                100 * p.l1_load_miss_rate, 100 * p.l2_load_miss_rate,
                100 * p.l3_load_miss_rate, 100 * p.l1l2_store_miss_rate,
                100 * p.l3_store_miss_rate,
            ])
    print_banner("Table II: simulated cache statistics (line-granular)")
    print(format_table(headers, rows))
    print("\npaper Table II at 1 CPU (instruction-granular PMU counts):")
    pt, ch = paper_reference.TABLE2[1]
    print(f"  ParaTreeT: runtime {pt[0]}s, loads {pt[1]}e9, stores {pt[2]}e9, "
          f"L1 {pt[3]}%, L2 {pt[4]}%, L3 {pt[5]}%")
    print(f"  ChaNGa:    runtime {ch[0]}s, loads {ch[1]}e9, stores {ch[2]}e9, "
          f"L1 {ch[3]}%, L2 {ch[4]}%, L3 {ch[5]}%")

    for n_cpus in CPUS:
        t = profiles[("transposed", n_cpus)]
        b = profiles[("per-bucket", n_cpus)]
        # Fewer total accesses for the transposed style.
        assert t.n_accesses < b.n_accesses, n_cpus
        # Lower modelled runtime — the Table II headline.
        assert t.runtime_estimate_s < b.runtime_estimate_s, n_cpus
        # Higher store miss rate for the transposed style (paper: 0.036 vs
        # 0.020 at 1 CPU) — it streams acc arrays per node instead of
        # keeping one bucket's accumulators hot.
        assert t.l1l2_store_miss_rate >= b.l1l2_store_miss_rate, n_cpus

    # Runtime ratio at 1 CPU lands near the paper's 0.58.
    ratio = (
        profiles[("transposed", 1)].runtime_estimate_s
        / profiles[("per-bucket", 1)].runtime_estimate_s
    )
    print(f"\nruntime ratio ParaTreeT/ChaNGa at 1 CPU: {ratio:.3f} "
          f"(paper: {paper_reference.TABLE2_RUNTIME_RATIO:.3f})")
    assert 0.35 < ratio < 0.85


def test_table2_benchmark_replay(benchmark):
    """Time the cache-simulator replay itself on a small trace."""
    tree = build_tree(uniform_cube(2_000, seed=3), tree_type="oct", bucket_size=16)

    def run():
        return profile_traversal_style(
            tree, style="transposed", n_cpus=1, cache_scale=16,
            buckets_per_partition=48,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.n_accesses > 0
