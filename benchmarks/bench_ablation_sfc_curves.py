"""Ablation — Morton vs Hilbert space-filling curves for decomposition.

§II-C motivates SFC decomposition generally; the Morton curve is the
classic choice (Warren & Salmon 1993) but has locality discontinuities at
octant boundaries.  The Hilbert curve's face-connected slices cut the
boundary metrics the Partitions-Subtrees model cares about: split buckets,
shared particles, and remote fetch volume.
"""

import numpy as np

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.bench import format_table, print_banner
from repro.cache import WAITFREE, assign_fetch_groups, fetch_statistics
from repro.core import InteractionLists, get_traverser
from repro.decomp import decompose, get_decomposer
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.trees import build_tree

N_PARTS = 64
N_PROC = 16

_CACHE = {}


@perf_benchmark("decomp.hilbert_assign", group="decomp",
                description="Hilbert-curve decomposition assignment (kd-tree)")
def perf_hilbert_assign(quick=False):
    particles = clustered_clumps(6_000 if quick else 20_000, seed=21)
    tree = build_tree(particles, tree_type="kd", bucket_size=16)
    decomposer = get_decomposer("hilbert")

    def run():
        parts = decomposer.assign(tree.particles, N_PARTS)
        return {"n_parts": int(parts.max()) + 1}

    return run


def _measure():
    if "out" in _CACHE:
        return _CACHE["out"]
    particles = clustered_clumps(20_000, seed=21)
    tree = build_tree(particles, tree_type="kd", bucket_size=16)
    visitor = GravityVisitor(tree, compute_centroid_arrays(tree, theta=0.7))
    lists = InteractionLists()
    get_traverser("transposed").traverse(tree, visitor, None, lists)
    rows = []
    for name in ("sfc", "hilbert"):
        parts = get_decomposer(name).assign(tree.particles, N_PARTS)
        dec = decompose(tree, parts, n_subtrees=N_PARTS)
        st = fetch_statistics(
            tree, lists, dec,
            assign_fetch_groups(tree, dec, nodes_per_request=2),
            N_PROC, WAITFREE, workers_per_process=24,
        )
        # mean slice bounding volume (locality of the pieces themselves)
        vols = []
        for p in range(N_PARTS):
            sub = tree.particles.position[parts == p]
            vols.append(float(np.prod(sub.max(axis=0) - sub.min(axis=0))))
        rows.append((
            "Morton" if name == "sfc" else "Hilbert",
            dec.n_split_buckets,
            dec.n_shared_particles,
            st.total_requests,
            st.total_bytes / 1e6,
            float(np.mean(vols)),
        ))
    _CACHE["out"] = rows
    return rows


def test_sfc_curve_comparison(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_banner("Ablation: Morton vs Hilbert decomposition (kd-tree, 20k clustered)")
    print(format_table(
        ["curve", "split buckets", "shared particles", "requests",
         "MB fetched", "mean slice volume"],
        rows,
    ))
    morton, hilbert = rows
    # Hilbert's face-connected slices are geometrically tighter...
    assert hilbert[5] < morton[5]
    # ...which shows up as no-worse boundary communication.
    assert hilbert[2] <= morton[2] * 1.1
    assert hilbert[3] <= morton[3] * 1.1
