"""Open-loop load bench and the DES-vs-real accounting comparison.

``run_trace`` replays a seeded :class:`~repro.serve.traffic.TrafficTrace`
against a live :class:`~repro.serve.service.QueryService` — paced (real
wall-clock arrivals, the ``repro serve --bench`` path, gated by the
PR 6 SLO layer) or unpaced (submit in trace order as fast as possible;
admission decisions are still trace-deterministic because they key off
each query's carried ``t``).  ``accounting_delta`` then compares the
real counters against a :class:`~repro.serve.desmodel.ServeSimResult`
for the same trace — the two legs of the ISSUE 9 validation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from ..obs.slo import SLOReport, SLOSpec, evaluate_slo
from .protocol import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_SHED,
    Response,
)
from .service import QueryService
from .traffic import TrafficTrace


@dataclass
class BenchResult:
    """One replay: per-status counts, admitted-latency tail, accounting."""

    statuses: dict[str, int]
    counters: dict[str, int]
    accounting: dict[str, int]
    latencies: list[float]            # served queries only, arrival order
    retry_after_present: int = 0      # shed responses carrying a hint
    retry_after_missing: int = 0      # shed responses without one (draining)
    wall_s: float = 0.0
    slo: SLOReport | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def served(self) -> int:
        return self.statuses.get(STATUS_OK, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(STATUS_SHED, 0)

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "statuses": self.statuses,
            "counters": self.counters,
            "wall_s": round(self.wall_s, 3),
            "p50_s": round(self.quantile(0.5), 6),
            "p99_s": round(self.quantile(0.99), 6),
            "retry_after_present": self.retry_after_present,
            "retry_after_missing": self.retry_after_missing,
            **self.meta,
        }
        if self.slo is not None:
            doc["slo"] = self.slo.to_dict()
        return doc


def _tally(responses: list[Response]) -> tuple[dict[str, int], list[float], int, int]:
    statuses = {STATUS_OK: 0, STATUS_SHED: 0, STATUS_EXPIRED: 0, STATUS_ERROR: 0}
    latencies: list[float] = []
    with_hint = without_hint = 0
    for r in responses:
        statuses[r.status] = statuses.get(r.status, 0) + 1
        if r.status == STATUS_OK and r.queue_s is not None:
            latencies.append(r.queue_s + (r.service_s or 0.0))
        elif r.status == STATUS_SHED:
            if r.retry_after is not None:
                with_hint += 1
            else:
                without_hint += 1
    return statuses, latencies, with_hint, without_hint


async def run_trace(service: QueryService, trace: TrafficTrace,
                    pace: bool = True, slo: SLOSpec | None = None,
                    speed: float = 1.0) -> BenchResult:
    """Replay ``trace``; returns once every query has a final response."""
    await service.start()
    t0 = service.clock()
    tasks: list[asyncio.Task[Response]] = []
    if pace:
        for query in trace.queries:
            delay = query.t / speed - (service.clock() - t0)
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(service.submit(query)))
    else:
        # unpaced: offers happen synchronously, in trace order
        tasks = [asyncio.ensure_future(service.submit(q))
                 for q in trace.queries]
    responses = list(await asyncio.gather(*tasks))
    wall = service.clock() - t0

    statuses, latencies, with_hint, without_hint = _tally(responses)
    counters = service.admission.counters
    report = evaluate_slo(slo, latencies) if slo is not None else None
    return BenchResult(
        statuses=statuses, counters=counters.to_dict(),
        accounting=counters.accounting_key(), latencies=latencies,
        retry_after_present=with_hint, retry_after_missing=without_hint,
        wall_s=wall, slo=report,
        meta={"n_queries": len(trace), "paced": pace, "seed": trace.seed},
    )


def accounting_delta(real: dict[str, int], sim: dict[str, int]) -> dict[str, int]:
    """Per-key ``real - sim`` over the agreement subset; {} means agree."""
    keys = set(real) | set(sim)
    return {k: real.get(k, 0) - sim.get(k, 0)
            for k in sorted(keys) if real.get(k, 0) != sim.get(k, 0)}


def calibrate_capacity(service: QueryService, probe: TrafficTrace,
                       repeats: int = 3) -> float:
    """Measured serving capacity in queries/s (drives the overload knob).

    Times the executor directly on a batch-sized probe — no admission,
    no queueing — so the bench can offer a controlled multiple of what
    the server can actually sustain.
    """
    batch = [q.to_wire() for q in
             probe.queries[:service.batcher.policy.batch_max]] or None
    if not batch:
        raise ValueError("probe trace is empty")
    best = float("inf")
    for _ in range(repeats):
        t0 = service.clock()
        service.executor.execute(batch)
        best = min(best, service.clock() - t0)
    return len(batch) / max(best, 1e-9)
