"""The performance observatory: benchmark harness, regression gating, and
DES critical-path analysis.

The paper's whole evaluation is a performance story (Figures 9–13, Tables
I–III); this package is the machinery that keeps the reproduction's own
performance story machine-readable:

* :mod:`repro.perf.registry` — ``@benchmark``-registered workloads with
  stable IDs, discovered from ``benchmarks/bench_*.py``;
* :mod:`repro.perf.harness` — warmup + repeated timed runs, robust
  statistics (median/IQR, MAD outlier rejection), environment
  fingerprints, and schema-versioned ``BENCH_<timestamp>.json`` output;
* :mod:`repro.perf.compare` — noise-aware baseline comparison with a
  markdown report and a CI exit code;
* :mod:`repro.perf.critical_path` — records the dependency edges the DES
  resolves and attributes end-to-end simulated time to
  {compute, cache-miss latency, queueing, barrier wait}.

CLI::

    python -m repro bench list
    python -m repro bench run --quick
    python -m repro bench compare BENCH_baseline.json BENCH_new.json
    python -m repro bench report BENCH_new.json
    python -m repro scale --critical-path
"""

from .critical_path import (
    CP_KINDS,
    CPNode,
    CPRecorder,
    CPSegment,
    CriticalPathReport,
    analyze_critical_path,
    format_components,
)
from .whatif import (
    VirtualSpeedup,
    WhatIfResult,
    format_whatifs,
    parse_whatif,
    standard_whatifs,
    what_if,
)
from .registry import BenchmarkDef, BenchmarkRegistry, benchmark, discover, get_registry
from .harness import (
    SCHEMA,
    SCHEMA_VERSION,
    environment_fingerprint,
    format_report,
    load_report,
    robust_stats,
    run_one,
    run_suite,
    validate_report,
    write_report,
)
from .compare import BenchDelta, ComparisonResult, compare_reports

__all__ = [
    "CP_KINDS",
    "CPNode",
    "CPRecorder",
    "CPSegment",
    "CriticalPathReport",
    "analyze_critical_path",
    "format_components",
    "VirtualSpeedup",
    "WhatIfResult",
    "format_whatifs",
    "parse_whatif",
    "standard_whatifs",
    "what_if",
    "BenchmarkDef",
    "BenchmarkRegistry",
    "benchmark",
    "discover",
    "get_registry",
    "SCHEMA",
    "SCHEMA_VERSION",
    "environment_fingerprint",
    "format_report",
    "load_report",
    "robust_stats",
    "run_one",
    "run_suite",
    "validate_report",
    "write_report",
    "BenchDelta",
    "ComparisonResult",
    "compare_reports",
]
