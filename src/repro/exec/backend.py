"""Execution backend interface and registry.

A backend runs one registered :class:`~repro.core.traverser.Traverser` over
a set of target buckets, possibly concurrently, and must satisfy the
**determinism contract**: for any worker count the visitor ends up in a
state bit-identical to a serial run over the same targets, and the merged
:class:`~repro.core.traverser.TraversalStats` interaction counts are equal.
Backends achieve this by chunking targets exactly (see
:func:`~repro.exec.chunking.chunk_targets`) and reducing per-chunk results
in chunk order, never completion order.

Visitors opt into the richer backends through the parallel-execution
protocol on :class:`~repro.core.visitor.Visitor` (``exec_config`` /
``exec_arrays`` / ``exec_rebuild`` / ``exec_collect`` / ``exec_apply``,
plus the ``exec_shareable`` flag for lock-free thread sharing).  A visitor
that supports neither is executed serially — correctness is never traded
for concurrency.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ..core.traverser import Recorder, TraversalStats, Traverser, get_traverser
from ..obs import Log2Histogram, get_telemetry
from ..trees import Tree

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "get_backend",
    "register_backend",
    "BACKEND_NAMES",
]


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


class ExecutionBackend:
    """Base class: runs traversals over chunked targets.

    Subclasses implement :meth:`_run_chunks`; the base class handles target
    resolution, recorder forking, serial fallback, and telemetry
    (``exec.*`` metrics plus one completed span per chunk task).
    """

    name: str = "abstract"
    #: whether this backend ever runs more than one chunk concurrently
    parallel: bool = True
    #: whether the supervisor may Future.cancel() abandoned attempts
    #: (process pools must not — see ChunkSupervisor.cancel_abandoned)
    supervisor_cancels: bool = True

    def __init__(self, workers: int | None = None, supervise=None,
                 exec_faults=None) -> None:
        self.workers = int(workers) if workers else _default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        #: real-execution fault plan injected into workers (tests/chaos)
        self.exec_faults = exec_faults
        #: supervision config: ``True``/a ``SupervisorConfig`` arms the
        #: supervised dispatch loop; ``False`` forces the PR 5 blocking
        #: dispatch; ``None`` auto-arms only when a fault plan is present
        #: (running injected faults unsupervised is asking to die — which
        #: is exactly what ``supervise=False`` is for demonstrating).
        from .supervise import SupervisorConfig

        if supervise is False:
            self.supervise_config = None
        elif supervise is True:
            self.supervise_config = SupervisorConfig()
        elif supervise is None:
            self.supervise_config = (
                SupervisorConfig()
                if exec_faults is not None and exec_faults.any_faults
                else None
            )
        else:
            self.supervise_config = supervise
        self._supervisor = None
        #: how the last ``run`` executed ("parallel" | "degraded" |
        #: "serial-fallback" | "serial"); tests and telemetry read this
        self.last_mode = "serial"
        #: supervision outcome of the last run (a
        #: :meth:`~repro.exec.supervise.SupervisionStats.to_dict`), or None
        #: when the last run was unsupervised
        self.last_supervision: dict[str, int] | None = None
        self._last_degraded = False
        #: per-chunk task dicts from the last parallel run (worker lanes for
        #: the ``repro top`` dashboard)
        self.last_tasks: list[dict[str, Any]] = []
        #: merged worker-side latency distribution from the last parallel run
        self.last_latency: Log2Histogram | None = None
        #: worker tree cache stats from the last run (process backend only)
        self.last_cache_stats: dict[str, Any] | None = None
        #: pipeline-phase span id captured at submission (trace context
        #: stamped into every exec.task event)
        self._phase_span: int | None = None

    # -- public API ---------------------------------------------------------
    def run(
        self,
        tree: Tree,
        traverser: str | Traverser,
        visitor: Any,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
        *,
        decomposition=None,
        shared_cache=None,
    ) -> TraversalStats:
        """Traverse ``targets`` with ``visitor``, in parallel when possible.

        ``decomposition`` steers the chunking (one chunk per Partition);
        ``shared_cache`` (thread backend only) is a
        :class:`~repro.cache.concurrent.SharedTreeCache` the worker threads
        warm concurrently, exercising its wait-free fill path.
        """
        engine = get_traverser(traverser) if isinstance(traverser, str) else traverser
        targets = Traverser._resolve_targets(tree, targets)
        chunks = self._chunk(tree, targets, decomposition)
        self.last_supervision = None
        self._last_degraded = False
        if not self.parallel or self.workers <= 1 or len(chunks) <= 1:
            return self._serial(engine, tree, visitor, targets, recorder, mode="serial")
        forks = None
        if recorder is not None:
            forks = [recorder.fork() for _ in chunks]
            if any(f is None for f in forks):
                return self._serial(engine, tree, visitor, targets, recorder,
                                    mode="serial-fallback")
        if not self._supports(visitor):
            return self._serial(engine, tree, visitor, targets, recorder,
                                mode="serial-fallback")
        # Trace context: remember which pipeline-phase span owns this run so
        # the worker task spans recorded after the fact can name their parent.
        tel = get_telemetry()
        self._phase_span = tel.tracer.current_span_id() if tel.enabled else None
        stats = self._run_chunks(engine, tree, visitor, chunks, forks,
                                 shared_cache=shared_cache)
        if forks is not None:
            for fork in forks:
                recorder.absorb(fork)
        # "degraded" = the run completed but supervision had to intervene
        # (retry / redispatch / worker death / quarantine); surfaced through
        # IterationReport and `repro top` so operators see it.
        self.last_mode = "degraded" if self._last_degraded else "parallel"
        self._record_run(len(chunks), len(targets))
        return stats

    def shutdown(self) -> None:
        """Release pools and shared resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- subclass hooks -----------------------------------------------------
    def _supports(self, visitor: Any) -> bool:
        """Can this backend run ``visitor`` concurrently?"""
        return True

    def _run_chunks(
        self,
        engine: Traverser,
        tree: Tree,
        visitor: Any,
        chunks: list[np.ndarray],
        forks: list[Recorder] | None,
        shared_cache=None,
    ) -> TraversalStats:
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------
    def _make_supervisor(self):
        """The (persistent) :class:`~repro.exec.supervise.ChunkSupervisor`
        for this backend, or None when supervision is off.  Persisting it
        across runs lets the latency-seeded deadline tighten as chunk
        durations accumulate."""
        cfg = self.supervise_config
        if cfg is None or not cfg.enabled:
            return None
        if self._supervisor is None or self._supervisor.config is not cfg:
            from .supervise import ChunkSupervisor

            self._supervisor = ChunkSupervisor(
                cfg, self.name, cancel_abandoned=self.supervisor_cancels
            )
        return self._supervisor

    def _finish_supervised(self, sup_stats) -> None:
        """Publish one supervised run's outcome (called by subclasses)."""
        self.last_supervision = sup_stats.to_dict()
        self._last_degraded = sup_stats.degraded

    def _chunk(self, tree: Tree, targets: np.ndarray, decomposition) -> list[np.ndarray]:
        from .chunking import chunk_targets

        return chunk_targets(tree, targets, decomposition=decomposition,
                             n_chunks=4 * self.workers)

    def _serial(self, engine, tree, visitor, targets, recorder, mode: str) -> TraversalStats:
        self.last_mode = mode
        tel = get_telemetry()
        if tel.enabled and mode == "serial-fallback":
            tel.metrics.counter("exec.serial_fallbacks", backend=self.name).inc()
        return engine.traverse(tree, visitor, targets, recorder)

    def _record_run(self, n_chunks: int, n_targets: int) -> None:
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.metrics.counter("exec.traversals", backend=self.name).inc()
        tel.metrics.counter("exec.chunks", backend=self.name).inc(n_chunks)
        tel.metrics.gauge("exec.workers", backend=self.name).set(self.workers)
        tel.metrics.gauge("exec.targets", backend=self.name).set(n_targets)

    def _record_tasks(self, tasks: list[dict[str, Any]]) -> None:
        """Emit one completed span per chunk task and reduce worker-side
        latency histograms.

        Workers time themselves and the main thread records afterwards —
        the Tracer's nesting stack is not thread-safe, so worker threads
        and processes never touch it directly.  Each task may carry a
        ``latency`` histogram fork recorded on the worker's own clock; they
        are merged here in chunk order (never completion order), so the
        reduced distribution is identical for any worker count.
        """
        self.last_tasks = tasks
        tel = get_telemetry()
        if not tel.enabled:
            return
        phase_span = self._phase_span
        flight = tel.flight
        merged = Log2Histogram()
        for t in tasks:
            extra: dict[str, Any] = {}
            if phase_span is not None:
                extra["phase_span"] = phase_span
            if "clock_offset" in t:
                extra["clock_offset"] = t["clock_offset"]
            tel.tracer.complete(
                "exec.task", t["start"], t["end"], cat="exec",
                tid=int(t.get("lane", 0)),
                backend=self.name, chunk=int(t["chunk"]),
                targets=int(t["targets"]), worker=str(t.get("worker", "")),
                **extra,
            )
            flight.record(
                "exec.chunk", backend=self.name, chunk=int(t["chunk"]),
                dur=t["end"] - t["start"], worker=str(t.get("worker", "")),
            )
            fork = t.get("latency")
            if fork is not None:
                merged.merge(fork)
        if merged.count:
            tel.metrics.latency("exec.task.latency", backend=self.name).merge(merged)
        self.last_latency = merged if merged.count else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """The seed path: one chunk, calling thread, no pools.

    Kept as a first-class backend so ``--backend serial`` is an explicit,
    comparable configuration rather than the absence of one — the
    differential harness uses it as the oracle.
    """

    name = "serial"
    parallel = False

    def __init__(self, workers: int | None = None, supervise=None,
                 exec_faults=None) -> None:
        # serial runs in-parent: nothing to supervise, nothing to inject
        super().__init__(workers=1, supervise=False, exec_faults=None)

    def shutdown(self) -> None:
        pass


_BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(name: str, cls: type[ExecutionBackend]) -> None:
    """Register an execution backend class under ``name``."""
    _BACKENDS[name] = cls


def get_backend(name: str, workers: int | None = None, **opts: Any) -> ExecutionBackend:
    """Instantiate a registered backend (``serial`` | ``threads`` | ``processes``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None
    return cls(workers=workers, **opts)


def BACKEND_NAMES() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


register_backend(SerialBackend.name, SerialBackend)
