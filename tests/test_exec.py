"""Unit tests for ``repro.exec``: chunking, the shared-memory arena,
backend registry/fallback semantics, ``exec.*`` telemetry, and the
SharedTreeCache thread-backend contention stress test (with fault
injection)."""

import numpy as np
import pytest

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.cache.concurrent import SharedTreeCache
from repro.core.traverser import Recorder, get_traverser
from repro.core.visitor import Visitor
from repro.decomp import SfcDecomposer, decompose
from repro.exec import (
    BACKEND_NAMES,
    ShmArena,
    attach_arena,
    chunk_targets,
    get_backend,
)
from repro.exec.threads import ThreadBackend, warm_shared_cache
from repro.faults import parse_fault_spec
from repro.obs import Telemetry, use_telemetry
from repro.particles.generators import clustered_clumps, uniform_cube
from repro.trees import build_tree

from tests.harness.differential import CountInRadiusVisitor


@pytest.fixture(scope="module")
def tree():
    return build_tree(uniform_cube(600, seed=21), tree_type="oct", bucket_size=12)


def _gravity_visitor(tree):
    return GravityVisitor(tree, compute_centroid_arrays(tree, theta=0.6),
                          softening=1e-3)


class TestChunking:
    def test_empty_targets(self, tree):
        assert chunk_targets(tree, np.array([], dtype=np.int64), n_chunks=4) == []

    def test_exact_cover_without_decomposition(self, tree):
        targets = get_traverser("transposed")._resolve_targets(tree, None)
        chunks = chunk_targets(tree, targets, n_chunks=7)
        assert 1 <= len(chunks) <= 7
        assert all(len(c) > 0 for c in chunks)
        # exact, order-preserving cover
        assert np.array_equal(np.concatenate(chunks), targets)

    def test_more_chunks_than_targets(self, tree):
        targets = get_traverser("transposed")._resolve_targets(tree, None)[:3]
        chunks = chunk_targets(tree, targets, n_chunks=64)
        assert len(chunks) == 3
        assert all(len(c) == 1 for c in chunks)

    def test_decomposition_partition_order(self, tree):
        pp = SfcDecomposer().assign(tree.particles, 5)
        decomp = decompose(tree, pp, n_subtrees=4)
        targets = get_traverser("transposed")._resolve_targets(tree, None)
        chunks = chunk_targets(tree, targets, decomposition=decomp)
        # exact cover (as a set: partition grouping reorders buckets)
        got = np.sort(np.concatenate(chunks))
        assert np.array_equal(got, np.sort(targets))
        assert len(chunks) <= 5
        # every bucket sits in its owner's chunk, and chunk owners ascend
        owners = []
        for chunk in chunks:
            first = tree.pstart[chunk]
            chunk_owner = decomp.particle_partition[first]
            assert len(np.unique(chunk_owner)) == 1
            owners.append(int(chunk_owner[0]))
        assert owners == sorted(owners)

    def test_single_partition_falls_back_to_even_split(self, tree):
        pp = np.zeros(tree.n_particles, dtype=np.int64)
        decomp = decompose(tree, pp, n_subtrees=2)
        targets = get_traverser("transposed")._resolve_targets(tree, None)
        chunks = chunk_targets(tree, targets, decomposition=decomp, n_chunks=6)
        assert len(chunks) == 6
        assert np.array_equal(np.concatenate(chunks), targets)


class TestShmArena:
    def test_round_trip(self):
        arrays = {
            "a": np.arange(101, dtype=np.float64),
            "b": np.arange(12, dtype=np.int32).reshape(3, 4),
            "c": np.array([True, False, True]),
        }
        with ShmArena(arrays) as arena:
            attached = attach_arena(arena.handle)
            try:
                assert set(attached.arrays) == set(arrays)
                for k, v in arrays.items():
                    got = attached.arrays[k]
                    assert got.dtype == v.dtype and got.shape == v.shape
                    assert np.array_equal(got, v)
            finally:
                attached.close()

    def test_views_are_read_only(self):
        with ShmArena({"x": np.zeros(8)}) as arena:
            attached = attach_arena(arena.handle)
            try:
                with pytest.raises(ValueError):
                    attached.arrays["x"][0] = 1.0
            finally:
                attached.close()

    def test_offsets_are_aligned(self):
        arrays = {"a": np.zeros(3, dtype=np.int8), "b": np.zeros(5),
                  "c": np.zeros((2, 3), dtype=np.float32)}
        with ShmArena(arrays) as arena:
            _, specs = arena.handle
            assert all(off % 64 == 0 for off, _, _ in specs.values())

    def test_dispose_is_idempotent(self):
        arena = ShmArena({"x": np.ones(4)})
        arena.dispose()
        arena.dispose()

    def test_noncontiguous_input(self):
        base = np.arange(20, dtype=np.float64).reshape(4, 5)
        view = base[:, ::2]  # not C-contiguous
        with ShmArena({"v": view}) as arena:
            attached = attach_arena(arena.handle)
            try:
                assert np.array_equal(attached.arrays["v"], view)
            finally:
                attached.close()


class TestRegistry:
    def test_names(self):
        assert {"serial", "threads", "processes"} <= set(BACKEND_NAMES())

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("gpu")

    def test_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            get_backend("threads", workers=-2)

    def test_serial_forces_one_worker(self):
        assert get_backend("serial", workers=8).workers == 1


class _PlainVisitor(Visitor):
    """No exec protocol, not shareable: backends must fall back."""

    def open(self, source, target) -> bool:
        return False

    def node(self, source, target) -> None:
        pass

    def leaf(self, source, target) -> None:
        pass


class TestFallbackModes:
    def test_serial_backend_mode(self, tree):
        b = get_backend("serial")
        b.run(tree, "transposed", _PlainVisitor())
        assert b.last_mode == "serial"

    def test_one_worker_is_serial(self, tree):
        with get_backend("threads", workers=1) as b:
            b.run(tree, "transposed", _gravity_visitor(tree))
            assert b.last_mode == "serial"

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_unsupported_visitor_falls_back(self, tree, backend):
        serial = _gravity_visitor(tree)
        get_backend("serial").run(tree, "transposed", serial)
        with get_backend(backend, workers=2) as b:
            vis = _PlainVisitor()
            b.run(tree, "transposed", vis)
            assert b.last_mode == "serial-fallback"

    def test_unsplittable_recorder_falls_back(self, tree):
        with get_backend("threads", workers=2) as b:
            b.run(tree, "transposed", _gravity_visitor(tree), recorder=Recorder())
            assert b.last_mode == "serial-fallback"

    def test_thread_backend_not_shareable_uses_rebuild(self, tree):
        """A protocol-only visitor (exec_shareable=False) still parallelises
        on threads, via per-chunk rebuild + chunk-ordered exec_apply."""

        class NotShared(CountInRadiusVisitor):
            exec_shareable = False

        serial = CountInRadiusVisitor(tree, 0.2)
        get_backend("serial").run(tree, "transposed", serial)
        with get_backend("threads", workers=3) as b:
            vis = NotShared(tree, 0.2)
            b.run(tree, "transposed", vis)
            assert b.last_mode == "parallel"
        assert np.array_equal(vis.counts, serial.counts)


class TestExecTelemetry:
    def test_parallel_run_emits_metrics_and_spans(self, tree):
        tel = Telemetry()
        with use_telemetry(tel), get_backend("threads", workers=2) as b:
            b.run(tree, "transposed", _gravity_visitor(tree))
            assert b.last_mode == "parallel"
        metrics = {m["name"]: m for m in tel.metrics.collect()}
        assert metrics["exec.traversals"]["value"] == 1
        assert metrics["exec.chunks"]["value"] >= 2
        assert metrics["exec.workers"]["value"] == 2
        assert metrics["exec.targets"]["value"] > 0
        spans = tel.tracer.find("exec.task")
        assert len(spans) == int(metrics["exec.chunks"]["value"])
        # spans carry chunk/targets attribution for the trace viewer
        assert all(s["args"]["targets"] > 0 for s in spans)
        assert {s["args"]["chunk"] for s in spans} == set(range(len(spans)))

    def test_fallback_increments_counter(self, tree):
        tel = Telemetry()
        with use_telemetry(tel), get_backend("threads", workers=2) as b:
            b.run(tree, "transposed", _PlainVisitor())
        metrics = {m["name"]: m for m in tel.metrics.collect()}
        assert metrics["exec.serial_fallbacks"]["value"] == 1


class TestProcessBackendReuse:
    def test_pool_and_worker_tree_cache_survive_runs(self, tree):
        serial = _gravity_visitor(tree)
        get_backend("serial").run(tree, "transposed", serial)
        with get_backend("processes", workers=2) as b:
            for _ in range(3):
                vis = _gravity_visitor(tree)
                b.run(tree, "transposed", vis)
                assert b.last_mode == "parallel"
                assert np.array_equal(vis.accel, serial.accel)


def _cache_nonplaceholder_nodes(cache) -> list[int]:
    out = []
    stack = [cache.root]
    while stack:
        e = stack.pop()
        if e.is_placeholder:
            continue
        out.append(e.node_index)
        stack.extend(e.children)
    return out


class TestThreadCacheStress:
    """Satellite: the wait-free SharedTreeCache under *real* thread
    contention from the thread backend, with injected transient fill
    failures.  Invariants: no lost waiters (parked == resumed at
    quiescence), no double fills (each tree node materialised at most
    once), structural validity, and physics bit-identical to serial."""

    def _make(self, n=1500, parts=8, fail=0.0, seed=0):
        ps = clustered_clumps(n, seed=17)
        tree = build_tree(ps, tree_type="oct", bucket_size=12)
        decomp = decompose(tree, SfcDecomposer().assign(ps, parts),
                           n_subtrees=parts)
        injector = parse_fault_spec(f"fail={fail},seed={seed}") if fail else None
        cache = SharedTreeCache(
            tree, decomp.node_process(), process=0,
            nodes_per_request=2, shared_branch_levels=2, injector=injector,
        )
        return tree, cache

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_contended_warming_with_faults(self, seed):
        tree, cache = self._make(fail=0.3, seed=seed)
        serial = _gravity_visitor(tree)
        get_traverser("transposed").traverse(tree, serial, None)
        backend = ThreadBackend(workers=4, cache_warm_fills=24)
        try:
            for _ in range(3):  # repeated runs keep draining placeholders
                vis = _gravity_visitor(tree)
                backend.run(tree, "transposed", vis, shared_cache=cache)
                assert backend.last_mode == "parallel"
                assert np.array_equal(vis.accel, serial.accel)
                issued, invoked = backend.last_cache_warm
                # a waiter parked by one worker may be resumed by another
                # *after* that worker's warm loop returned its counts, so
                # within a run invoked can only lag issued — never exceed it
                assert invoked <= issued
        finally:
            backend.shutdown()
        cache.validate()
        # injected failures actually happened and were survived
        assert cache.fills_failed > 0
        assert cache.fills_applied > 0
        # no lost waiters across the whole session
        assert cache.waiters_parked == cache.waiters_resumed
        # no double fills: every materialised node appears exactly once
        nodes = _cache_nonplaceholder_nodes(cache)
        assert len(nodes) == len(set(nodes))

    def test_fault_free_warming_completes(self):
        tree, cache = self._make(fail=0.0)
        backend = ThreadBackend(workers=4, cache_warm_fills=64)
        try:
            for _ in range(6):
                vis = _gravity_visitor(tree)
                backend.run(tree, "transposed", vis, shared_cache=cache)
                if warm_shared_cache(cache, 1)[0] == 0:
                    break  # fully warmed
        finally:
            backend.shutdown()
        cache.validate()
        assert cache.waiters_parked == cache.waiters_resumed
        assert cache.fills_failed == 0
        nodes = _cache_nonplaceholder_nodes(cache)
        assert len(nodes) == len(set(nodes))

    @pytest.mark.slow
    def test_many_seeds_heavy_contention(self):
        for seed in range(4, 12):
            tree, cache = self._make(n=2000, parts=12, fail=0.4, seed=seed)
            serial = _gravity_visitor(tree)
            get_traverser("transposed").traverse(tree, serial, None)
            backend = ThreadBackend(workers=6, cache_warm_fills=40)
            try:
                vis = _gravity_visitor(tree)
                backend.run(tree, "transposed", vis, shared_cache=cache)
                assert np.array_equal(vis.accel, serial.accel)
            finally:
                backend.shutdown()
            cache.validate()
            assert cache.waiters_parked == cache.waiters_resumed
            nodes = _cache_nonplaceholder_nodes(cache)
            assert len(nodes) == len(set(nodes))
