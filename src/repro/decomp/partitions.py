"""The Partitions–Subtrees model (paper §II-C).

"The crucial insight of the Partitions-Subtrees model is that at the
boundaries of decomposed Partitions, only buckets need be split up, and not
tree segments.  We assign the division of particle buckets (i.e., load) to
the Partitions, and the division of the tree (i.e., memory) to the
Subtrees."

Given a built tree and a per-particle partition assignment (from any
:class:`~repro.decomp.splitters.Decomposer`), :func:`decompose` constructs:

* :class:`Subtree` objects — disjoint tree segments covering all leaves,
  each rooted at a tree node, chosen consistently with the tree structure
  (contiguous tree-order particle ranges);
* :class:`Partition` objects — per-partition *local buckets*: whole leaves
  where possible, split leaves at partition borders (Fig 5);
* the leaf-sharing statistics — how many buckets had to be split and how
  many particles cross process boundaries (the paper reports this step
  costs only 0.1–0.4 % of iteration time precisely because the counts are
  small);
* process placement for both Partitions and Subtrees, with the paper's
  optimisation of binding them by location when the splitters coincide.

:func:`branch_duplication_count` measures what the *traditional* model would
pay: the number of tree nodes whose descendants span multiple partitions and
therefore would need cross-process merging during tree build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import traced
from ..trees import Tree

__all__ = [
    "Partition",
    "Subtree",
    "Decomposition",
    "decompose",
    "branch_duplication_count",
]


@dataclass
class LocalBucket:
    """One partition-local bucket: a leaf (or a split piece of one).

    ``particle_idx`` are tree-order particle indices; for unsplit buckets it
    is the leaf's full range.
    """

    leaf: int
    particle_idx: np.ndarray
    is_split: bool


@dataclass
class Partition:
    """A unit of traversal load: a set of local buckets."""

    index: int
    buckets: list[LocalBucket] = field(default_factory=list)
    process: int = 0

    @property
    def n_particles(self) -> int:
        return sum(len(b.particle_idx) for b in self.buckets)

    @property
    def leaf_ids(self) -> np.ndarray:
        return np.array(sorted({b.leaf for b in self.buckets}), dtype=np.int64)

    def particle_indices(self) -> np.ndarray:
        if not self.buckets:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([b.particle_idx for b in self.buckets])


@dataclass
class Subtree:
    """A unit of tree memory: the subtree rooted at ``root`` (a tree node).

    Owns the contiguous tree-order particle range of its root.
    """

    index: int
    root: int
    pstart: int
    pend: int
    process: int = 0

    @property
    def n_particles(self) -> int:
        return self.pend - self.pstart


@dataclass
class Decomposition:
    """Everything the runtime needs to place work and memory."""

    tree: Tree
    partitions: list[Partition]
    subtrees: list[Subtree]
    #: per-particle (tree order) partition id
    particle_partition: np.ndarray
    #: per-node subtree id (which Subtree's segment the node belongs to;
    #: nodes above all subtree roots get -1: they are the shared branch).
    node_subtree: np.ndarray
    n_processes: int
    #: leaf-sharing statistics
    n_split_buckets: int
    n_shared_particles: int
    #: True when partition and subtree splitters coincided and the library
    #: bound them by location (no bucket ever split).
    colocated: bool

    def partition_loads(self, per_particle_load: np.ndarray | None = None) -> np.ndarray:
        """Summed load per partition (defaults to particle counts)."""
        n = self.tree.n_particles
        load = np.ones(n) if per_particle_load is None else np.asarray(per_particle_load)
        out = np.zeros(len(self.partitions))
        np.add.at(out, self.particle_partition, load)
        return out

    def node_process(self) -> np.ndarray:
        """Home process of every tree node (-1 for the replicated branch)."""
        out = np.full(self.tree.n_nodes, -1, dtype=np.int64)
        for st in self.subtrees:
            nodes = self.tree.subtree_nodes(st.root)
            out[nodes] = st.process
        return out

    def leaf_partition(self) -> np.ndarray:
        """Majority-owner partition per leaf node (split buckets are rare,
        §II-C-1; ties break toward the smallest partition id).

        One ``np.bincount`` over a combined (leaf, partition) key — no
        per-leaf Python loop.  The cache-statistics and attribution layers
        use this to charge each bucket's remote traffic to a partition.
        """
        tree = self.tree
        out = np.zeros(tree.n_nodes, dtype=np.int64)
        pp = np.asarray(self.particle_partition, dtype=np.int64)
        leaves = tree.leaf_indices
        if len(leaves) == 0:
            return out
        starts = tree.pstart[leaves].astype(np.int64)
        ends = tree.pend[leaves].astype(np.int64)
        lengths = ends - starts
        # Particle positions of every leaf, concatenated, with the owning
        # leaf's rank alongside.
        idx = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths) \
            + np.arange(int(lengths.sum()), dtype=np.int64)
        leaf_rank = np.repeat(np.arange(len(leaves), dtype=np.int64), lengths)
        n_parts = int(pp.max()) + 1 if pp.size else 1
        counts = np.bincount(
            leaf_rank * n_parts + pp[idx], minlength=len(leaves) * n_parts
        ).reshape(len(leaves), n_parts)
        out[leaves] = np.argmax(counts, axis=1)
        return out


def _choose_subtree_roots(tree: Tree, n_subtrees: int) -> list[int]:
    """Cut the tree into at least ``n_subtrees`` disjoint subtrees by
    splitting the largest frontier node until there are enough, preferring
    balanced particle counts."""
    frontier: list[int] = [tree.root]
    while len(frontier) < n_subtrees:
        # Split the frontier node with the most particles that has children.
        counts = [
            (int(tree.pend[i] - tree.pstart[i]), i)
            for i in frontier
            if tree.first_child[i] != -1
        ]
        if not counts:
            break
        _, node = max(counts)
        frontier.remove(node)
        frontier.extend(int(c) for c in tree.children(node))
    # Order by tree-order particle range so subtree blocks are contiguous.
    frontier.sort(key=lambda i: int(tree.pstart[i]))
    return frontier


@traced("decompose", cat="decomp")
def decompose(
    tree: Tree,
    particle_partition: np.ndarray,
    n_subtrees: int,
    n_processes: int | None = None,
) -> Decomposition:
    """Build the Partitions–Subtrees decomposition for a built tree.

    Parameters
    ----------
    tree:
        Built tree; its particles are in tree order.
    particle_partition:
        (N,) partition id per particle *in tree order* (i.e. the Decomposer
        output permuted by the same order as the tree's particles — use
        ``part_ids[tree.particles.orig_index]`` when assignment was done on
        the input ordering).
    n_subtrees:
        How many tree segments to create.
    n_processes:
        Processes to place partitions/subtrees on; defaults to the number of
        partitions.
    """
    particle_partition = np.asarray(particle_partition, dtype=np.int64)
    if len(particle_partition) != tree.n_particles:
        raise ValueError("particle_partition length must match particle count")
    n_parts = int(particle_partition.max()) + 1 if len(particle_partition) else 1
    n_processes = n_processes or n_parts

    # --- Subtrees: consistent with the tree ------------------------------
    roots = _choose_subtree_roots(tree, n_subtrees)
    subtrees = [
        Subtree(
            index=k,
            root=r,
            pstart=int(tree.pstart[r]),
            pend=int(tree.pend[r]),
            process=k % n_processes,
        )
        for k, r in enumerate(roots)
    ]
    node_subtree = np.full(tree.n_nodes, -1, dtype=np.int64)
    for st in subtrees:
        node_subtree[tree.subtree_nodes(st.root)] = st.index

    # --- Partitions: local buckets via leaf sharing (Figs 4-5) -----------
    partitions = [Partition(index=p, process=p % n_processes) for p in range(n_parts)]
    n_split = 0
    n_shared = 0
    leaves = tree.leaf_indices
    # Subtree id per leaf tells us the bucket's home; a bucket is "shared"
    # when some of its particles belong to partitions on other processes.
    for leaf in leaves:
        s, e = int(tree.pstart[leaf]), int(tree.pend[leaf])
        owners = particle_partition[s:e]
        uniq = np.unique(owners)
        if len(uniq) == 1:
            partitions[int(uniq[0])].buckets.append(
                LocalBucket(leaf=int(leaf), particle_idx=np.arange(s, e), is_split=False)
            )
            continue
        n_split += 1
        home_subtree = node_subtree[leaf]
        home_proc = subtrees[home_subtree].process if home_subtree >= 0 else 0
        for p in uniq:
            idx = np.arange(s, e)[owners == p]
            partitions[int(p)].buckets.append(
                LocalBucket(leaf=int(leaf), particle_idx=idx, is_split=True)
            )
            if partitions[int(p)].process != home_proc:
                n_shared += len(idx)

    # --- co-location optimisation ----------------------------------------
    # When every leaf's particles map to a single partition AND subtree
    # boundaries align with partition boundaries, the library binds the two
    # by location; we detect the first condition (never-split buckets).
    colocated = n_split == 0

    return Decomposition(
        tree=tree,
        partitions=partitions,
        subtrees=subtrees,
        particle_partition=particle_partition,
        node_subtree=node_subtree,
        n_processes=n_processes,
        n_split_buckets=n_split,
        n_shared_particles=n_shared,
        colocated=colocated,
    )


def branch_duplication_count(tree: Tree, particle_partition: np.ndarray) -> int:
    """Tree nodes whose particles span more than one partition.

    In the *traditional* model (no Partitions–Subtrees), each such branch
    node is duplicated on every involved process and must be merged during
    tree build — the synchronisation the paper's model eliminates.  Counting
    them quantifies the saving (ablation bench).
    """
    particle_partition = np.asarray(particle_partition)
    # A node spans multiple partitions iff its contiguous range contains a
    # partition change-point.
    change = np.flatnonzero(np.diff(particle_partition)) + 1  # boundary positions
    if len(change) == 0:
        return 0
    # Node i spans >1 partition iff some adjacent change position c
    # (meaning p[c-1] != p[c]) has both sides inside the node's range:
    # pstart + 1 <= c <= pend - 1.
    lo = np.searchsorted(change, tree.pstart + 1, side="left")
    hi = np.searchsorted(change, tree.pend - 1, side="right")
    return int(np.count_nonzero(hi > lo))
