"""Cache-design policy descriptions (paper §II-B-2, Fig 3).

Each model answers three questions the DES needs:

1. **dedupe scope** — is one fetch of a tree segment shared by the whole
   process ("process") or does every worker thread fetch its own copy
   ("thread", the ChaNGa per-thread cache whose duplicated requests the
   paper calls out in §III-A)?
2. **dedupe time** — is a duplicate request suppressed the moment the first
   request is *issued* (the placeholder's atomic requested flag: "request")
   or only once the fill has been *inserted* ("insert")?  The single-writer
   model dedupes at insert time: while fills wait in the writer thread's
   queue, other threads that miss keep requesting — this is why the paper
   says the sequential approach "requires more communication volume".
3. **insert policy** — who performs fills: any worker in parallel
   ("parallel", the wait-free tree swap), workers serialized by a mutex
   ("locked", exclusive-write), or one designated thread
   ("single_thread").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CacheModel",
    "RetryPolicy",
    "WAITFREE",
    "XWRITE",
    "SEQUENTIAL",
    "PER_THREAD",
    "SINGLE_WRITER",
    "CACHE_MODELS",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential-backoff semantics for cache fetch requests.

    When fault injection is armed, every outstanding request carries a
    cancellable timeout timer.  The first timeout fires after
    ``timeout_factor`` × the request's fault-free round-trip estimate
    (latency out + serialize + send + latency back + insert), and each
    retry multiplies the window by ``backoff``.  After ``max_attempts``
    sends the runtime stops retrying and raises a structured
    :class:`~repro.faults.IterationFailure` instead of hanging.  The
    generous default factor keeps spurious timeouts out of fault-free
    queueing delays while still bounding recovery latency.
    """

    max_attempts: int = 6
    timeout_factor: float = 25.0
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_factor <= 0:
            raise ValueError(f"timeout_factor must be > 0, got {self.timeout_factor}")
        if self.backoff < 1:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def timeout_for(self, attempt: int, rtt_estimate: float) -> float:
        """Timeout window for the given 0-based attempt number."""
        return rtt_estimate * self.timeout_factor * self.backoff ** attempt


@dataclass(frozen=True)
class CacheModel:
    name: str
    dedupe_scope: str  # "process" | "thread"
    dedupe_time: str   # "request" | "insert"
    insert_policy: str  # "parallel" | "locked" | "single_thread"

    def __post_init__(self) -> None:
        if self.dedupe_scope not in ("process", "thread"):
            raise ValueError(f"bad dedupe_scope {self.dedupe_scope!r}")
        if self.dedupe_time not in ("request", "insert"):
            raise ValueError(f"bad dedupe_time {self.dedupe_time!r}")
        if self.insert_policy not in ("parallel", "locked", "single_thread"):
            raise ValueError(f"bad insert_policy {self.insert_policy!r}")


#: ParaTreeT's wait-free shared-memory cache: one fetch per process, atomic
#: requested flag, fills performed in parallel by the least busy worker.
WAITFREE = CacheModel("WaitFree", "process", "request", "parallel")

#: Exclusive-write shared cache: like WaitFree but every insertion takes a
#: process-wide lock.
XWRITE = CacheModel("XWrite", "process", "request", "locked")

#: Fig 3's "Sequential": the per-thread software cache, maintained
#: single-threadedly by its owning worker (§II-B-2 "comparing against a
#: per-thread software cache and an exclusive-write shared-memory cache").
#: No cross-thread sharing, so each worker fetches its own copy — "more
#: communication volume and memory footprint than the two shared-memory
#: approaches" — but insertions never contend, so the extra traffic hides
#: behind compute until the critical path goes communication-bound.
SEQUENTIAL = CacheModel("Sequential", "thread", "request", "parallel")

#: ChaNGa's cache organisation (same mechanics as Sequential; separate name
#: because Fig 10 uses it as part of the ChaNGa baseline: §III-A "ChaNGa
#: often makes the same remote fetch for multiple worker threads within the
#: same process").
PER_THREAD = CacheModel("PerThread", "thread", "request", "parallel")

#: Ablation: a process-shared cache whose fills all funnel through one
#: designated writer thread ("assigning all cache inserts to a single
#: thread, which is simpler than designing thread-safe cache insertions").
SINGLE_WRITER = CacheModel("SingleWriter", "process", "request", "single_thread")

CACHE_MODELS: dict[str, CacheModel] = {
    m.name: m for m in (WAITFREE, XWRITE, SEQUENTIAL, PER_THREAD, SINGLE_WRITER)
}
