"""Benchmark-suite configuration.

The heavy artefacts (instrumented traversals → DES workloads) are memoised
inside :mod:`repro.bench.workloads`, so fixtures here are thin wrappers.
Every bench prints the regenerated table/figure; run with ``-s`` to see
them, e.g.::

    pytest benchmarks/ --benchmark-only -s

Each ``bench_*.py`` additionally registers its headline workload with the
machine-readable harness in :mod:`repro.perf` via ``@benchmark("<id>", ...)``
— a setup function taking ``quick=False`` that returns the zero-arg timed
callable (no work happens at import time).  Those run through the CLI::

    repro bench list
    repro bench run --quick 'des.*'
"""

import pytest

from repro.bench import build_gravity_workload


@pytest.fixture(scope="session")
def clustered_workload():
    """The Fig 3 / Fig 9 workload: clustered particles, SFC + octree.

    1024 partitions/subtrees give the fine decomposition granularity the
    Fig 3 cache-contention study needs (the paper runs up to 1024
    24-core processes)."""
    return build_gravity_workload(
        distribution="clustered", n=25_000, n_partitions=1024, n_subtrees=1024
    )


@pytest.fixture(scope="session")
def uniform_workload():
    """The Fig 10 workload: uniform volume, SFC + octree."""
    return build_gravity_workload(distribution="uniform", n=25_000, seed=11)
