"""Fixed-radius ball searches (neighbour gathering within r).

Used by the Gadget-2-style SPH baseline (repeated fixed-ball searches while
converging each particle's smoothing length, §III-B) and by collision
detection (§IV).
"""

from __future__ import annotations

import numpy as np

from ...core import TraversalStats, get_traverser
from ...core.util import ranges_to_indices
from ...core.visitor import Visitor
from ...geometry import point_box_distance_sq
from ...trees import SpatialNode, Tree

__all__ = ["BallSearchVisitor", "ball_search", "brute_force_ball"]


class BallSearchVisitor(Visitor):
    """Collects, for every target particle, all particles within its radius.

    ``radii`` is per *particle* (tree order); the bucket-level prune uses
    the bucket's largest radius.  Results land in ``neighbors``: a list per
    particle of neighbour index arrays (concatenate to use).
    """

    def __init__(self, tree: Tree, radii: np.ndarray, include_self: bool = False) -> None:
        radii = np.asarray(radii, dtype=np.float64)
        if radii.shape != (tree.n_particles,):
            raise ValueError("radii must be one per particle (tree order)")
        if np.any(radii < 0):
            raise ValueError("radii must be >= 0")
        self.tree = tree
        self.radii = radii
        self.include_self = include_self
        self.neighbors: list[list[np.ndarray]] = [[] for _ in range(tree.n_particles)]

    def open(self, source: SpatialNode, target: SpatialNode) -> bool:
        mask = self.open_sources(
            self.tree, np.array([source.index]), target.index
        )
        return bool(mask[0])

    def open_sources(self, tree: Tree, sources: np.ndarray, target: int) -> np.ndarray:
        s, e = int(tree.pstart[target]), int(tree.pend[target])
        pos = tree.particles.position[s:e]
        r = self.radii[s:e]
        # Open if any target particle's ball can reach the source box.
        out = np.zeros(len(sources), dtype=bool)
        for j, src in enumerate(np.asarray(sources)):
            d2 = point_box_distance_sq(tree.box_lo[src], tree.box_hi[src], pos)
            out[j] = bool(np.any(d2 <= r * r))
        return out

    def node(self, source: SpatialNode, target: SpatialNode) -> None:
        pass

    def node_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        pass

    def leaf(self, source: SpatialNode, target: SpatialNode) -> None:
        self.leaf_sources(self.tree, np.array([source.index]), target.index)

    def leaf_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        ts, te = int(tree.pstart[target]), int(tree.pend[target])
        tgt_idx = np.arange(ts, te)
        cand = ranges_to_indices(tree.pstart[sources], tree.pend[sources])
        pos = tree.particles.position
        d = pos[cand][None, :, :] - pos[tgt_idx][:, None, :]
        d2 = np.einsum("tcj,tcj->tc", d, d)
        r2 = self.radii[ts:te] ** 2
        hits = d2 <= r2[:, None]
        if not self.include_self:
            hits &= tgt_idx[:, None] != cand[None, :]
        for row, i in enumerate(tgt_idx):
            found = cand[hits[row]]
            if len(found):
                self.neighbors[i].append(found)

    def neighbor_lists(self) -> list[np.ndarray]:
        return [
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            for parts in self.neighbors
        ]


def ball_search(
    tree: Tree,
    radii: np.ndarray | float,
    targets: np.ndarray | None = None,
    include_self: bool = False,
    traverser: str = "per-bucket",
) -> tuple[list[np.ndarray], TraversalStats]:
    """All neighbours within per-particle ``radii``; returns (lists, stats)."""
    if np.isscalar(radii):
        radii = np.full(tree.n_particles, float(radii))
    visitor = BallSearchVisitor(tree, radii, include_self=include_self)
    stats = get_traverser(traverser).traverse(tree, visitor, targets)
    return visitor.neighbor_lists(), stats


def brute_force_ball(
    positions: np.ndarray, radii: np.ndarray | float, include_self: bool = False
) -> list[np.ndarray]:
    """Reference O(N²) ball search."""
    positions = np.asarray(positions)
    n = len(positions)
    if np.isscalar(radii):
        radii = np.full(n, float(radii))
    d = positions[None, :, :] - positions[:, None, :]
    d2 = np.einsum("ijc,ijc->ij", d, d)
    out = []
    for i in range(n):
        hits = d2[i] <= radii[i] ** 2
        if not include_self:
            hits[i] = False
        out.append(np.flatnonzero(hits))
    return out
