"""Newtonian force kernels: the ``gravExact`` / ``gravApprox`` helpers of the
paper's Fig 7, fully vectorised.

All kernels use Plummer softening: ``a_i = G Σ_j m_j r_ij / (r² + ε²)^{3/2}``.
Self-pairs (r = 0) contribute zero, so a leaf can interact with itself.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_accel", "point_mass_accel", "quadrupole_accel", "pairwise_potential"]


def pairwise_accel(
    targets: np.ndarray,
    sources: np.ndarray,
    source_mass: np.ndarray,
    G: float = 1.0,
    softening: float = 0.0,
) -> np.ndarray:
    """Exact particle-particle accelerations: (nt, 3) from (ns,) sources.

    ``gravExact``: every target feels every source; zero-distance pairs
    (a particle interacting with itself) are masked out.
    """
    targets = np.atleast_2d(targets)
    sources = np.atleast_2d(sources)
    d = sources[None, :, :] - targets[:, None, :]  # (nt, ns, 3)
    r2 = np.einsum("tsj,tsj->ts", d, d)
    eps2 = softening * softening
    denom = (r2 + eps2) ** 1.5
    with np.errstate(divide="ignore", invalid="ignore"):
        w = np.where(r2 > 0.0, G * np.asarray(source_mass)[None, :] / denom, 0.0)
    return np.einsum("ts,tsj->tj", w, d)


def point_mass_accel(
    targets: np.ndarray,
    center: np.ndarray,
    mass: float,
    G: float = 1.0,
    softening: float = 0.0,
) -> np.ndarray:
    """Monopole ``gravApprox``: treat a whole node as one point mass."""
    targets = np.atleast_2d(targets)
    d = np.asarray(center)[None, :] - targets  # (nt, 3)
    r2 = np.einsum("tj,tj->t", d, d)
    eps2 = softening * softening
    denom = (r2 + eps2) ** 1.5
    with np.errstate(divide="ignore", invalid="ignore"):
        w = np.where(r2 > 0.0, G * mass / denom, 0.0)
    return w[:, None] * d


def quadrupole_accel(
    targets: np.ndarray,
    center: np.ndarray,
    mass: float,
    quad: np.ndarray,
    G: float = 1.0,
    softening: float = 0.0,
) -> np.ndarray:
    """Monopole + traceless-quadrupole node approximation.

    ``quad`` is the traceless quadrupole tensor about the node centroid:
    ``Q = Σ m (3 dd^T - |d|² I)``.  The acceleration is

    ``a = G [ m r / r³ + Q·r / r⁵ − 5/2 (rᵀQr) r / r⁷ ]``

    with Plummer softening folded into the radial powers.  This is the
    "higher order multipole expansion" option of the paper's gravity solver.
    """
    targets = np.atleast_2d(targets)
    d = np.asarray(center)[None, :] - targets  # vector from target to node
    r2 = np.einsum("tj,tj->t", d, d) + softening * softening
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r2 = np.where(r2 > 0.0, 1.0 / r2, 0.0)
    inv_r = np.sqrt(inv_r2)
    inv_r3 = inv_r2 * inv_r
    inv_r5 = inv_r3 * inv_r2
    inv_r7 = inv_r5 * inv_r2
    mono = (G * mass) * inv_r3[:, None] * d
    qd = d @ np.asarray(quad).T  # (nt, 3): Q·d (Q symmetric)
    dqd = np.einsum("tj,tj->t", d, qd)
    quad_term = G * (-(qd * inv_r5[:, None]) + 2.5 * (dqd * inv_r7)[:, None] * d)
    # Sign note: with d pointing target->node, the monopole term is
    # attractive as written; the quadrupole correction follows Dehnen (2002).
    return mono + quad_term


def pairwise_potential(
    targets: np.ndarray,
    sources: np.ndarray,
    source_mass: np.ndarray,
    G: float = 1.0,
    softening: float = 0.0,
) -> np.ndarray:
    """Exact potential at each target: ``φ_i = -G Σ_j m_j / sqrt(r² + ε²)``."""
    targets = np.atleast_2d(targets)
    sources = np.atleast_2d(sources)
    d = sources[None, :, :] - targets[:, None, :]
    r2 = np.einsum("tsj,tsj->ts", d, d)
    eps2 = softening * softening
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(r2 > 0.0, 1.0 / np.sqrt(r2 + eps2), 0.0)
    return -G * np.einsum("s,ts->t", np.asarray(source_mass, dtype=np.float64), inv)
