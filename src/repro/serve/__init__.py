"""Online traversal query service (ISSUE 9).

Long-lived serving layer over the resident tree: bounded admission with
token-bucket rate limiting and burn-rate load shedding, deadline-aware
micro-batching into bucket-shaped chunks, supervised execution behind a
circuit breaker, and graceful drain to a PR 4 checkpoint for
zero-downtime restart.  Validated against an open-loop traffic
generator and a DES model that shares the real policy objects.
"""

from .admission import (
    ADMITTED,
    AdmissionConfig,
    AdmissionController,
    BurnRateShedder,
    QueueEntry,
    ServeCounters,
    TokenBucket,
)
from .batcher import BatchPolicy, MicroBatcher
from .bench import BenchResult, accounting_delta, calibrate_capacity, run_trace
from .desmodel import ServeSimResult, ServiceModel, simulate_service
from .executor import BatchExecutor, CircuitBreaker
from .kernels import density_point, execute_queries, knn_point, range_point
from .protocol import (
    OPS,
    SERVE_SCHEMA,
    SHED_REASONS,
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_SHED,
    ProtocolError,
    Query,
    Response,
    decode_query_line,
    encode_line,
)
from .resident import ResidentState, build_resident_state, checkpoint_resident
from .server import InProcessClient, SocketServer, socket_query
from .service import QueryService, ServeConfig
from .traffic import TrafficShape, TrafficTrace, generate_traffic

__all__ = [
    "ADMITTED",
    "AdmissionConfig",
    "AdmissionController",
    "BatchExecutor",
    "BatchPolicy",
    "BenchResult",
    "BurnRateShedder",
    "CircuitBreaker",
    "InProcessClient",
    "MicroBatcher",
    "OPS",
    "ProtocolError",
    "Query",
    "QueryService",
    "QueueEntry",
    "Response",
    "ResidentState",
    "SERVE_SCHEMA",
    "SHED_REASONS",
    "STATUS_ERROR",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_SHED",
    "ServeConfig",
    "ServeCounters",
    "ServeSimResult",
    "ServiceModel",
    "SocketServer",
    "TokenBucket",
    "TrafficShape",
    "TrafficTrace",
    "accounting_delta",
    "build_resident_state",
    "calibrate_capacity",
    "checkpoint_resident",
    "decode_query_line",
    "density_point",
    "encode_line",
    "execute_queries",
    "generate_traffic",
    "knn_point",
    "range_point",
    "run_trace",
    "simulate_service",
    "socket_query",
]
