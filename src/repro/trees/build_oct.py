"""Octree builder over Morton-sorted particles.

The classic hashed-octree construction (Warren & Salmon 1993): particles are
sorted once by Morton key, after which every octree node corresponds to a key
*prefix* and therefore to a contiguous slice of the sorted particle array.
Splitting a node into its eight children is eight ``searchsorted`` calls —
no per-particle Python work.

Empty children are not materialised (standard for astrophysical octrees:
highly clustered data would otherwise blow up the node count).
"""

from __future__ import annotations

import numpy as np

from ..geometry import MORTON_BITS, morton_keys
from ..particles import ParticleSet
from .build import TreeBuildConfig
from .node import NO_NODE, Tree

__all__ = ["build_octree"]


def build_octree(particles: ParticleSet, config: TreeBuildConfig) -> Tree:
    """Build an octree; returns a :class:`Tree` with Morton-prefix node keys."""
    universe = particles.bounding_box().cubified()
    keys = morton_keys(particles.position, universe)
    order = np.argsort(keys, kind="stable")
    particles = particles.permuted(order)
    keys = keys[order]
    n = len(particles)
    max_level = min(config.max_depth, MORTON_BITS)

    # Growing node arrays (python lists of scalars; finalised to numpy).
    parent: list[int] = []
    first_child: list[int] = []
    n_children: list[int] = []
    pstart: list[int] = []
    pend: list[int] = []
    box_lo: list[np.ndarray] = []
    box_hi: list[np.ndarray] = []
    level_arr: list[int] = []
    node_key: list[int] = []

    def add_node(par: int, start: int, end: int, lo, hi, level: int, key: int) -> int:
        idx = len(parent)
        parent.append(par)
        first_child.append(NO_NODE)
        n_children.append(0)
        pstart.append(start)
        pend.append(end)
        box_lo.append(np.asarray(lo, dtype=np.float64))
        box_hi.append(np.asarray(hi, dtype=np.float64))
        level_arr.append(level)
        node_key.append(key)
        return idx

    root = add_node(NO_NODE, 0, n, universe.lo, universe.hi, 0, 1)
    # Queue of node indices still to be split.  Children of one node are
    # appended together, which keeps them contiguous in the arrays.
    queue = [root]
    while queue:
        i = queue.pop()
        start, end = pstart[i], pend[i]
        lvl = level_arr[i]
        if end - start <= config.bucket_size or lvl >= max_level:
            continue  # leaf
        # The node's Morton prefix: stored keys carry a leading 1 sentinel
        # bit so prefixes are unique across levels ("hashed octree" keys).
        prefix = node_key[i]
        shift = 3 * (MORTON_BITS - (lvl + 1))
        # Child c covers sorted-key range [ ((prefix*8+c) - sentinel) << shift, ... ).
        base = (prefix << 3) & ((1 << (3 * MORTON_BITS + 3)) - 1)
        sentinel = 1 << (3 * (lvl + 1))
        boundaries = np.searchsorted(
            keys[start:end],
            np.array(
                [((base + c) - sentinel) << shift for c in range(9)], dtype=np.uint64
            ),
            side="left",
        ) + start
        first = None
        count = 0
        c_lo = box_lo[i]
        c_hi = box_hi[i]
        center = 0.5 * (c_lo + c_hi)
        for c in range(8):
            s, e = int(boundaries[c]), int(boundaries[c + 1])
            if s == e:
                continue  # skip empty octant
            lo = c_lo.copy()
            hi = c_hi.copy()
            for dim in range(3):
                if (c >> dim) & 1:
                    lo[dim] = center[dim]
                else:
                    hi[dim] = center[dim]
            child = add_node(i, s, e, lo, hi, lvl + 1, base + c)
            queue.append(child)
            if first is None:
                first = child
            count += 1
        if first is not None:
            first_child[i] = first
            n_children[i] = count

    tree = Tree(
        particles=particles,
        parent=np.asarray(parent),
        first_child=np.asarray(first_child),
        n_children=np.asarray(n_children),
        pstart=np.asarray(pstart),
        pend=np.asarray(pend),
        box_lo=np.asarray(box_lo),
        box_hi=np.asarray(box_hi),
        level=np.asarray(level_arr),
        key=np.asarray(node_key, dtype=np.uint64),
        tree_type="oct",
        bucket_size=config.bucket_size,
    )
    if config.tight_boxes:
        _tighten_boxes(tree)
    return tree


def _tighten_boxes(tree: Tree) -> None:
    """Shrink every node box to the tight bounds of its particle slice."""
    pos = tree.particles.position
    for i in range(tree.n_nodes):
        s, e = tree.pstart[i], tree.pend[i]
        if e > s:
            tree.box_lo[i] = pos[s:e].min(axis=0)
            tree.box_hi[i] = pos[s:e].max(axis=0)
