"""Socket front-end (JSONL over Unix or TCP) and the in-process client.

The wire format is one JSON object per line in each direction; responses
carry the query's ``id`` so clients may pipeline.  A malformed line gets
an ``error`` response instead of dropping the connection — one bad
client line must not cost the stream.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any

from .protocol import (
    ProtocolError,
    Query,
    Response,
    decode_query_line,
    encode_line,
)
from .service import QueryService

MAX_LINE = 1 << 20  # 1 MiB per query line is already absurd

_OVERSIZED = object()  # sentinel yielded for a line longer than MAX_LINE


async def _iter_lines(reader: asyncio.StreamReader):
    """Yield complete lines, or ``_OVERSIZED`` once per over-long line.

    Hand-rolled buffering instead of ``StreamReader.readline`` because
    readline raises ``ValueError`` on a line longer than the stream
    limit (64 KiB by default) and leaves the buffer out of sync — one
    over-long line would cost the whole connection.  Here it costs one
    error response: the offending bytes are discarded up to the next
    newline and the stream continues.
    """
    buf = bytearray()
    skipping = False
    while True:
        nl = buf.find(b"\n")
        if nl >= 0:
            line = bytes(buf[: nl + 1])
            del buf[: nl + 1]
            if skipping or nl > MAX_LINE:
                skipping = False
                yield _OVERSIZED
            else:
                yield line
            continue
        if skipping:
            buf.clear()
        elif len(buf) > MAX_LINE:
            skipping = True
            buf.clear()
        chunk = await reader.read(1 << 16)
        if not chunk:
            if buf and not skipping:
                yield bytes(buf)  # final unterminated line before EOF
            return
        buf += chunk


class InProcessClient:
    """Submit dataclass queries straight into the service (tests, DES, bench)."""

    def __init__(self, service: QueryService) -> None:
        self.service = service

    async def query(self, query: Query) -> Response:
        return await self.service.submit(query)

    async def query_many(self, queries: list[Query]) -> list[Response]:
        """Submit in order without pacing; responses in query order."""
        return list(await asyncio.gather(
            *(self.service.submit(q) for q in queries)))


class SocketServer:
    """Serve a :class:`QueryService` over a Unix socket or TCP port."""

    def __init__(self, service: QueryService, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int | None = None) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.service = service
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        await self.service.start()
        if self.socket_path is not None:
            Path(self.socket_path).unlink(missing_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port)

    @property
    def where(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        assert self._server is not None
        port = self._server.sockets[0].getsockname()[1]
        return f"tcp:{self.host}:{port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.socket_path is not None:
            Path(self.socket_path).unlink(missing_ok=True)
        await self.service.stop()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def reply(response: Response) -> None:
            async with write_lock:
                writer.write(encode_line(response.to_wire()))
                await writer.drain()

        async def answer(query: Query) -> None:
            await reply(await self.service.submit(query))

        try:
            async for line in _iter_lines(reader):
                if line is _OVERSIZED:
                    await reply(Response(
                        id="", status="error",
                        error=f"query line exceeds {MAX_LINE} bytes"))
                    continue
                if not line.strip():
                    continue
                try:
                    query = decode_query_line(line)
                except ProtocolError as exc:
                    await reply(Response(id="", status="error", error=str(exc)))
                    continue
                # The wire is untrusted: a client-supplied scheduling
                # offset must never drive the admission clock (one huge
                # ``t`` would advance the token bucket far into the
                # future and rate-limit everyone forever).  Only
                # in-process submitters (bench, DES, tests) keep ``t``.
                query.t = None
                task = asyncio.ensure_future(answer(query))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def socket_query(where: str, queries: list[dict[str, Any]],
                       timeout: float = 30.0) -> list[dict[str, Any]]:
    """Tiny client helper: send wire-format queries, gather all replies.

    ``where`` is ``unix:PATH`` or ``tcp:HOST:PORT`` (as printed by the
    server).  Used by the CI smoke job and tests; replies come back in
    arrival order, keyed by ``id``.
    """
    if where.startswith("unix:"):
        reader, writer = await asyncio.open_unix_connection(
            where[5:], limit=MAX_LINE)
    elif where.startswith("tcp:"):
        _, host, port = where.split(":")
        reader, writer = await asyncio.open_connection(
            host, int(port), limit=MAX_LINE)
    else:
        raise ValueError(f"bad address {where!r} (expected unix:... or tcp:...)")
    try:
        for doc in queries:
            writer.write(encode_line(doc))
        await writer.drain()
        replies = []
        for _ in range(len(queries)):
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                break
            replies.append(json.loads(line))
        return replies
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
