"""Force kernels and the leapfrog integrator."""

import numpy as np
import pytest

from repro.apps.gravity import (
    LeapfrogIntegrator,
    direct_accelerations,
    direct_potential,
    drift,
    kick,
    pairwise_accel,
    pairwise_potential,
    point_mass_accel,
    quadrupole_accel,
)
from repro.apps.gravity.direct import acceleration_error
from repro.particles import ParticleSet, plummer_sphere


class TestPairwiseKernels:
    def test_two_body_newton(self):
        t = np.array([[0.0, 0, 0]])
        s = np.array([[2.0, 0, 0]])
        acc = pairwise_accel(t, s, np.array([3.0]), G=2.0)
        assert np.allclose(acc, [[2.0 * 3.0 / 4.0, 0, 0]])

    def test_self_pair_excluded(self):
        pos = np.array([[1.0, 2, 3]])
        acc = pairwise_accel(pos, pos, np.array([1.0]))
        assert np.all(acc == 0.0)

    def test_softening_caps_force(self):
        t = np.zeros((1, 3))
        s = np.array([[1e-8, 0, 0]])
        hard = pairwise_accel(t, s, np.ones(1), softening=0.0)
        soft = pairwise_accel(t, s, np.ones(1), softening=0.1)
        assert np.linalg.norm(soft) < 1e-3 * np.linalg.norm(hard)

    def test_newton_third_law(self):
        rng = np.random.default_rng(0)
        pos = rng.normal(size=(30, 3))
        m = rng.uniform(0.5, 2.0, 30)
        acc = pairwise_accel(pos, pos, m)
        total = (m[:, None] * acc).sum(axis=0)
        assert np.allclose(total, 0.0, atol=1e-12)

    def test_point_mass_matches_pairwise(self):
        rng = np.random.default_rng(1)
        t = rng.normal(size=(10, 3))
        c = np.array([5.0, 0, 0])
        a1 = point_mass_accel(t, c, 2.5, G=1.5, softening=0.01)
        a2 = pairwise_accel(t, c[None, :], np.array([2.5]), G=1.5, softening=0.01)
        assert np.allclose(a1, a2)

    def test_potential_two_body(self):
        phi = pairwise_potential(np.zeros((1, 3)), np.array([[2.0, 0, 0]]), np.array([4.0]))
        assert phi[0] == pytest.approx(-2.0)

    def test_direct_chunking_consistent(self):
        p = plummer_sphere(300, seed=6)
        a = direct_accelerations(p, chunk=64)
        b = direct_accelerations(p, chunk=1000)
        assert np.allclose(a, b)

    def test_energy_virial_scale(self):
        """For a Plummer sphere the potential is negative everywhere."""
        p = plummer_sphere(500, seed=7)
        phi = direct_potential(p)
        assert np.all(phi < 0)


class TestQuadrupole:
    def test_far_field_beats_monopole(self):
        """For an elongated source cluster seen from afar, adding the
        quadrupole must reduce the error vs the true summed force."""
        rng = np.random.default_rng(2)
        src = rng.normal(size=(200, 3)) * np.array([1.0, 0.2, 0.2])
        m = rng.uniform(0.5, 1.5, 200)
        com = (m[:, None] * src).sum(axis=0) / m.sum()
        d = src - com
        cov = np.einsum("p,pi,pj->ij", m, d, d)
        quad = 3 * cov - np.trace(cov) * np.eye(3)
        targets = np.array([[6.0, 2.0, 1.0], [0.0, 7.0, 0.0], [-5.0, -5.0, 3.0]])
        exact = pairwise_accel(targets, src, m)
        mono = point_mass_accel(targets, com, float(m.sum()))
        quadr = quadrupole_accel(targets, com, float(m.sum()), quad)
        err_mono = np.linalg.norm(mono - exact)
        err_quad = np.linalg.norm(quadr - exact)
        assert err_quad < 0.4 * err_mono

    def test_spherical_source_quadrupole_vanishes(self):
        """An isotropic shell has (statistically) tiny quadrupole."""
        rng = np.random.default_rng(3)
        v = rng.normal(size=(5000, 3))
        v /= np.linalg.norm(v, axis=1)[:, None]
        m = np.ones(5000)
        cov = np.einsum("p,pi,pj->ij", m, v, v)
        quad = 3 * cov - np.trace(cov) * np.eye(3)
        assert np.abs(quad).max() < 0.05 * m.sum()

    def test_zero_quad_equals_monopole(self):
        t = np.array([[3.0, 1.0, -2.0]])
        a = quadrupole_accel(t, np.zeros(3), 2.0, np.zeros((3, 3)))
        b = point_mass_accel(t, np.zeros(3), 2.0)
        assert np.allclose(a, b)


class TestIntegrator:
    def test_kick_drift(self):
        p = ParticleSet(np.zeros((1, 3)), np.array([[1.0, 0, 0]]))
        kick(p, np.array([[0.0, 2.0, 0.0]]), 0.5)
        assert np.allclose(p.velocity, [[1.0, 1.0, 0.0]])
        drift(p, 2.0)
        assert np.allclose(p.position, [[2.0, 2.0, 0.0]])

    def test_leapfrog_circular_orbit_energy(self):
        """KDK leapfrog keeps a two-body circular orbit's radius bounded
        over many periods (symplectic behaviour)."""
        mu = 1.0
        r0 = 1.0
        p = ParticleSet(
            np.array([[r0, 0, 0]]), np.array([[0.0, 1.0, 0.0]]), np.array([1e-30])
        )

        def accel():
            r = p.position[0]
            return (-mu * r / np.linalg.norm(r) ** 3)[None, :]

        integ = LeapfrogIntegrator(p, dt=0.02)
        radii = []
        for _ in range(2000):  # ~6 orbits
            integ.begin_step(accel())
            integ.finish_step(accel())
            radii.append(np.linalg.norm(p.position[0]))
        radii = np.array(radii)
        assert np.abs(radii - r0).max() < 0.01

    def test_leapfrog_protocol_enforced(self):
        p = ParticleSet(np.zeros((1, 3)))
        integ = LeapfrogIntegrator(p, dt=0.1)
        with pytest.raises(RuntimeError):
            integ.finish_step(np.zeros((1, 3)))
        integ.begin_step(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            integ.begin_step(np.zeros((1, 3)))

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            LeapfrogIntegrator(ParticleSet(np.zeros((1, 3))), dt=0.0)


class TestErrorMetric:
    def test_zero_error(self):
        a = np.ones((5, 3))
        err = acceleration_error(a, a)
        assert err["mean"] == 0.0 and err["max"] == 0.0

    def test_known_error(self):
        exact = np.array([[1.0, 0, 0]])
        approx = np.array([[1.1, 0, 0]])
        err = acceleration_error(approx, exact)
        assert err["mean"] == pytest.approx(0.1)
