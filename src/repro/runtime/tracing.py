"""Utilisation tracing for the DES (paper Fig 9 / *Projections*).

Every completed worker task records a ``(process, worker, start, end,
activity)`` interval.  :func:`utilization_profile` bins those intervals into
a time-resolved, per-activity utilisation fraction — the same view the
paper's Fig 9 shows from Charm++ Projections (local traversals, cache
requests, cache insertions, traversal resumptions, idle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ActivityTrace", "utilization_profile", "activity_totals", "barrier_waits"]


@dataclass
class ActivityTrace:
    """Flat interval log; cheap to append, vectorised to analyse."""

    intervals: list[tuple[int, int, float, float, str]] = field(default_factory=list)

    def record(self, process: int, worker: int, start: float, end: float, label: str) -> None:
        if end < start:
            raise ValueError("interval ends before it starts")
        self.intervals.append((process, worker, start, end, label))

    @property
    def labels(self) -> list[str]:
        return sorted({iv[4] for iv in self.intervals})

    def total_busy(self) -> float:
        return sum(iv[3] - iv[2] for iv in self.intervals)

    def span(self) -> tuple[float, float]:
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv[2] for iv in self.intervals),
            max(iv[3] for iv in self.intervals),
        )


def activity_totals(trace: ActivityTrace) -> dict[str, float]:
    """Total busy seconds per activity label."""
    out: dict[str, float] = {}
    for _, _, start, end, label in trace.intervals:
        out[label] = out.get(label, 0.0) + (end - start)
    return out


def barrier_waits(trace: ActivityTrace, makespan: float) -> dict[int, float]:
    """End-of-iteration wait per simulated process.

    The iteration time is the slowest process's finish time; every other
    process idles from its own last task until then (the implicit barrier
    before the next iteration).  This is the "barrier wait" component the
    critical-path report carries alongside its on-chain attribution.
    """
    last_end: dict[int, float] = {}
    for process, _worker, _start, end, _label in trace.intervals:
        if end > last_end.get(process, 0.0):
            last_end[process] = end
    return {int(p): float(max(makespan - e, 0.0))
            for p, e in sorted(last_end.items())}


def utilization_profile(
    trace: ActivityTrace,
    n_workers_total: int,
    n_bins: int = 50,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Time-binned utilisation fractions per activity.

    Returns ``(bin_edges, {label: fraction_of_workers_busy_per_bin})``.
    The sum over labels in a bin is total utilisation; 1 − sum is idle.
    """
    t0, t1 = trace.span()
    if t1 <= t0:
        return np.zeros(n_bins + 1), {}
    edges = np.linspace(t0, t1, n_bins + 1)
    width = edges[1] - edges[0]
    starts = np.array([iv[2] for iv in trace.intervals])
    ends = np.array([iv[3] for iv in trace.intervals])
    labels = np.array([iv[4] for iv in trace.intervals])
    # Overlap of every interval with every bin in one broadcast:
    # max(0, min(end, right_edge) - max(start, left_edge)) -> (n_iv, n_bins).
    overlap = np.minimum(ends[:, None], edges[None, 1:]) - np.maximum(
        starts[:, None], edges[None, :-1]
    )
    np.clip(overlap, 0.0, None, out=overlap)
    denom = width * n_workers_total
    out: dict[str, np.ndarray] = {}
    for label in np.unique(labels):
        out[str(label)] = overlap[labels == label].sum(axis=0) / denom
    return edges, out
