"""Thread pool backend: shared address space, shared software cache.

Worker threads traverse disjoint target-bucket chunks.  Two strategies,
picked per visitor:

* ``exec_shareable`` visitors are used *as one shared instance* — their
  chunk writes land on disjoint per-particle rows (each target bucket is in
  exactly one chunk), so under the GIL no synchronisation is needed and the
  accumulation order per target equals the serial order;
* visitors that only implement the exec protocol get one rebuilt instance
  per chunk, merged afterwards in chunk order via ``exec_apply``.

When a :class:`~repro.cache.concurrent.SharedTreeCache` is passed, every
worker additionally warms it while traversing — concurrent
fill/park/complete against one cache tree is exactly the wait-free
contention the paper's Fig 2 protocol is designed for, and the stress tests
read the cache's waiter counters afterwards.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from ..core.traverser import Recorder, TraversalStats, Traverser, get_traverser
from ..obs import Log2Histogram, get_telemetry
from ..trees import Tree
from .backend import ExecutionBackend, register_backend

__all__ = ["ThreadBackend", "warm_shared_cache"]


def warm_shared_cache(cache, limit: int = 32) -> tuple[int, int]:
    """Issue up to ``limit`` placeholder fills against ``cache``.

    Scans the cache tree for the first reachable placeholder and requests
    its fill with a parked resume callback, repeatedly.  Returns
    ``(callbacks_parked_here, callbacks_invoked_here)`` — under fault
    injection a fill may fail transiently, but a parked waiter is always
    either resumed by the filler or re-driven by ``fail_fill``, so the two
    numbers match at quiescence.
    """
    invoked = [0]

    def on_resume() -> None:
        invoked[0] += 1

    issued = 0
    for _ in range(limit):
        found = None
        stack = [cache.root]
        while stack and found is None:
            entry = stack.pop()
            if entry.is_placeholder:
                continue
            for slot, child in enumerate(entry.children):
                if child.is_placeholder:
                    found = (entry, slot)
                    break
            else:
                stack.extend(entry.children)
        if found is None:
            break
        issued += 1
        cache.request_fill(found[0], found[1], on_resume=on_resume)
    return issued, invoked[0]


class ThreadBackend(ExecutionBackend):
    """Run chunks on a persistent :class:`ThreadPoolExecutor`."""

    name = "threads"

    def __init__(self, workers: int | None = None, cache_warm_fills: int = 32,
                 supervise=None, exec_faults=None) -> None:
        super().__init__(workers, supervise=supervise, exec_faults=exec_faults)
        self.cache_warm_fills = cache_warm_fills
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: (issued, invoked) totals from the last run's cache warming
        self.last_cache_warm = (0, 0)
        #: a deadline fired at least once: hung worker threads may still be
        #: sleeping inside the pool, so shutdown must not join them
        self._hang_suspected = False

    def _supports(self, visitor: Any) -> bool:
        if getattr(visitor, "exec_shareable", False):
            return True
        return getattr(visitor, "exec_config", lambda: None)() is not None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
            return self._pool

    def _run_chunks(
        self,
        engine: Traverser,
        tree: Tree,
        visitor: Any,
        chunks: list[np.ndarray],
        forks: list[Recorder] | None,
        shared_cache=None,
    ) -> TraversalStats:
        pool = self._ensure_pool()
        # Supervised dispatch needs retry-safe attempts: every attempt must
        # rebuild a fresh visitor (the shared-instance path accumulates into
        # the parent visitor, so a retried chunk would double-apply).  That
        # requires the full exec protocol; a shareable-only visitor runs on
        # the unsupervised path even when supervision is configured.
        supervisor = self._make_supervisor()
        if (supervisor is not None
                and getattr(visitor, "exec_config", lambda: None)() is not None):
            return self._run_supervised(
                supervisor, engine, tree, visitor, chunks, forks, shared_cache
            )
        shareable = getattr(visitor, "exec_shareable", False)
        chunk_visitors: list[Any] | None = None
        if not shareable:
            arrays = visitor.exec_arrays()
            config = visitor.exec_config()
            chunk_visitors = [
                type(visitor).exec_rebuild(tree, arrays, config) for _ in chunks
            ]

        record_latency = get_telemetry().enabled

        def task(i: int, chunk: np.ndarray):
            t0 = time.perf_counter()
            if self.exec_faults is not None:
                # unsupervised + faults is the "demonstrably fails" path:
                # the exception propagates out of run() unhandled
                self.exec_faults.apply_in_worker(i, 0, in_process=False)
            warm = (0, 0)
            if shared_cache is not None:
                warm = warm_shared_cache(shared_cache, self.cache_warm_fills)
            vis = visitor if shareable else chunk_visitors[i]
            # _traverse, not traverse: the Tracer's span stack is not
            # thread-safe, so workers run bare and the main thread records
            # completed spans afterwards.
            stats = get_traverser(engine.name)._traverse(
                tree, vis, chunk, forks[i] if forks else None
            )
            t1 = time.perf_counter()
            # worker-side latency fork, merged parent-side in chunk order
            lat = None
            if record_latency:
                lat = Log2Histogram()
                lat.observe(t1 - t0)
            return stats, warm, t0, t1, threading.get_ident(), lat

        futures = [pool.submit(task, i, c) for i, c in enumerate(chunks)]
        results = [f.result() for f in futures]  # chunk order, not completion

        total = TraversalStats()
        warm_issued = warm_invoked = 0
        tasks = []
        lanes: dict[int, int] = {}
        for i, (stats, warm, t0, t1, ident, lat) in enumerate(results):
            total.merge(stats)
            warm_issued += warm[0]
            warm_invoked += warm[1]
            if not shareable:
                visitor.exec_apply(
                    tree, chunks[i], chunk_visitors[i].exec_collect(tree, chunks[i])
                )
            lane = lanes.setdefault(ident, len(lanes))
            tasks.append({
                "chunk": i, "targets": len(chunks[i]),
                "start": t0, "end": t1, "lane": lane, "worker": f"thread-{lane}",
                "latency": lat,
            })
        self.last_cache_warm = (warm_issued, warm_invoked)
        self._record_tasks(tasks)
        return total

    def _run_supervised(
        self,
        supervisor,
        engine: Traverser,
        tree: Tree,
        visitor: Any,
        chunks: list[np.ndarray],
        forks: list[Recorder] | None,
        shared_cache=None,
    ) -> TraversalStats:
        """Supervised dispatch: per-attempt rebuilt visitors and forks, so
        a failed/expired attempt leaves no partial state and the winning
        attempt's outputs are applied exactly once, in chunk order."""
        arrays = visitor.exec_arrays()
        config = visitor.exec_config()
        record_latency = get_telemetry().enabled
        exec_faults = self.exec_faults

        def compute(i: int, attempt: int, inject: bool):
            t0 = time.perf_counter()
            if inject and exec_faults is not None:
                exec_faults.apply_in_worker(i, attempt, in_process=False)
            warm = (0, 0)
            if shared_cache is not None:
                warm = warm_shared_cache(shared_cache, self.cache_warm_fills)
            vis = type(visitor).exec_rebuild(tree, arrays, config)
            fork = forks[i].fork() if forks is not None else None
            stats = get_traverser(engine.name)._traverse(
                tree, vis, chunks[i], fork
            )
            outputs = vis.exec_collect(tree, chunks[i])
            t1 = time.perf_counter()
            lat = None
            if record_latency:
                lat = Log2Histogram()
                lat.observe(t1 - t0)
            return stats, outputs, fork, warm, t0, t1, threading.get_ident(), lat

        def submit(i: int, attempt: int):
            return self._ensure_pool().submit(compute, i, attempt, True)

        def serial_exec(i: int):
            # quarantine: in-parent, no pool, no injection
            return compute(i, -1, False)

        results, sup_stats = supervisor.run(len(chunks), submit, serial_exec)
        if sup_stats.deadline_misses:
            self._hang_suspected = True

        total = TraversalStats()
        warm_issued = warm_invoked = 0
        tasks = []
        lanes: dict[int, int] = {}
        for i, (stats, outputs, fork, warm, t0, t1, ident, lat) in enumerate(results):
            total.merge(stats)
            warm_issued += warm[0]
            warm_invoked += warm[1]
            visitor.exec_apply(tree, chunks[i], outputs)
            if forks is not None and fork is not None:
                forks[i] = fork  # the winning attempt's fork, absorbed by run()
            lane = lanes.setdefault(ident, len(lanes))
            tasks.append({
                "chunk": i, "targets": len(chunks[i]),
                "start": t0, "end": t1, "lane": lane, "worker": f"thread-{lane}",
                "latency": lat,
            })
        self.last_cache_warm = (warm_issued, warm_invoked)
        self._finish_supervised(sup_stats)
        self._record_tasks(tasks)
        return total

    def shutdown(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                # A worker stuck in an injected hang cannot be joined; drop
                # the pool without waiting so failed runs never wedge
                # shutdown (the sleeping thread exits on its own).
                self._pool.shutdown(
                    wait=not self._hang_suspected, cancel_futures=True
                )
                self._pool = None
                self._hang_suspected = False


register_backend(ThreadBackend.name, ThreadBackend)
