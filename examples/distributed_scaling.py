"""Distributed-runtime walkthrough: one real traversal, many simulated runs.

Shows the full performance-modelling pipeline the scaling reproductions use:
record a real traversal's interaction lists, turn them into a DES workload,
and replay the iteration on simulated Summit / Stampede2 / Bridges2 nodes
under each software-cache design, printing a strong-scaling table and a
Fig 9-style utilisation profile.

Run:  python examples/distributed_scaling.py
"""

import numpy as np

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.cache import SEQUENTIAL, WAITFREE, XWRITE
from repro.core import InteractionLists, get_traverser
from repro.decomp import decompose, get_decomposer
from repro.particles import clustered_clumps
from repro.runtime import (
    MACHINES,
    STAMPEDE2,
    simulate_traversal,
    utilization_profile,
    workload_from_traversal,
)
from repro.trees import build_tree


def main() -> None:
    # -- one real traversal, instrumented ---------------------------------
    particles = clustered_clumps(25_000, seed=3)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    parts = get_decomposer("sfc").assign(tree.particles, 256)
    dec = decompose(tree, parts, n_subtrees=256)
    visitor = GravityVisitor(tree, compute_centroid_arrays(tree, theta=0.7))
    lists = InteractionLists()
    get_traverser("transposed").traverse(tree, visitor, None, lists)
    workload = workload_from_traversal(tree, dec, lists)
    print(f"workload: {len(workload.buckets)} buckets, "
          f"{workload.groups.n_groups} fetch groups, "
          f"{workload.total_work:.3f} s of modelled sequential work")

    # -- strong scaling under the three Fig 3 cache designs ----------------
    print(f"\nstrong scaling on {STAMPEDE2.name} (24 workers/process), "
          f"simulated iteration time in ms:")
    print(f"{'cores':>7} | {'WaitFree':>9} | {'XWrite':>9} | {'Sequential':>10}")
    for n_proc in (1, 4, 16, 64):
        row = []
        for model in (WAITFREE, XWRITE, SEQUENTIAL):
            r = simulate_traversal(
                workload, machine=STAMPEDE2, n_processes=n_proc,
                workers_per_process=24, cache_model=model,
            )
            row.append(r.time * 1e3)
        print(f"{n_proc * 24:>7} | {row[0]:>9.3f} | {row[1]:>9.3f} | {row[2]:>10.3f}")

    # -- machine comparison -------------------------------------------------
    print("\nsame workload, 8 processes, one full node per process:")
    for name, machine in MACHINES.items():
        r = simulate_traversal(workload, machine=machine, n_processes=8)
        print(f"  {name:10s} ({machine.workers_per_node:3d} workers/node, "
              f"{machine.clock_ghz} GHz): {r.time * 1e3:8.3f} ms")

    # -- Fig 9-style utilisation profile -------------------------------------
    r = simulate_traversal(
        workload, machine=STAMPEDE2, n_processes=16, workers_per_process=24,
        cache_model=WAITFREE, collect_trace=True,
    )
    edges, series = utilization_profile(r.trace, n_workers_total=16 * 24, n_bins=12)
    print("\nutilisation timeline (fraction of workers busy per activity):")
    labels = sorted(series)
    print("  bin  " + "  ".join(f"{l[:14]:>14}" for l in labels))
    for b in range(12):
        print(f"  {b:3d}  " + "  ".join(f"{series[l][b]:>14.3f}" for l in labels))


if __name__ == "__main__":
    main()
