"""kNN as a pipeline Driver, so neighbour searches run through the full
decompose/build/traverse cycle — and therefore checkpoint and resume like
every other application."""

from __future__ import annotations

import numpy as np

from ...core import Configuration, Driver
from ...trees import Tree
from .knn import KNNResult, knn_search

__all__ = ["KNNDriver"]


class KNNDriver(Driver):
    """Each iteration: k-nearest-neighbour search over the whole set via
    the up-and-down engine.  ``self.result`` holds the last iteration's
    neighbour lists (tree order)."""

    def __init__(self, config: Configuration | None = None, k: int = 8) -> None:
        super().__init__(config)
        self.k = k
        self.result: KNNResult | None = None

    def prepare(self, tree: Tree) -> None:
        self.result = None

    def traversal(self, iteration: int) -> None:
        self.result = knn_search(self.tree, k=self.k, backend=self.exec_backend)
        self.last_stats.merge(self.result.stats)
        if self.exec_backend is not None:
            # knn_search drives the backend directly (not via partitions()),
            # so fold its latency/cache/supervision into the iteration here
            self._absorb_backend_run(self.exec_backend)

    def kth_distances(self) -> np.ndarray:
        """Distance to the k-th neighbour per particle (tree order)."""
        assert self.result is not None
        return np.sqrt(self.result.dist_sq[:, -1])
