"""High-level gravity entry points and the Barnes-Hut Driver.

:func:`compute_gravity` is the one-call API (build/accumulate/traverse);
:class:`GravityDriver` is the paper-style application class mirroring Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import Configuration, Driver, TraversalStats, get_traverser
from ...core.traverser import Recorder
from ...particles import ParticleSet
from ...trees import Tree, build_tree
from .centroid import compute_centroid_arrays
from .visitor import GravityVisitor

__all__ = ["GravityResult", "compute_gravity", "compute_gravity_on_tree", "GravityDriver"]


@dataclass
class GravityResult:
    """Accelerations plus the traversal bookkeeping."""

    tree: Tree
    #: accelerations in *input* particle order
    accel: np.ndarray
    stats: TraversalStats
    visitor: GravityVisitor
    #: monopole potential in input order (when requested)
    potential: np.ndarray | None = None


def compute_gravity_on_tree(
    tree: Tree,
    theta: float = 0.7,
    G: float = 1.0,
    softening: float = 0.0,
    traverser: str = "transposed",
    with_quadrupole: bool = False,
    with_potential: bool = False,
    targets: np.ndarray | None = None,
    recorder: Recorder | None = None,
) -> GravityResult:
    """Barnes-Hut accelerations for an already-built tree."""
    arrays = compute_centroid_arrays(tree, theta=theta, with_quadrupole=with_quadrupole)
    visitor = GravityVisitor(
        tree, arrays, G=G, softening=softening, with_potential=with_potential
    )
    engine = get_traverser(traverser)
    stats = engine.traverse(tree, visitor, targets, recorder)
    accel = tree.particles.scatter_to_input_order(visitor.accel)
    potential = (
        tree.particles.scatter_to_input_order(visitor.potential)
        if visitor.potential is not None
        else None
    )
    return GravityResult(
        tree=tree, accel=accel, stats=stats, visitor=visitor, potential=potential
    )


def compute_gravity(
    particles: ParticleSet,
    theta: float = 0.7,
    G: float = 1.0,
    softening: float = 0.0,
    tree_type: str = "oct",
    bucket_size: int = 16,
    traverser: str = "transposed",
    with_quadrupole: bool = False,
    with_potential: bool = False,
    recorder: Recorder | None = None,
    tree_builder: str = "recursive",
) -> GravityResult:
    """Build a tree over ``particles`` and compute Barnes-Hut accelerations.

    ``result.accel`` is aligned with the input particle order.
    """
    tree = build_tree(particles, tree_type=tree_type, bucket_size=bucket_size,
                      builder=tree_builder)
    return compute_gravity_on_tree(
        tree,
        theta=theta,
        G=G,
        softening=softening,
        traverser=traverser,
        with_quadrupole=with_quadrupole,
        with_potential=with_potential,
        recorder=recorder,
    )


class GravityDriver(Driver):
    """The paper's ``GravityMain`` (Fig 8) as a reusable Driver.

    Each iteration computes accelerations for all particles and (optionally)
    advances them with a leapfrog step; the accelerations of the last
    iteration are kept on ``self.accelerations`` in current particle order.
    """

    def __init__(
        self,
        config: Configuration | None = None,
        theta: float = 0.7,
        G: float = 1.0,
        softening: float = 0.0,
        dt: float = 0.0,
        with_quadrupole: bool = False,
    ) -> None:
        super().__init__(config)
        self.theta = theta
        self.G = G
        self.softening = softening
        self.dt = dt
        self.with_quadrupole = with_quadrupole
        self.accelerations: np.ndarray | None = None
        self._visitor: GravityVisitor | None = None

    def prepare(self, tree: Tree) -> None:
        arrays = compute_centroid_arrays(
            tree, theta=self.theta, with_quadrupole=self.with_quadrupole
        )
        self._visitor = GravityVisitor(tree, arrays, G=self.G, softening=self.softening)

    def traversal(self, iteration: int) -> None:
        assert self._visitor is not None
        self.partitions().start_down(self._visitor)
        self.accelerations = self._visitor.accel

    def post_traversal(self, iteration: int) -> None:
        if self.dt > 0 and self.accelerations is not None:
            from .integrator import kick_drift_kick_half

            kick_drift_kick_half(self.particles, self.accelerations, self.dt)

    def checkpoint_state(self) -> dict:
        if self.accelerations is None:
            return {}
        return {"accelerations": np.asarray(self.accelerations)}

    def restore_state(self, state: dict) -> None:
        acc = state.get("accelerations")
        self.accelerations = None if acc is None else np.asarray(acc)
