"""Morton (Z-order) key tests: bit-exactness, ordering, prefix semantics."""

import numpy as np
import pytest

from repro.geometry import (
    MORTON_BITS,
    MORTON_MAX_COORD,
    Box3,
    morton_decode,
    morton_encode,
    morton_keys,
    normalize_to_grid,
)
from repro.geometry.morton import keys_in_node, morton_ancestor_key


class TestEncodeDecode:
    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        ix = rng.integers(0, MORTON_MAX_COORD + 1, 5000, dtype=np.uint64)
        iy = rng.integers(0, MORTON_MAX_COORD + 1, 5000, dtype=np.uint64)
        iz = rng.integers(0, MORTON_MAX_COORD + 1, 5000, dtype=np.uint64)
        dx, dy, dz = morton_decode(morton_encode(ix, iy, iz))
        assert np.array_equal(ix, dx)
        assert np.array_equal(iy, dy)
        assert np.array_equal(iz, dz)

    def test_known_small_values(self):
        # Interleave pattern: x0 y0 z0 x1 y1 z1 ...
        assert int(morton_encode(np.array([1]), np.array([0]), np.array([0]))[0]) == 0b001
        assert int(morton_encode(np.array([0]), np.array([1]), np.array([0]))[0]) == 0b010
        assert int(morton_encode(np.array([0]), np.array([0]), np.array([1]))[0]) == 0b100
        assert int(morton_encode(np.array([3]), np.array([0]), np.array([0]))[0]) == 0b1001
        assert int(morton_encode(np.array([1]), np.array([1]), np.array([1]))[0]) == 0b111

    def test_max_coordinate_fits(self):
        k = morton_encode(
            np.array([MORTON_MAX_COORD]),
            np.array([MORTON_MAX_COORD]),
            np.array([MORTON_MAX_COORD]),
        )
        assert int(k[0]) == (1 << (3 * MORTON_BITS)) - 1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([MORTON_MAX_COORD + 1]), np.array([0]), np.array([0]))

    def test_monotone_along_x(self):
        """Holding y,z fixed, increasing x increases the key."""
        x = np.arange(100, dtype=np.uint64)
        k = morton_encode(x, np.zeros(100, np.uint64), np.zeros(100, np.uint64))
        assert np.all(np.diff(k.astype(np.int64)) > 0)


class TestGridNormalisation:
    def test_corners(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        grid = normalize_to_grid(np.array([[0.0, 0, 0], [1.0, 1, 1]]), box)
        assert np.array_equal(grid[0], [0, 0, 0])
        # upper face maps to max coordinate, not overflow
        assert np.array_equal(grid[1], [MORTON_MAX_COORD] * 3)

    def test_out_of_box_points_clamp(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        grid = normalize_to_grid(np.array([[-5.0, 2.0, 0.5]]), box)
        assert grid[0, 0] == 0
        assert grid[0, 1] == MORTON_MAX_COORD

    def test_degenerate_box(self):
        box = Box3([0.5, 0.5, 0.5], [0.5, 0.5, 0.5])
        grid = normalize_to_grid(np.array([[0.5, 0.5, 0.5]]), box)
        assert grid.shape == (1, 3)  # no crash on zero-size box


class TestPrefixSemantics:
    def test_ancestor_key_levels(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, (200, 3))
        box = Box3([0, 0, 0], [1, 1, 1])
        keys = morton_keys(pts, box)
        # level 0: every particle under the root
        assert np.all(morton_ancestor_key(keys, 0) == 0)
        # deeper levels refine: children's prefixes nest
        lvl1 = morton_ancestor_key(keys, 1)
        lvl2 = morton_ancestor_key(keys, 2)
        assert np.all(lvl2 >> np.uint64(3) == lvl1)

    def test_level1_prefix_matches_octant(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        # A point in the all-high octant has level-1 prefix 0b111.
        keys = morton_keys(np.array([[0.9, 0.9, 0.9]]), box)
        assert int(morton_ancestor_key(keys, 1)[0]) == 0b111
        keys = morton_keys(np.array([[0.1, 0.1, 0.1]]), box)
        assert int(morton_ancestor_key(keys, 1)[0]) == 0

    def test_keys_in_node(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        pts = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9], [0.9, 0.1, 0.1]])
        keys = morton_keys(pts, box)
        assert np.array_equal(keys_in_node(keys, 0, 1), [True, False, False])
        assert np.array_equal(keys_in_node(keys, 0b111, 1), [False, True, False])
        assert np.array_equal(keys_in_node(keys, 0b001, 1), [False, False, True])

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            morton_ancestor_key(np.array([0], dtype=np.uint64), MORTON_BITS + 1)


def test_sorted_keys_group_spatially():
    """Particles adjacent along the sorted curve are spatially close (the
    property SFC decomposition relies on): mean neighbour distance along the
    curve is far below the mean distance of random pairs."""
    rng = np.random.default_rng(3)
    pts = rng.uniform(0, 1, (2000, 3))
    box = Box3([0, 0, 0], [1, 1, 1])
    order = np.argsort(morton_keys(pts, box))
    sorted_pts = pts[order]
    curve_dist = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1).mean()
    shuffled = pts[rng.permutation(2000)]
    random_dist = np.linalg.norm(shuffled[:-1] - shuffled[1:], axis=1).mean()
    assert curve_dist < 0.3 * random_dist
