"""Causal what-if engine tests (``repro.perf.whatif``).

The engine replays the DES dependency graph (:class:`CPRecorder`) with
virtual speedups, Coz-style.  The contract:

* **null exactness** — a ×1.0 speedup reproduces the measured makespan
  *bit-exactly* (the delta formulation keeps all per-node deltas at 0.0,
  so no float drift can creep in);
* hand-built DAGs with known critical paths give the analytically
  correct predicted makespan;
* speeding up off-critical-path work yields no gain until it becomes
  critical;
* the ``--whatif`` spec grammar parses kinds, label substrings, resource
  globs and both ``×``/``*``/`` xN`` factor syntaxes.
"""

import math

import numpy as np
import pytest

from repro.core.traverser import InteractionLists, get_traverser
from repro.decomp import SfcDecomposer, decompose
from repro.particles.generators import clustered_clumps
from repro.perf import (
    CPRecorder,
    VirtualSpeedup,
    format_whatifs,
    parse_whatif,
    standard_whatifs,
    what_if,
)
from repro.runtime import simulate_traversal, workload_from_traversal
from repro.trees import build_tree

from tests.harness.differential import CountInRadiusVisitor


def _chain(durations, kind="compute"):
    """A linear chain a→b→c…; makespan is the sum of durations."""
    rec = CPRecorder()
    t, prev = 0.0, None
    for i, d in enumerate(durations):
        prev = rec.add(f"n{i}", kind, t, t + d,
                       preds=(prev,) if prev is not None else ())
        t += d
    return rec, t


class TestHandBuiltGraphs:
    def test_chain_uniform_speedup(self):
        rec, makespan = _chain([1.0, 2.0, 3.0])
        res = what_if(rec, makespan, VirtualSpeedup(0.5))
        assert res.predicted == pytest.approx(3.0)
        assert res.matched == 3
        assert res.delta == pytest.approx(-3.0)
        assert res.gain_frac == pytest.approx(0.5)

    def test_null_speedup_is_bit_exact(self):
        # awkward float durations on purpose: exactness must not depend
        # on the numbers being representable sums
        rec, makespan = _chain([0.1, 0.2, 0.30000000000000004, 1e-9])
        res = what_if(rec, makespan, VirtualSpeedup(1.0))
        assert res.predicted == makespan  # == , not approx
        assert res.delta == 0.0

    def test_diamond_critical_path(self):
        # a → {b: 5, c: 1} → d ; critical path a-b-d = 1+5+1 = 7
        rec = CPRecorder()
        a = rec.add("a", "compute", 0.0, 1.0)
        b = rec.add("b", "compute", 1.0, 6.0, preds=(a,))
        c = rec.add("c", "latency", 1.0, 2.0, preds=(a,))
        rec.add("d", "compute", 6.0, 7.0, preds=(b, c))
        makespan = 7.0
        # halving the off-critical latency leg changes nothing
        off = what_if(rec, makespan, VirtualSpeedup(0.5, kind="latency"))
        assert off.predicted == makespan
        assert off.matched == 1 and off.matched_seconds == pytest.approx(1.0)
        # halving b shortens the path until c's leg binds:
        # a(1) + b(2.5) + d(1) = 4.5 > a(1) + c(1) + d(1) = 3
        on = what_if(rec, makespan, VirtualSpeedup(0.5, label="b"))
        assert on.predicted == pytest.approx(4.5)
        # overshooting: b at ×0.1 leaves c critical → 1 + 1 + 1 = 3
        lim = what_if(rec, makespan, VirtualSpeedup(0.1, label="b"))
        assert lim.predicted == pytest.approx(3.0)

    def test_slowdown_and_composition(self):
        rec, makespan = _chain([2.0, 2.0])
        slow = what_if(rec, makespan, VirtualSpeedup(2.0))
        assert slow.predicted == pytest.approx(8.0)
        assert slow.gain_frac == pytest.approx(-1.0)
        # two matching speedups compose multiplicatively: ×0.5 · ×0.5
        both = what_if(rec, makespan,
                       (VirtualSpeedup(0.5), VirtualSpeedup(0.5)))
        assert both.predicted == pytest.approx(1.0)

    def test_start_edge_graph(self):
        """Nodes that start after their predecessors end (scheduler gaps)
        keep the gap; only durations shrink."""
        rec = CPRecorder()
        a = rec.add("a", "compute", 0.0, 1.0)
        rec.add("b", "compute", 3.0, 4.0, preds=(a,))  # 2s idle gap
        res = what_if(rec, 4.0, VirtualSpeedup(0.5))
        # a ends at 0.5 (delta -0.5), b's duration halves: 4 - 0.5 - 0.5
        assert res.predicted == pytest.approx(3.0)

    def test_resource_glob_and_empty_graph(self):
        rec = CPRecorder()
        rec.add("w", "compute", 0.0, 2.0, resource="p0.w1")
        rec.add("x", "compute", 0.0, 1.0, resource="net")
        hit = what_if(rec, 2.0, VirtualSpeedup(0.5, resource="p0.*"))
        assert hit.matched == 1 and hit.predicted == pytest.approx(1.0)
        miss = what_if(rec, 2.0, VirtualSpeedup(0.5, resource="p9.*"))
        assert miss.matched == 0 and miss.predicted == 2.0
        empty = what_if(CPRecorder(), 5.0, VirtualSpeedup(0.5))
        assert empty.predicted == 5.0 and empty.matched == 0

    def test_result_serialization(self):
        rec, makespan = _chain([1.0, 1.0])
        res = what_if(rec, makespan, VirtualSpeedup(0.5, kind="compute"))
        d = res.to_dict()
        assert d["predicted_s"] == res.predicted
        assert d["matched_activities"] == 2
        assert "compute" in d["speedup"]
        table = format_whatifs([res], makespan)
        assert "×0.5" in table and "+50.0%" in table


class TestParseWhatif:
    def test_kind_forms(self):
        for spec in ("latency ×0.5", "latency *0.5", "kind=latency ×0.5",
                     "latency x0.5"):
            s = parse_whatif(spec)
            assert s.kind == "latency" and s.factor == 0.5, spec

    def test_label_and_resource(self):
        s = parse_whatif("label=fetch,resource=p0.* ×0.25")
        assert s.label == "fetch" and s.resource == "p0.*"
        assert s.factor == 0.25 and s.kind is None

    def test_bad_specs(self):
        for bad in ("latency", "latency ×0", "latency ×-1", "latency ×abc",
                    "nope=3 ×0.5", ""):
            with pytest.raises(ValueError):
                parse_whatif(bad)

    def test_matches(self):
        node = CPRecorder()
        i = node.add("fetch group 3", "latency", 0.0, 1.0, resource="p2.net")
        n = node.nodes[i]
        assert VirtualSpeedup(0.5, kind="latency").matches(n)
        assert VirtualSpeedup(0.5, label="group").matches(n)
        assert VirtualSpeedup(0.5, resource="p2.*").matches(n)
        assert not VirtualSpeedup(0.5, kind="compute").matches(n)
        assert not VirtualSpeedup(0.5, label="flush").matches(n)


class TestDESIntegration:
    @pytest.fixture(scope="class")
    def sim(self):
        tree = build_tree(clustered_clumps(600, seed=7), tree_type="oct",
                          bucket_size=16)
        parts = SfcDecomposer().assign(tree.particles, 4)
        dec = decompose(tree, parts, n_subtrees=4)
        lists = InteractionLists()
        engine = get_traverser("transposed")
        engine.traverse(tree, CountInRadiusVisitor(tree, 0.25),
                        tree.leaf_indices, lists)
        wl = workload_from_traversal(tree, dec, lists)
        return simulate_traversal(wl, n_processes=4, critical_path=True)

    def test_null_reproduces_makespan_exactly(self, sim):
        assert sim.cp_graph is not None and len(sim.cp_graph) > 0
        res = what_if(sim.cp_graph, sim.time, VirtualSpeedup(1.0))
        assert res.predicted == sim.time  # bit-exact, the acceptance gate

    def test_standard_whatifs_bracket_reality(self, sim):
        results = standard_whatifs(sim.cp_graph, sim.time)
        assert results
        for r in results:
            # a pure speedup can help or be neutral, never hurt
            assert r.predicted <= sim.time + 1e-12
            assert math.isfinite(r.predicted)
        preds = [r.predicted for r in results]
        assert preds == sorted(preds)

    def test_deterministic_replay(self, sim):
        a = what_if(sim.cp_graph, sim.time, VirtualSpeedup(0.5, kind="compute"))
        b = what_if(sim.cp_graph, sim.time, VirtualSpeedup(0.5, kind="compute"))
        assert a.predicted == b.predicted

    def test_whatif_consistent_with_components(self, sim):
        """Eliminating a kind entirely (×→0) can at best remove that kind's
        critical-path share — the Coz sanity bound."""
        assert sim.critical_path is not None
        comp = sim.critical_path.components
        for kind, share in comp.items():
            res = what_if(sim.cp_graph, sim.time,
                          VirtualSpeedup(1e-9, kind=kind))
            saved = sim.time - res.predicted
            assert saved <= share + 1e-9 * sim.time + 1e-12, kind
