"""Serving-layer cost: admission decisions, batch kernels, end-to-end.

Three bars keep the online-service hot paths honest:

* ``serve.admission_throughput`` — pure policy cost of one
  offer→admit/shed decision (token bucket + bounded queue + counters),
  no tree, no event loop.  This sits on every query; it has to stay in
  the microsecond range or admission itself becomes the bottleneck.
* ``serve.knn_batch`` — the batch execution kernel over the resident
  tree (what one micro-batch costs the dispatch thread).
* ``serve.e2e_inline`` — a full unpaced in-process replay through the
  asyncio service (admission, batching, deadline handling, response
  futures), the number the ``--bench`` capacity calibration reflects.

Compare against a baseline with ``repro bench compare``.
"""

import asyncio

import numpy as np

from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    Query,
    ServeConfig,
    TrafficShape,
    execute_queries,
    generate_traffic,
    run_trace,
)
from repro.serve.service import QueryService
from repro.trees import build_tree


@perf_benchmark("serve.admission_throughput", group="serve",
                description="offer->admit/shed decisions through the "
                            "admission controller (token bucket + bounded "
                            "queue + conservation counters)")
def bench_admission(quick=False):
    n = 5_000 if quick else 50_000
    queries = [Query(id=f"q{i}", op="knn", point=np.zeros(3), t=i * 1e-4)
               for i in range(n)]

    def run():
        ctl = AdmissionController(AdmissionConfig(
            queue_capacity=256, rate=n / 4.0, burst=64.0))
        admitted = 0
        for q in queries:
            if ctl.offer(q, q.t) == "admitted":
                admitted += 1
                if ctl.depth >= 200:        # drain like the dispatcher would
                    ctl.queue.clear()
                    ctl.note_served(200)
        c = ctl.counters
        assert c.offered == n
        return {"offered": n, "admitted": c.admitted, "shed": c.shed_total}

    return run


@perf_benchmark("serve.knn_batch", group="serve",
                description="one micro-batch of kNN queries against the "
                            "resident tree (the dispatch-thread unit of work)")
def bench_knn_batch(quick=False):
    n = 2_000 if quick else 20_000
    batch_size = 64
    particles = clustered_clumps(n, seed=17)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    rng = np.random.default_rng(17)
    points = particles.position[rng.integers(0, n, batch_size)]
    wire = [{"id": f"q{i}", "op": "knn", "point": list(p), "k": 8}
            for i, p in enumerate(points)]

    def run():
        out = execute_queries(tree, wire)
        assert len(out) == batch_size and "idx" in out[0]
        return {"n_particles": n, "batch": batch_size}

    return run


@perf_benchmark("serve.e2e_inline", group="serve",
                description="unpaced in-process replay through the full "
                            "asyncio service (admission, micro-batching, "
                            "futures) with the inline executor")
def bench_e2e(quick=False):
    n = 2_000 if quick else 10_000
    n_queries = 200 if quick else 1_000
    shape = TrafficShape(rate=10_000, duration=n_queries / 10_000.0)
    trace = generate_traffic(shape, np.zeros(3), np.ones(3), seed=17,
                             max_queries=n_queries)

    def run():
        service = QueryService(ServeConfig(
            dataset={"kind": "clumps", "n": n, "seed": 17},
            admission=AdmissionConfig(queue_capacity=100_000),
            batch_max=64, batch_wait=0.0, status_every=0.0))

        async def go():
            try:
                return await run_trace(service, trace, pace=False)
            finally:
                await service.stop()

        res = asyncio.run(go())
        assert res.served == len(trace)
        return {"queries": len(trace), "served": res.served,
                "p99_s": round(res.quantile(0.99), 6)}

    return run
