"""A Cartesian Fast Multipole Method on the dual-tree traversal.

The paper's gravity solver "tracks higher order multipole expansions"
citing Greengard & Rokhlin's FMM [4]; dual-tree traversals with ``cell()``
are the §II-A-2 machinery such O(N) solvers need.  This module implements a
second-order Cartesian FMM on exactly those abstractions:

* **P2M/M2M** — node multipoles (mass + raw central quadrupole) about the
  node centroid, extracted with the same prefix-sum fast path as
  :mod:`repro.apps.gravity.centroid`;
* **M2L** — a dual-tree traversal whose Visitor translates a
  well-separated source node's multipole into a *local* Taylor expansion
  of the potential about the target node's centre (``node()``), refines
  non-separated pairs (``open``/``cell``), and evaluates leaf-leaf pairs
  exactly (``leaf()`` — P2P);
* **L2L/L2P** — a downward sweep pushes local expansions from parents to
  children and finally differentiates them at the particles.

Truncation is consistent at second order: local coefficients carry
``c0`` (potential), ``c1`` (field) and ``c2`` (field gradient), with the
source quadrupole contributing through the second and third derivative
tensors of 1/r.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import TraversalStats, get_traverser
from ...core.util import segment_sums
from ...core.visitor import Visitor
from ...trees import SpatialNode, Tree, build_tree
from ...particles import ParticleSet
from .kernels import pairwise_accel

__all__ = ["FMMResult", "FMMVisitor", "compute_fmm_gravity", "derivative_tensors"]


def derivative_tensors(R: np.ndarray) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """g = 1/r and its first three derivative tensors at separation R.

    ``g1_i = ∂_i (1/r)``, ``g2_ij = ∂_i ∂_j (1/r)``,
    ``g3_ijk = ∂_i ∂_j ∂_k (1/r)``; validated against finite differences in
    the test suite.
    """
    R = np.asarray(R, dtype=np.float64)
    r2 = float(R @ R)
    if r2 == 0.0:
        raise ValueError("derivative tensors are singular at R = 0")
    r = np.sqrt(r2)
    inv_r = 1.0 / r
    inv_r3 = inv_r / r2
    inv_r5 = inv_r3 / r2
    inv_r7 = inv_r5 / r2
    eye = np.eye(3)
    g0 = inv_r
    g1 = -R * inv_r3
    g2 = 3.0 * np.outer(R, R) * inv_r5 - eye * inv_r3
    outer3 = np.einsum("i,j,k->ijk", R, R, R)
    sym = (
        np.einsum("i,jk->ijk", R, eye)
        + np.einsum("j,ik->ijk", R, eye)
        + np.einsum("k,ij->ijk", R, eye)
    )
    g3 = -15.0 * outer3 * inv_r7 + 3.0 * sym * inv_r5
    return g0, g1, g2, g3


@dataclass
class _Multipoles:
    """Per-node multipoles about the node centroid."""

    mass: np.ndarray       # (M,)
    center: np.ndarray     # (M, 3) expansion centres (centroids)
    quad: np.ndarray       # (M, 3, 3) raw central second moment Σ m d dᵀ
    radius: np.ndarray     # (M,) bounding radius of particles about centre


def _compute_multipoles(tree: Tree) -> _Multipoles:
    p = tree.particles
    m = p.mass
    mass = segment_sums(m, tree.pstart, tree.pend)
    moment = segment_sums(m[:, None] * p.position, tree.pstart, tree.pend)
    with np.errstate(divide="ignore", invalid="ignore"):
        center = np.where(mass[:, None] > 0, moment / mass[:, None], 0.0)
    xxT = np.einsum("pi,pj->pij", p.position, p.position) * m[:, None, None]
    second = segment_sums(xxT.reshape(len(p), 9), tree.pstart, tree.pend).reshape(-1, 3, 3)
    quad = second - mass[:, None, None] * np.einsum("ni,nj->nij", center, center)
    # Bounding radius: distance from centre to the farthest box corner
    # (cheap, conservative).
    d = np.maximum(np.abs(center - tree.box_lo), np.abs(tree.box_hi - center))
    radius = np.sqrt(np.einsum("ni,ni->n", d, d))
    return _Multipoles(mass=mass, center=center, quad=quad, radius=radius)


class FMMVisitor(Visitor):
    """Dual-tree M2L/P2P visitor accumulating local expansions."""

    def __init__(
        self,
        tree: Tree,
        multipoles: _Multipoles,
        theta: float = 0.5,
        G: float = 1.0,
        softening: float = 0.0,
    ) -> None:
        if not 0 < theta < 1:
            raise ValueError(f"FMM acceptance theta must be in (0, 1), got {theta}")
        self.tree = tree
        self.mp = multipoles
        self.theta = theta
        self.G = G
        self.softening = softening
        n = tree.n_nodes
        self.c0 = np.zeros(n)
        self.c1 = np.zeros((n, 3))
        self.c2 = np.zeros((n, 3, 3))
        self.accel = np.zeros((tree.n_particles, 3))
        self.m2l_count = 0
        self.p2p_pairs = 0

    # -- acceptance ----------------------------------------------------------
    def _well_separated(self, s: int, t: int) -> bool:
        R = self.mp.center[t] - self.mp.center[s]
        r = float(np.linalg.norm(R))
        if r == 0.0:
            return False
        return (self.mp.radius[s] + self.mp.radius[t]) < self.theta * r

    def open(self, source: SpatialNode, target: SpatialNode) -> bool:
        return not self._well_separated(source.index, target.index)

    def cell(self, source: SpatialNode, target: SpatialNode) -> bool:
        if source.index == target.index:
            return True
        # Open the larger side: cell()==True opens both, False only source.
        return self.mp.radius[target.index] >= self.mp.radius[source.index]

    # -- M2L -------------------------------------------------------------------
    def node(self, source: SpatialNode, target: SpatialNode) -> None:
        s, t = source.index, target.index
        M = float(self.mp.mass[s])
        if M == 0.0:
            return
        Q = self.mp.quad[s]
        R = self.mp.center[t] - self.mp.center[s]
        g0, g1, g2, g3 = derivative_tensors(R)
        G = self.G
        # phi(z_t + x) ≈ -G [ M g0 + ½ tr(g2 Q) ]  - G [ M g1 + ½ g3:Q ]·x
        #               - ½ G xᵀ [ M g2 ] x   (+ consistent truncation)
        self.c0[t] += -G * (M * g0 + 0.5 * float(np.einsum("ij,ij->", g2, Q)))
        self.c1[t] += -G * (M * g1 + 0.5 * np.einsum("ijk,jk->i", g3, Q))
        self.c2[t] += -G * (M * g2)
        self.m2l_count += 1

    # -- P2P ----------------------------------------------------------------------
    def leaf(self, source: SpatialNode, target: SpatialNode) -> None:
        tr = self.tree
        s, t = source.index, target.index
        ts, te = int(tr.pstart[t]), int(tr.pend[t])
        ss, se = int(tr.pstart[s]), int(tr.pend[s])
        self.accel[ts:te] += pairwise_accel(
            tr.particles.position[ts:te],
            tr.particles.position[ss:se],
            tr.particles.mass[ss:se],
            self.G,
            self.softening,
        )
        self.p2p_pairs += (te - ts) * (se - ss)

    # -- downward pass ----------------------------------------------------------------
    def downward(self) -> None:
        """L2L from the root down, then L2P at the leaves."""
        tree = self.tree
        for parent in tree.iter_preorder():
            fc = tree.first_child[parent]
            if fc == -1:
                continue
            for child in range(fc, fc + int(tree.n_children[parent])):
                b = self.mp.center[child] - self.mp.center[parent]
                self.c0[child] += (
                    self.c0[parent]
                    + self.c1[parent] @ b
                    + 0.5 * b @ self.c2[parent] @ b
                )
                self.c1[child] += self.c1[parent] + self.c2[parent] @ b
                self.c2[child] += self.c2[parent]
        # L2P: a = -∇phi = -(c1 + c2 x) at x = particle - centre.
        pos = tree.particles.position
        for leaf in tree.leaf_indices:
            s, e = int(tree.pstart[leaf]), int(tree.pend[leaf])
            x = pos[s:e] - self.mp.center[leaf]
            self.accel[s:e] += -(self.c1[leaf][None, :] + x @ self.c2[leaf].T)


@dataclass
class FMMResult:
    tree: Tree
    accel: np.ndarray  # input order
    stats: TraversalStats
    m2l_count: int
    p2p_pairs: int


def compute_fmm_gravity(
    particles_or_tree: ParticleSet | Tree,
    theta: float = 0.5,
    G: float = 1.0,
    softening: float = 0.0,
    tree_type: str = "oct",
    bucket_size: int = 32,
) -> FMMResult:
    """O(N)-style gravity: dual-tree M2L + near-field P2P + downward pass.

    ``theta`` is the well-separatedness acceptance: a node pair interacts
    through multipoles when ``(r_s + r_t) < theta * |R|``; smaller theta is
    more accurate and more expensive.
    """
    if isinstance(particles_or_tree, Tree):
        tree = particles_or_tree
    else:
        tree = build_tree(particles_or_tree, tree_type=tree_type, bucket_size=bucket_size)
    mp = _compute_multipoles(tree)
    visitor = FMMVisitor(tree, mp, theta=theta, G=G, softening=softening)
    stats = get_traverser("dual-tree").traverse(tree, visitor)
    visitor.downward()
    return FMMResult(
        tree=tree,
        accel=tree.particles.scatter_to_input_order(visitor.accel),
        stats=stats,
        m2l_count=visitor.m2l_count,
        p2p_pairs=visitor.p2p_pairs,
    )
