"""Planetesimal-disk case study (paper §IV, Figs 12-13).

A disk of solid planetesimals orbits a star with an embedded giant planet;
gravitational interactions are tracked among all bodies, and the
planetesimals — solid objects with finite radii — are tested for collisions
every step.  Near mean-motion resonances with the planet the eccentricity
pumping makes orbits cross, producing the collision profile of Fig 12.
"""

from .orbits import (
    collision_radial_profile,
    resonance_excess,
    orbital_elements,
    orbital_period,
    resonance_semi_major_axis,
    RESONANCES,
)
from .detector import CollisionEvent, detect_collisions, closest_approach
from .driver import PlanetesimalDriver, CollisionLog

__all__ = [
    "orbital_elements",
    "collision_radial_profile",
    "resonance_excess",
    "orbital_period",
    "resonance_semi_major_axis",
    "RESONANCES",
    "CollisionEvent",
    "detect_collisions",
    "closest_approach",
    "PlanetesimalDriver",
    "CollisionLog",
]
