"""The planetesimal-disk Driver: gravity + collision detection per step.

This is the paper's §IV application: "The iteration step includes tree
building, calculating gravitational forces, and detecting collisions."  The
gravity traversal runs through whichever tree/decomposition the
configuration selects (octree vs longest-dimension is exactly the Fig 13
comparison), collisions are detected in ``postTraversal``, and each event is
logged with the orbital elements of the involved bodies at impact — the raw
data behind Fig 12's profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core import Configuration, Driver
from ...particles.generators import G_AU_MSUN_YR
from ...trees import Tree
from ..gravity import GravityVisitor, compute_centroid_arrays
from .detector import detect_collisions
from .orbits import orbital_elements, orbital_period

__all__ = ["CollisionLog", "PlanetesimalDriver"]


@dataclass
class CollisionLog:
    """Accumulated collision records across a run."""

    times: list[float] = field(default_factory=list)
    distances: list[float] = field(default_factory=list)       # heliocentric r
    semi_major_axes: list[float] = field(default_factory=list)
    periods: list[float] = field(default_factory=list)
    eccentricities: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "time": np.asarray(self.times),
            "distance": np.asarray(self.distances),
            "a": np.asarray(self.semi_major_axes),
            "period": np.asarray(self.periods),
            "e": np.asarray(self.eccentricities),
        }


class PlanetesimalDriver(Driver):
    """Evolve a planetesimal disk with gravity + collision detection.

    Parameters
    ----------
    dt:
        Step in years.  The paper evolves 2 000 yr (~150 perturber orbits);
        scaled runs use fewer.
    theta:
        Gravity opening angle.
    merge:
        When True, colliding pairs merge inelastically (mass-weighted);
        when False collisions are only recorded (the Fig 12 analysis needs
        the record, not the merge).
    """

    def __init__(
        self,
        config: Configuration | None = None,
        dt: float = 0.02,
        theta: float = 0.7,
        softening: float = 1e-4,
        merge: bool = False,
        star_mass: float = 1.0,
    ) -> None:
        super().__init__(config)
        self.dt = dt
        self.theta = theta
        self.softening = softening
        self.merge = merge
        self.star_mass = star_mass
        self.log = CollisionLog()
        self.time = 0.0
        self._visitor: GravityVisitor | None = None

    def prepare(self, tree: Tree) -> None:
        arrays = compute_centroid_arrays(tree, theta=self.theta)
        self._visitor = GravityVisitor(
            tree, arrays, G=G_AU_MSUN_YR, softening=self.softening
        )

    def traversal(self, iteration: int) -> None:
        assert self._visitor is not None
        self.partitions().start_down(self._visitor)

    def post_traversal(self, iteration: int) -> None:
        accel = self._visitor.accel
        p = self.particles
        # Kick-drift (the closing kick folds into the next step's forces:
        # standard for collision codes where positions must be checked
        # mid-drift).
        p.velocity += accel * self.dt
        # Collision check over the upcoming drift segment.
        exclude = p.ptype != 0 if p.has_field("ptype") else None
        events, _ = detect_collisions(
            self.tree, self.dt, exclude_types=exclude
        )
        star_pos, star_vel = self._star_state()
        for ev in events:
            # Elements of one of the two bodies at impact (paper: "the
            # orbital period of one of the two bodies at the moment of
            # impact").
            rel_p = p.position[ev.i] - star_pos
            rel_v = p.velocity[ev.i] - star_vel
            el = orbital_elements(rel_p, rel_v, star_mass=self.star_mass)
            a = float(el["a"][0])
            self.log.times.append(self.time + ev.time)
            self.log.distances.append(float(np.linalg.norm(ev.position - star_pos)))
            self.log.semi_major_axes.append(a)
            self.log.periods.append(float(orbital_period(a, star_mass=self.star_mass)))
            self.log.eccentricities.append(float(el["e"][0]))
        if self.merge and events:
            self._merge_pairs(events)
        p.position += p.velocity * self.dt
        self.time += self.dt

    def checkpoint_state(self) -> dict:
        # The collision log and the accumulated clock are run-level state a
        # resume must carry: losing either breaks the Fig 12 analysis of a
        # recovered run.
        state = {f"log_{k}": v for k, v in self.log.as_arrays().items()}
        state["time"] = np.float64(self.time)
        return state

    def restore_state(self, state: dict) -> None:
        t = state.get("time")
        if t is not None:
            # scalars round-trip through the npz as shape-(1,) arrays
            self.time = float(np.asarray(t).ravel()[0])
        self.log = CollisionLog(
            times=[float(v) for v in np.atleast_1d(state.get("log_time", []))],
            distances=[float(v) for v in np.atleast_1d(state.get("log_distance", []))],
            semi_major_axes=[float(v) for v in np.atleast_1d(state.get("log_a", []))],
            periods=[float(v) for v in np.atleast_1d(state.get("log_period", []))],
            eccentricities=[float(v) for v in np.atleast_1d(state.get("log_e", []))],
        )

    # -- helpers ---------------------------------------------------------------
    def _star_state(self) -> tuple[np.ndarray, np.ndarray]:
        p = self.particles
        if p.has_field("ptype"):
            star = np.flatnonzero(p.ptype == 1)
            if len(star):
                return p.position[star[0]].copy(), p.velocity[star[0]].copy()
        return np.zeros(3), np.zeros(3)

    def _merge_pairs(self, events) -> None:
        """Perfect merging: survivor takes combined mass & momentum; the
        partner is removed from the particle set."""
        p = self.particles
        dead: set[int] = set()
        for ev in events:
            if ev.i in dead or ev.j in dead:
                continue
            mi, mj = float(p.mass[ev.i]), float(p.mass[ev.j])
            tot = mi + mj
            p.position[ev.i] = (mi * p.position[ev.i] + mj * p.position[ev.j]) / tot
            p.velocity[ev.i] = (mi * p.velocity[ev.i] + mj * p.velocity[ev.j]) / tot
            p.mass[ev.i] = tot
            if p.has_field("radius"):
                p.radius[ev.i] = (p.radius[ev.i] ** 3 + p.radius[ev.j] ** 3) ** (1 / 3)
            dead.add(ev.j)
        if dead:
            keep = np.ones(len(p), dtype=bool)
            keep[list(dead)] = False
            self.particles = p.select(keep)
