"""Ablation — load re-balancing strategies (§III-A).

"At this scale of 1536 cores, ParaTreeT's built-in load re-balancers can
reduce this simulation's total runtime by 26%, either by mapping measured
load to the space-filling curve and redistributing it in chunks, or by
aggregating load and assigning it recursively in 3D space."

We measure one real clustered traversal's per-bucket load, re-decompose
with each strategy, and simulate the 1536-core iteration with each
assignment.  Reproduced claim: measured-load balancing cuts the simulated
iteration time by a double-digit percentage vs count-based SFC slicing.
"""

import numpy as np

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.bench import format_table, paper_reference, print_banner
from repro.core import BucketLoadRecorder, InteractionLists, get_traverser
from repro.decomp import decompose, get_decomposer, imbalance
from repro.decomp.loadbalance import sfc_rebalance, spatial_bisection_rebalance
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal, workload_from_traversal
from repro.trees import build_tree

N_PARTITIONS = 256
N_PROC = 64       # x24 workers = the paper's 1536 cores
WORKERS = 24

_CACHE = {}


@perf_benchmark("decomp.rebalance", group="decomp",
                description="measured-load SFC + 3D-bisection rebalance passes")
def perf_rebalance(quick=False):
    particles = clustered_clumps(8_000 if quick else 25_000, seed=29)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    rng = np.random.default_rng(5)
    per_particle = rng.gamma(2.0, 1.0, size=tree.n_particles)

    def run():
        a = sfc_rebalance(tree.particles, per_particle, N_PARTITIONS)
        b = spatial_bisection_rebalance(tree.particles, per_particle,
                                        N_PARTITIONS)
        return {"parts": int(a.max()) + int(b.max()) + 2}

    return run


def _measure():
    if "out" in _CACHE:
        return _CACHE["out"]
    particles = clustered_clumps(25_000, seed=29)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    visitor = GravityVisitor(tree, compute_centroid_arrays(tree, theta=0.7))
    lists = InteractionLists()
    load_rec = BucketLoadRecorder(tree)

    class Both:
        def on_open(self, *a):
            lists.on_open(*a)

        def on_node(self, *a):
            lists.on_node(*a)
            load_rec.on_node(*a)

        def on_leaf(self, *a):
            lists.on_leaf(*a)
            load_rec.on_leaf(*a)

    get_traverser("transposed").traverse(tree, visitor, None, Both())
    per_particle = load_rec.per_particle_load(tree)

    assignments = {
        "LB off (SFC counts)": get_decomposer("sfc").assign(tree.particles, N_PARTITIONS),
        "SFC measured-load": sfc_rebalance(tree.particles, per_particle, N_PARTITIONS),
        "3D bisection load": spatial_bisection_rebalance(
            tree.particles, per_particle, N_PARTITIONS
        ),
    }
    rows = []
    times = {}
    for name, parts in assignments.items():
        dec = decompose(tree, parts, n_subtrees=N_PARTITIONS)
        wl = workload_from_traversal(tree, dec, lists)
        r = simulate_traversal(
            wl, machine=STAMPEDE2, n_processes=N_PROC,
            workers_per_process=WORKERS,
        )
        loads = np.zeros(N_PARTITIONS)
        np.add.at(loads, parts, per_particle)
        rows.append((name, imbalance(loads), r.time))
        times[name] = r.time
    _CACHE["out"] = (rows, times)
    return _CACHE["out"]


def test_loadbalance_ablation(benchmark):
    rows, times = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_banner(f"Ablation: load balancing at {N_PROC * WORKERS} cores")
    print(format_table(["strategy", "work imbalance", "sim iter time (s)"], rows))
    base = times["LB off (SFC counts)"]
    for name in ("SFC measured-load", "3D bisection load"):
        gain = 1 - times[name] / base
        print(f"  {name}: {100 * gain:.1f}% improvement")
    print(f"paper: ~{100 * paper_reference.LB_IMPROVEMENT_AT_1536:.0f}% at 1536 cores")

    # Both measured-load strategies beat counts-based decomposition by a
    # double-digit margin at this scale.
    assert times["SFC measured-load"] < 0.9 * base
    assert times["3D bisection load"] < 0.95 * base
    # And they actually balance the measured work better.
    imb = {name: v for name, v, _ in rows}
    assert imb["SFC measured-load"] < imb["LB off (SFC counts)"]
