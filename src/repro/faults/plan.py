"""Deterministic fault plans: what can go wrong, how often, from which seed.

A :class:`FaultPlan` is a pure description — probabilities, factors, and a
seed — with no mutable state, so the same plan object can drive any number
of runs and every run with the same plan is bit-identical.  Plans are
usually written as compact specs (the ``--faults`` CLI grammar)::

    drop=0.05,dup=0.01,jitter=0.3,fail=0.1,seed=42
    straggler=0.25x4,crash=0.5@0.25,retries=8,timeout=40

Grammar (comma-separated ``key=value`` pairs, all optional):

``drop=P``
    Each message leg (request out, response back) is lost with
    probability ``P``.
``dup=P``
    Each surviving message leg is delivered twice with probability ``P``
    (the copy takes its own jittered latency, so it may arrive reordered).
``jitter=J``
    Message latency is multiplied by ``1 + U(0, J)`` per leg; any ``J > 0``
    makes same-route messages reorder.
``fail=P``
    A fill/insertion fails transiently with probability ``P`` after the
    data arrived (deserialization error, allocation failure, ...).  The
    placeholder is re-armed and the request retried.
``straggler=FxS``
    Each process is a straggler with probability ``F``; stragglers run all
    worker tasks ``S`` times slower (default slowdown 4 when ``xS`` is
    omitted).
``crash=P@R``
    Each process crashes once with probability ``P`` at a uniformly drawn
    time; it restarts after ``R`` × the estimated fault-free iteration time
    (default 0.25 when ``@R`` is omitted) with a cold cache, and all
    responses in flight to it are lost.
``seed=N``
    Seed for every random decision above (default 0).
``retries=N`` / ``timeout=F`` / ``backoff=B``
    Retry policy knobs, see :class:`~repro.cache.models.RetryPolicy`:
    attempt cap, timeout as a multiple of the fault-free round-trip
    estimate, and the exponential backoff base.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cache.models import RetryPolicy

__all__ = ["FaultPlan", "NO_FAULTS", "parse_fault_spec"]


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven description of every fault class the injector can apply.

    All probabilities default to zero, so ``FaultPlan()`` is a valid "no
    faults" plan (useful for measuring injector overhead: the machinery is
    armed but never fires, and results are bit-identical to a run with no
    injector at all).
    """

    seed: int = 0
    #: probability a message leg is dropped
    drop: float = 0.0
    #: probability a surviving message leg is duplicated
    duplicate: float = 0.0
    #: latency multiplier spread: latency *= 1 + U(0, jitter)
    jitter: float = 0.0
    #: probability a fill fails transiently after the data arrived
    fill_failure: float = 0.0
    #: probability a process is a straggler
    straggler_fraction: float = 0.0
    #: service-time multiplier on straggler processes
    straggler_slowdown: float = 4.0
    #: probability a process crashes (once) during the iteration
    crash: float = 0.0
    #: restart delay as a fraction of the estimated fault-free makespan
    crash_restart: float = 0.25
    #: timeout / backoff / attempt-cap policy for request retries
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "fill_failure", "straggler_fraction", "crash"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {p}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.straggler_slowdown < 1:
            raise ValueError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        if self.crash_restart < 0:
            raise ValueError(f"crash_restart must be >= 0, got {self.crash_restart}")

    @property
    def any_faults(self) -> bool:
        """True when at least one fault class can actually fire."""
        return any(
            p > 0
            for p in (
                self.drop, self.duplicate, self.jitter, self.fill_failure,
                self.straggler_fraction, self.crash,
            )
        )

    def with_(self, **changes) -> "FaultPlan":
        """A copy with some fields replaced (plans are frozen)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "jitter": self.jitter,
            "fill_failure": self.fill_failure,
            "straggler_fraction": self.straggler_fraction,
            "straggler_slowdown": self.straggler_slowdown,
            "crash": self.crash,
            "crash_restart": self.crash_restart,
            "max_attempts": self.retry.max_attempts,
            "timeout_factor": self.retry.timeout_factor,
            "backoff": self.retry.backoff,
        }

    def describe(self) -> str:
        """The plan back in spec-grammar form (round-trips through
        :func:`parse_fault_spec`)."""
        parts = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate:g}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:g}")
        if self.fill_failure:
            parts.append(f"fail={self.fill_failure:g}")
        if self.straggler_fraction:
            parts.append(
                f"straggler={self.straggler_fraction:g}x{self.straggler_slowdown:g}"
            )
        if self.crash:
            parts.append(f"crash={self.crash:g}@{self.crash_restart:g}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


#: The shared "nothing ever goes wrong" plan.
NO_FAULTS = FaultPlan()


def _parse_prob(key: str, text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"fault spec: {key}={text!r} is not a number") from None
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"fault spec: {key}={value} must be in [0, 1]")
    return value


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the ``--faults`` grammar (see module docstring) into a plan."""
    fields: dict = {}
    retry: dict = {}
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        if "=" not in raw:
            raise ValueError(f"fault spec: expected key=value, got {raw!r}")
        key, _, value = raw.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "drop":
            fields["drop"] = _parse_prob(key, value)
        elif key in ("dup", "duplicate"):
            fields["duplicate"] = _parse_prob(key, value)
        elif key == "jitter":
            fields["jitter"] = float(value)
        elif key in ("fail", "fill_failure"):
            fields["fill_failure"] = _parse_prob(key, value)
        elif key == "straggler":
            frac, _, slow = value.partition("x")
            fields["straggler_fraction"] = _parse_prob(key, frac)
            if slow:
                fields["straggler_slowdown"] = float(slow)
        elif key == "crash":
            prob, _, restart = value.partition("@")
            fields["crash"] = _parse_prob(key, prob)
            if restart:
                fields["crash_restart"] = float(restart)
        elif key == "seed":
            fields["seed"] = int(value)
        elif key == "retries":
            retry["max_attempts"] = int(value)
        elif key == "timeout":
            retry["timeout_factor"] = float(value)
        elif key == "backoff":
            retry["backoff"] = float(value)
        else:
            raise ValueError(f"fault spec: unknown key {key!r}")
    if retry:
        fields["retry"] = RetryPolicy(**retry)
    return FaultPlan(**fields)
