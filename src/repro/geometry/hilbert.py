"""3-D Hilbert space-filling-curve keys (Skilling's transpose algorithm).

Morton keys (the default SFC) have locality discontinuities: consecutive
key ranges can jump across the volume at octant boundaries.  The Hilbert
curve visits every cell of the grid through face-adjacent steps, giving
decomposition slices with smaller surface area — less leaf sharing and
fewer remote fetches at partition borders.  The framework exposes it as a
drop-in alternative (``decomp_type="hilbert"``).

Implementation: John Skilling, "Programming the Hilbert curve", AIP Conf.
Proc. 707 (2004).  Coordinates are mutated in place to the "transposed"
Hilbert representation and then bit-interleaved; the inverse applies the
steps backwards.  All operations are vectorised over the particle arrays
with uint64 bit arithmetic; the per-bit loop runs ``HILBERT_BITS`` times.
"""

from __future__ import annotations

import numpy as np

from .box import Box3
from .morton import MORTON_BITS, MORTON_MAX_COORD, morton_encode, normalize_to_grid

__all__ = ["HILBERT_BITS", "hilbert_encode", "hilbert_decode", "hilbert_keys"]

#: Bits of resolution per dimension (same grid as the Morton keys).
HILBERT_BITS = MORTON_BITS


def _axes_to_transpose(x: np.ndarray, y: np.ndarray, z: np.ndarray):
    """Forward Skilling transform: grid coords -> transposed Hilbert."""
    X = [x.astype(np.uint64).copy(), y.astype(np.uint64).copy(), z.astype(np.uint64).copy()]
    one = np.uint64(1)
    M = np.uint64(1) << np.uint64(HILBERT_BITS - 1)

    # Inverse undo excess work (from Skilling's TransposetoAxes run forward).
    Q = M
    while Q > one:
        P = Q - one
        for i in range(3):
            swap = (X[i] & Q) != 0
            # invert low bits of X[0] where the Q bit of X[i] is set
            X[0] = np.where(swap, X[0] ^ P, X[0])
            # exchange low bits of X[i] and X[0] where not set
            t = (X[0] ^ X[i]) & P
            t = np.where(swap, np.uint64(0), t)
            X[0] ^= t
            X[i] ^= t
        Q >>= one

    # Gray encode.
    for i in range(1, 3):
        X[i] ^= X[i - 1]
    t = np.zeros_like(X[0])
    Q = M
    while Q > one:
        t = np.where((X[2] & Q) != 0, t ^ (Q - one), t)
        Q >>= one
    for i in range(3):
        X[i] ^= t
    return X


def _transpose_to_axes(X: list[np.ndarray]):
    """Inverse Skilling transform: transposed Hilbert -> grid coords."""
    X = [x.astype(np.uint64).copy() for x in X]
    one = np.uint64(1)
    N = np.uint64(2) << np.uint64(HILBERT_BITS - 1)

    # Gray decode by H ^ (H/2).
    t = X[2] >> one
    for i in range(2, 0, -1):
        X[i] ^= X[i - 1]
    X[0] ^= t

    # Undo excess work.
    Q = np.uint64(2)
    while Q != N:
        P = Q - one
        for i in range(2, -1, -1):
            swap = (X[i] & Q) != 0
            X[0] = np.where(swap, X[0] ^ P, X[0])
            t = (X[0] ^ X[i]) & P
            t = np.where(swap, np.uint64(0), t)
            X[0] ^= t
            X[i] ^= t
        Q <<= one
    return X


def hilbert_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Hilbert keys for integer grid coordinates -> (N,) uint64.

    The transposed representation is interleaved with the Morton bit
    spreader (axis 0 carries the most significant bit of each triple, so
    it lands in the z slot of the interleave to preserve significance
    ordering).
    """
    ix = np.asarray(ix, dtype=np.uint64)
    iy = np.asarray(iy, dtype=np.uint64)
    iz = np.asarray(iz, dtype=np.uint64)
    if np.any(ix > MORTON_MAX_COORD) or np.any(iy > MORTON_MAX_COORD) or np.any(
        iz > MORTON_MAX_COORD
    ):
        raise ValueError(f"grid coordinates exceed {HILBERT_BITS}-bit range")
    X = _axes_to_transpose(ix, iy, iz)
    # In the transposed form, bit b of X[0] X[1] X[2] (in that order) makes
    # up the b-th most significant key triple.
    return morton_encode(X[2], X[1], X[0])


def hilbert_decode(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_encode`."""
    from .morton import morton_decode

    k2, k1, k0 = morton_decode(np.asarray(keys, dtype=np.uint64))
    X = _transpose_to_axes([k0, k1, k2])
    return X[0], X[1], X[2]


def hilbert_keys(points: np.ndarray, box: Box3) -> np.ndarray:
    """Hilbert key of each point in the universe ``box`` -> (N,) uint64."""
    grid = normalize_to_grid(points, box)
    return hilbert_encode(grid[:, 0], grid[:, 1], grid[:, 2])
