"""Differential engine/backend equivalence harness.

This is the template for validating any future traversal engine or
execution backend: run one workload through every (engine × backend ×
worker-count) combination and require

* **bit-identical outputs** — accelerations, densities, neighbour sets —
  against the serial oracle (``np.array_equal``, not allclose);
* **equal interaction counts** — the :class:`TraversalStats` fields that
  count work (opens, node/leaf/pp/pn interactions, targets).
  ``nodes_visited`` is deliberately excluded: the transposed engine visits
  a node once per *batch*, so chunking the targets legitimately revisits
  upper nodes (the interaction set is unchanged — the property the paper's
  engines guarantee and Curtin et al.'s tree-independent framing formalises);
* **equal per-target interaction lists** when a recorder is attached.

Usage::

    base = differential_matrix(tree, "transposed", make_visitor, collect)

where ``make_visitor(tree)`` builds a fresh visitor and ``collect(visitor)``
returns a dict of output arrays to compare.  Visitors used with the
``processes`` backend must be defined in an importable module (like the
:class:`CountInRadiusVisitor` here), not in a test function body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.traverser import InteractionLists, TraversalStats
from repro.core.visitor import Visitor
from repro.exec import get_backend
from repro.geometry.box import boxes_box_distance_sq
from repro.trees import Tree

__all__ = [
    "INTERACTION_KEYS",
    "BACKENDS",
    "WORKER_COUNTS",
    "TREE_BUILDERS",
    "RunResult",
    "CountInRadiusVisitor",
    "run_combination",
    "assert_equivalent",
    "differential_matrix",
    "attribution_matrix",
    "builder_differential_matrix",
]

#: TraversalStats fields that must be invariant across engines' batching
#: and across backends' chunking (everything except nodes_visited).
INTERACTION_KEYS = (
    "opens",
    "node_interactions",
    "leaf_interactions",
    "pp_interactions",
    "pn_interactions",
    "targets",
)

BACKENDS = ("serial", "threads", "processes")
WORKER_COUNTS = (1, 2, 4)
#: Tree construction algorithms (PR 10): the linear builder must be
#: byte-identical to the recursive one, so it joins the matrix as a third
#: axis — every engine/backend/worker combination must produce the same
#: bits regardless of how the tree was built.
TREE_BUILDERS = ("recursive", "linear")


@dataclass
class RunResult:
    """One (engine, backend, workers) run, reduced to comparable pieces."""

    label: str
    outputs: dict[str, np.ndarray]
    counts: dict[str, int]
    stats: TraversalStats
    lists: InteractionLists | None = None
    mode: str = "serial"
    extra: dict[str, Any] = field(default_factory=dict)


class CountInRadiusVisitor(Visitor):
    """Integer-exact fixed-radius pair counter (hypothesis workhorse).

    Counts, per particle, how many *other* particles lie within ``radius``.
    Integer outputs make every comparison exact regardless of evaluation
    order, so any engine/backend discrepancy is a real traversal bug, never
    floating-point reassociation.
    """

    exec_shareable = True

    def __init__(self, tree: Tree, radius: float) -> None:
        self.tree = tree
        self.radius = float(radius)
        self.r2 = self.radius * self.radius
        self.counts = np.zeros(tree.n_particles, dtype=np.int64)

    # a source box farther from the target box than the radius cannot
    # contribute any pair, so node() on pruned nodes is correctly a no-op
    def open(self, source, target) -> bool:
        t = self.tree
        d2 = boxes_box_distance_sq(
            t.box_lo[source.index], t.box_hi[source.index],
            t.box_lo[target.index], t.box_hi[target.index],
        )
        return bool(d2 <= self.r2)

    def node(self, source, target) -> None:
        pass

    def leaf(self, source, target) -> None:
        self._count(int(source.index), np.array([int(target.index)]))

    def open_batch(self, tree: Tree, source: int, targets: np.ndarray) -> np.ndarray:
        return boxes_box_distance_sq(
            tree.box_lo[targets], tree.box_hi[targets],
            tree.box_lo[source], tree.box_hi[source],
        ) <= self.r2

    def node_batch(self, tree: Tree, source: int, targets: np.ndarray) -> None:
        pass

    def leaf_batch(self, tree: Tree, source: int, targets: np.ndarray) -> None:
        self._count(source, np.asarray(targets))

    def open_sources(self, tree: Tree, sources: np.ndarray, target: int) -> np.ndarray:
        return boxes_box_distance_sq(
            tree.box_lo[sources], tree.box_hi[sources],
            tree.box_lo[target], tree.box_hi[target],
        ) <= self.r2

    def node_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        pass

    def leaf_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        for s in np.asarray(sources):
            self._count(int(s), np.array([target]))

    def _count(self, source: int, targets: np.ndarray) -> None:
        t = self.tree
        pos = t.particles.position
        ss, se = int(t.pstart[source]), int(t.pend[source])
        src_idx = np.arange(ss, se)
        for tgt in targets:
            ts, te = int(t.pstart[tgt]), int(t.pend[tgt])
            tgt_idx = np.arange(ts, te)
            d = pos[src_idx][None, :, :] - pos[tgt_idx][:, None, :]
            d2 = np.einsum("tcj,tcj->tc", d, d)
            within = d2 <= self.r2
            within &= tgt_idx[:, None] != src_idx[None, :]  # exclude self
            self.counts[ts:te] += within.sum(axis=1)

    # -- parallel-execution protocol ---------------------------------------
    def exec_config(self) -> dict:
        return {"radius": self.radius}

    @classmethod
    def exec_rebuild(cls, tree, arrays, config) -> "CountInRadiusVisitor":
        return cls(tree, config["radius"])

    def exec_collect(self, tree, targets):
        from repro.core.util import ranges_to_indices

        rows = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        return {"counts": self.counts[rows]}

    def exec_apply(self, tree, targets, outputs) -> None:
        from repro.core.util import ranges_to_indices

        rows = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        self.counts[rows] = outputs["counts"]


def brute_force_radius_counts(positions: np.ndarray, radius: float) -> np.ndarray:
    """O(N²) oracle for :class:`CountInRadiusVisitor`."""
    d = positions[None, :, :] - positions[:, None, :]
    d2 = np.einsum("ijc,ijc->ij", d, d)
    within = d2 <= radius * radius
    np.fill_diagonal(within, False)
    return within.sum(axis=1).astype(np.int64)


def run_combination(
    tree: Tree,
    engine: str,
    make_visitor: Callable[[Tree], Visitor],
    collect: Callable[[Visitor], dict[str, np.ndarray]],
    backend: str = "serial",
    workers: int = 1,
    record: bool = False,
    decomposition=None,
    backend_opts: dict[str, Any] | None = None,
) -> RunResult:
    """Run one (engine, backend, workers) combination and package results.

    ``backend_opts`` passes through to :func:`~repro.exec.get_backend`
    (e.g. ``supervise=...`` / ``exec_faults=...`` for fault-recovery
    differential runs); the backend's supervision outcome, when any, lands
    in ``RunResult.extra["supervision"]``.
    """
    visitor = make_visitor(tree)
    recorder = InteractionLists() if record else None
    b = get_backend(backend, workers=workers, **(backend_opts or {}))
    try:
        stats = b.run(
            tree, engine, visitor, recorder=recorder, decomposition=decomposition
        )
        mode = b.last_mode
        supervision = b.last_supervision
    finally:
        b.shutdown()
    as_dict = stats.as_dict()
    return RunResult(
        label=f"{engine}/{backend}/w{workers}",
        outputs={k: np.asarray(v) for k, v in collect(visitor).items()},
        counts={k: as_dict[k] for k in INTERACTION_KEYS},
        stats=stats,
        lists=recorder,
        mode=mode,
        extra={"supervision": supervision} if supervision is not None else {},
    )


def assert_equivalent(base: RunResult, other: RunResult) -> None:
    """Bit-identical outputs + equal interaction counts (+ equal lists)."""
    assert base.outputs.keys() == other.outputs.keys(), (
        f"{other.label}: output keys differ from {base.label}"
    )
    for name in base.outputs:
        a, b = base.outputs[name], other.outputs[name]
        assert a.dtype == b.dtype and a.shape == b.shape, (
            f"{other.label}: {name} dtype/shape {b.dtype}{b.shape} != "
            f"{a.dtype}{a.shape} ({base.label})"
        )
        assert np.array_equal(a, b, equal_nan=True), (
            f"{other.label}: {name} not bit-identical to {base.label} "
            f"(max |diff| = {np.max(np.abs(a - b)) if a.size else 0})"
        )
    assert base.counts == other.counts, (
        f"{other.label}: interaction counts {other.counts} != "
        f"{base.counts} ({base.label})"
    )
    if base.lists is not None and other.lists is not None:
        for attr in ("node_lists", "leaf_lists", "visited"):
            mine = getattr(base.lists, attr)
            theirs = getattr(other.lists, attr)
            assert mine == theirs, f"{other.label}: recorder {attr} differs"


def attribution_matrix(
    tree: Tree,
    engine: str,
    make_visitor: Callable[[Tree], Visitor],
    backends: tuple[str, ...] = BACKENDS,
    workers: tuple[int, ...] = WORKER_COUNTS,
    decomposition=None,
):
    """Assert the attribution arrays are **bit-identical** for every
    (backend × workers) combination against the serial oracle.

    This is the acceptance contract of ``repro.obs.attr``: integer
    counters scattered with ``np.add.at``, forks absorbed in chunk order —
    so chunking and scheduling must be invisible in the arrays, down to
    the last bit.  Returns the serial :class:`AttributionRecorder`.
    """
    from repro.obs import AttributionRecorder
    from repro.obs.attr import ARRAY_FIELDS

    def run_one(backend: str, w: int) -> AttributionRecorder:
        visitor = make_visitor(tree)
        rec = AttributionRecorder(tree.n_nodes)
        b = get_backend(backend, workers=w)
        try:
            b.run(tree, engine, visitor, recorder=rec,
                  decomposition=decomposition)
        finally:
            b.shutdown()
        return rec

    base = run_one("serial", 1)
    for backend in backends:
        if backend == "serial":
            continue
        for w in workers:
            other = run_one(backend, w)
            for name in ARRAY_FIELDS:
                a = getattr(base, name)
                b_arr = getattr(other, name)
                assert np.array_equal(a, b_arr), (
                    f"{engine}/{backend}/w{w}: attribution array {name!r} "
                    f"diverged from serial "
                    f"(first diff at node {int(np.argmax(a != b_arr))})"
                )
            assert np.array_equal(base.cost_ns(), other.cost_ns())
    return base


def differential_matrix(
    tree: Tree,
    engine: str,
    make_visitor: Callable[[Tree], Visitor],
    collect: Callable[[Visitor], dict[str, np.ndarray]],
    backends: tuple[str, ...] = BACKENDS,
    workers: tuple[int, ...] = WORKER_COUNTS,
    record: bool = False,
    decomposition=None,
    expect_parallel: bool = False,
) -> RunResult:
    """Assert serial ≡ every (backend × workers) combination; returns the
    serial oracle result for further checks."""
    base = run_combination(
        tree, engine, make_visitor, collect, "serial", 1,
        record=record, decomposition=decomposition,
    )
    for backend in backends:
        if backend == "serial":
            continue
        for w in workers:
            other = run_combination(
                tree, engine, make_visitor, collect, backend, w,
                record=record, decomposition=decomposition,
            )
            if expect_parallel and w > 1:
                assert other.mode == "parallel", (
                    f"{other.label}: expected parallel execution, "
                    f"got {other.mode}"
                )
            assert_equivalent(base, other)
    return base


def builder_differential_matrix(
    particles,
    engine: str,
    make_visitor: Callable[[Tree], Visitor],
    collect: Callable[[Visitor], dict[str, np.ndarray]],
    bucket_size: int = 16,
    builders: tuple[str, ...] = TREE_BUILDERS,
    backends: tuple[str, ...] = BACKENDS,
    workers: tuple[int, ...] = WORKER_COUNTS,
    record: bool = False,
) -> RunResult:
    """Pin the full (builder × backend × workers) cube bit-identical for one
    engine.

    One tree per builder; the linear builder's byte-identical-tree contract
    means outputs across builders share the particle permutation, so they
    compare with ``np.array_equal`` directly.  Returns the recursive-build
    serial oracle.
    """
    from repro.trees import build_tree

    base = None
    for builder in builders:
        tree = build_tree(particles.copy(), bucket_size=bucket_size,
                          builder=builder)
        result = differential_matrix(
            tree, engine, make_visitor, collect,
            backends=backends, workers=workers, record=record,
        )
        result.label = f"{builder}/{result.label}"
        if base is None:
            base = result
        else:
            assert_equivalent(base, result)
    return base
