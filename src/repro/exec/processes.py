"""Process pool backend: zero-copy shared arrays, partition-ordered reduce.

The parent packs the tree topology, particle fields, and the visitor's
shared arrays into one :class:`~repro.exec.shm.ShmArena`
(``multiprocessing.shared_memory``).  Workers attach read-only views — no
serialisation of the large SoA data ever happens — rebuild the
:class:`~repro.trees.Tree` and a worker-local visitor over those views
(``exec_rebuild``), traverse their chunk, and send back only the small
per-chunk outputs (``exec_collect``), stats, and fork recorders.

The parent then reduces **in chunk order** (``exec_apply`` + stats merge +
recorder absorb), never completion order — with disjoint per-chunk target
rows and serial per-target evaluation order inside each chunk, that makes
the result bit-identical to a serial run for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import numpy as np

from ..core.traverser import Recorder, TraversalStats, Traverser, get_traverser
from ..trees import Tree
from .backend import ExecutionBackend, register_backend
from .shm import ShmArena, attach_arena

__all__ = ["ProcessBackend"]

_TREE_FIELDS = (
    "parent", "first_child", "n_children", "pstart", "pend",
    "box_lo", "box_hi", "level", "key",
)

#: worker-side cache of attached arenas/trees, keyed by shm segment name
_WORKER_TREES: dict[str, tuple[Any, Tree, dict[str, np.ndarray]]] = {}
_WORKER_CACHE_LIMIT = 2


def _attach_tree(handle, meta) -> tuple[Tree, dict[str, np.ndarray]]:
    """Attach (or reuse) the arena named in ``handle`` and rebuild the tree.

    Rebuilding is zero-copy: every Tree/ParticleSet array is a read-only
    view straight into the shared segment (``ascontiguousarray`` on a
    contiguous matching-dtype view is the identity).
    """
    name = handle[0]
    cached = _WORKER_TREES.get(name)
    if cached is not None:
        return cached[1], cached[2]
    while len(_WORKER_TREES) >= _WORKER_CACHE_LIMIT:
        _, (old_arena, _, _) = _WORKER_TREES.popitem()
        old_arena.close()
    arena = attach_arena(handle)
    from ..particles import ParticleSet

    part_fields = {
        k[len("part."):]: v for k, v in arena.arrays.items() if k.startswith("part.")
    }
    particles = ParticleSet.from_arrays(part_fields)
    tree = Tree(
        particles,
        *[arena.arrays[f"tree.{f}"] for f in _TREE_FIELDS],
        tree_type=meta["tree_type"],
        bucket_size=meta["bucket_size"],
    )
    vis_arrays = {
        k[len("vis."):]: v for k, v in arena.arrays.items() if k.startswith("vis.")
    }
    _WORKER_TREES[name] = (arena, tree, vis_arrays)
    return tree, vis_arrays


def _worker_run(
    handle,
    meta,
    engine_name: str,
    visitor_cls: type,
    config: dict[str, Any],
    chunk: np.ndarray,
    fork: Recorder | None,
):
    """Module-level worker entry point (must be picklable by reference)."""
    t0 = time.perf_counter()
    tree, vis_arrays = _attach_tree(handle, meta)
    visitor = visitor_cls.exec_rebuild(tree, vis_arrays, config)
    stats = get_traverser(engine_name)._traverse(tree, visitor, chunk, fork)
    outputs = visitor.exec_collect(tree, chunk)
    t1 = time.perf_counter()
    return stats, outputs, fork, t1 - t0, os.getpid()


class ProcessBackend(ExecutionBackend):
    """Run chunks on a persistent fork-context :class:`ProcessPoolExecutor`."""

    name = "processes"

    def __init__(self, workers: int | None = None, start_method: str | None = None) -> None:
        super().__init__(workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None

    def _supports(self, visitor: Any) -> bool:
        # Processes need the full exec protocol: shared arrays out, config
        # over the wire, per-chunk outputs back.
        return getattr(visitor, "exec_config", lambda: None)() is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._pool

    def _run_chunks(
        self,
        engine: Traverser,
        tree: Tree,
        visitor: Any,
        chunks: list[np.ndarray],
        forks: list[Recorder] | None,
        shared_cache=None,
    ) -> TraversalStats:
        pool = self._ensure_pool()
        shared: dict[str, np.ndarray] = {}
        for f in _TREE_FIELDS:
            shared[f"tree.{f}"] = getattr(tree, f)
        for f in tree.particles.field_names:
            shared[f"part.{f}"] = tree.particles[f]
        for k, v in visitor.exec_arrays().items():
            shared[f"vis.{k}"] = v
        meta = {"tree_type": tree.tree_type, "bucket_size": tree.bucket_size}
        config = visitor.exec_config()
        arena = ShmArena(shared)
        try:
            futures = [
                pool.submit(
                    _worker_run, arena.handle, meta, engine.name,
                    type(visitor), config, c, forks[i] if forks else None,
                )
                for i, c in enumerate(chunks)
            ]
            results = [f.result() for f in futures]  # chunk order, not completion
        finally:
            arena.dispose()

        total = TraversalStats()
        tasks = []
        lanes: dict[int, int] = {}
        now = time.perf_counter()
        for i, (stats, outputs, fork, duration, pid) in enumerate(results):
            total.merge(stats)
            visitor.exec_apply(tree, chunks[i], outputs)
            if forks is not None and fork is not None:
                # the fork round-tripped through pickle; swap the filled
                # copy in so backend.run absorbs it in chunk order
                forks[i] = fork
            lane = lanes.setdefault(pid, len(lanes))
            # workers time on their own clock; anchor each span at the
            # parent-side collection point so lanes line up in the trace
            tasks.append({
                "chunk": i, "targets": len(chunks[i]),
                "start": now - duration, "end": now, "lane": lane,
                "worker": f"pid-{pid}",
            })
        self._record_tasks(tasks)
        return total

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


register_backend(ProcessBackend.name, ProcessBackend)
