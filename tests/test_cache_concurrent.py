"""The functional shared-memory tree cache under real threads (paper §II-B).

The invariant under test is the paper's: "This wait-free model maintains the
software cache in a valid state at all times" — readers racing concurrent
fills never observe a half-built subtree.
"""

import threading

import pytest

from repro.cache import SharedTreeCache
from repro.decomp import SfcDecomposer, decompose
from repro.particles import clustered_clumps
from repro.trees import build_tree


@pytest.fixture(scope="module")
def setup():
    p = clustered_clumps(1500, seed=19)
    tree = build_tree(p, tree_type="oct", bucket_size=16)
    parts = SfcDecomposer().assign(tree.particles, 4)
    dec = decompose(tree, parts, n_subtrees=8)
    node_proc = dec.node_process()
    return tree, dec, node_proc


def _collect_placeholders(cache):
    out = []
    stack = [(None, None, cache.root)]
    while stack:
        parent, slot, entry = stack.pop()
        if entry.is_placeholder:
            out.append((parent, slot))
        else:
            for i, child in enumerate(entry.children):
                stack.append((entry, i, child))
    return out


class TestBootstrap:
    def test_local_subtrees_materialised(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0)
        cache.validate()
        # local leaves are reachable without any fill
        local_leaves = [
            int(l) for l in tree.leaf_indices if node_proc[l] in (-1, 0)
        ]
        for leaf in local_leaves[:10]:
            assert cache.find(int(tree.key[leaf])) is not None

    def test_remote_data_is_placeholder(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, shared_branch_levels=2)
        placeholders = _collect_placeholders(cache)
        assert placeholders, "a multi-process decomposition must have remote data"
        for parent, slot in placeholders:
            entry = parent.children[slot]
            assert node_proc[entry.node_index] not in (-1, 0)

    def test_shared_branch_replicated(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=1, shared_branch_levels=3)
        # every node above level 3 is present (not a placeholder)
        stack = [cache.root]
        seen_levels = []
        while stack:
            e = stack.pop()
            if not e.is_placeholder:
                seen_levels.append(int(tree.level[e.node_index]))
                stack.extend(e.children)
        assert min(seen_levels) == 0

    def test_payload_fn(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, payload_fn=lambda i: i * 2)
        assert cache.root.payload == 0  # root index 0 -> payload 0
        stack = [cache.root]
        while stack:
            e = stack.pop()
            if not e.is_placeholder:
                assert e.payload == e.node_index * 2
                stack.extend(e.children)


class TestFillProtocol:
    def test_fill_materialises_and_dedupes(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2)
        placeholders = _collect_placeholders(cache)
        parent, slot = placeholders[0]
        resumed = []
        first = cache.request_fill(parent, slot, on_resume=lambda: resumed.append(1))
        assert first
        assert resumed == [1]
        entry = parent.children[slot]
        assert not entry.is_placeholder
        cache.validate()
        # second request for the same slot is a no-op hit
        again = cache.request_fill(parent, slot, on_resume=lambda: resumed.append(2))
        assert not again
        assert resumed == [1, 2]
        assert cache.requests_sent == 1

    def test_fill_ships_limited_depth(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=1)
        placeholders = _collect_placeholders(cache)
        parent, slot = placeholders[0]
        cache.request_fill(parent, slot)
        entry = parent.children[slot]
        # the fill brings the node + 1 level; grandchildren are placeholders
        for child in entry.children:
            for grand in child.children:
                assert grand.is_placeholder or node_proc[grand.node_index] in (-1, 0)

    def test_fill_everything_completes_tree(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=2, nodes_per_request=3)
        for _ in range(10_000):
            placeholders = _collect_placeholders(cache)
            if not placeholders:
                break
            cache.request_fill(*placeholders[0])
        cache.validate()
        assert not _collect_placeholders(cache)
        # every leaf of the global tree is now reachable
        for leaf in tree.leaf_indices[::17]:
            assert cache.find(int(tree.key[leaf])) is not None


class TestThreadSafety:
    def test_concurrent_fills_and_reads_keep_validity(self, setup):
        """Hammer the cache with racing reader and filler threads; the
        validity invariant must hold at every observation point."""
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2)
        errors = []
        stop = threading.Event()

        def filler():
            try:
                while not stop.is_set():
                    ph = _collect_placeholders(cache)
                    if not ph:
                        return
                    for parent, slot in ph[:4]:
                        cache.request_fill(parent, slot)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    cache.validate()
                    # walk: every reachable non-placeholder must be wired
                    stack = [cache.root]
                    while stack:
                        e = stack.pop()
                        if not e.is_placeholder:
                            assert isinstance(e.children, tuple)
                            stack.extend(e.children)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=filler) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads[:4]:
            t.join(timeout=30)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        cache.validate()
        assert not _collect_placeholders(cache)

    def test_request_flag_claimed_once_under_contention(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0)
        placeholders = _collect_placeholders(cache)
        parent, slot = placeholders[0]
        placeholder = parent.children[slot]
        wins = []
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            if placeholder.try_claim_request():
                wins.append(1)

        threads = [threading.Thread(target=claim) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestLostWaiterRace:
    def test_late_park_resumes_immediately(self, setup):
        """The lost-waiter race: a waiter that parks after the filler has
        drained the list must be resumed immediately, not parked forever."""
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2)
        parent, slot = _collect_placeholders(cache)[0]
        placeholder = parent.children[slot]
        # Fill completes first (drains the waiter list and sets _filled)...
        assert cache.request_fill(parent, slot)
        resumed = []
        # ...then a straggling traversal, still holding the placeholder
        # reference, tries to park on it: park() refuses (the list is
        # already drained) and the caller resumes directly.
        assert placeholder.park(lambda: resumed.append("stranded")) is False
        assert cache.request_fill(parent, slot, on_resume=lambda: resumed.append("direct")) is False
        assert resumed == ["direct"]

    def test_park_and_complete_are_atomic(self, setup):
        """Hammer park() against complete_fill(): every parked waiter is
        either drained by the filler or told to resume directly — none are
        stranded."""
        tree, dec, node_proc = setup
        for trial in range(50):
            cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2)
            parent, slot = _collect_placeholders(cache)[0]
            placeholder = parent.children[slot]
            resumed = []
            barrier = threading.Barrier(9)

            def parker(i):
                barrier.wait()
                if not placeholder.park(lambda i=i: resumed.append(i)):
                    resumed.append(i)  # fill already done: resume directly

            def filler():
                barrier.wait()
                cache.request_fill(parent, slot)

            threads = [threading.Thread(target=parker, args=(i,)) for i in range(8)]
            threads.append(threading.Thread(target=filler))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(resumed) == list(range(8)), f"trial {trial} lost a waiter"


class TestFailureAwarePlaceholders:
    def _plan(self, p, seed=0):
        from repro.faults import parse_fault_spec

        return parse_fault_spec(f"fail={p},seed={seed}")

    def test_failed_fill_rearms_request_flag(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2,
                                injector=self._plan(1.0))
        parent, slot = _collect_placeholders(cache)[0]
        placeholder = parent.children[slot]
        assert cache.request_fill(parent, slot) is False
        assert cache.fills_failed == 1
        assert parent.children[slot] is placeholder  # still a placeholder
        assert placeholder._requested is False  # re-armed: next toucher re-sends
        # With p=1 it fails forever but each attempt is a fresh request.
        cache.request_fill(parent, slot)
        assert cache.requests_sent == 2 and cache.fills_failed == 2

    def test_failed_fill_releases_parked_waiters(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2,
                                injector=self._plan(1.0))
        parent, slot = _collect_placeholders(cache)[0]
        released = []
        cache.request_fill(parent, slot, on_resume=lambda: released.append(1))
        assert released == [1], "waiters must not be stranded on a dead request"

    def test_chaos_fill_converges_and_stays_valid(self, setup):
        """Threaded chaos: every placeholder eventually fills despite a 30%
        transient failure rate, with the wait-free invariant holding."""
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2,
                                injector=self._plan(0.3, seed=13))

        def fill_all():
            for _ in range(10_000):
                pending = []
                stack = [cache.root]
                while stack:
                    e = stack.pop()
                    if e.is_placeholder:
                        continue
                    for i, c in enumerate(e.children):
                        if c.is_placeholder:
                            pending.append((e, i))
                        else:
                            stack.append(c)
                if not pending:
                    return
                for parent, slot in pending:
                    cache.request_fill(parent, slot)

        threads = [threading.Thread(target=fill_all) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache.validate()
        assert cache.fills_failed > 0, "a 30% failure rate must fire"
        assert not _collect_placeholders(cache), "every fill must eventually land"

    def test_no_injector_no_failures(self, setup):
        tree, dec, node_proc = setup
        cache = SharedTreeCache(tree, node_proc, process=0, nodes_per_request=2)
        for parent, slot in _collect_placeholders(cache):
            cache.request_fill(parent, slot)
        assert cache.fills_failed == 0
        cache.validate()
