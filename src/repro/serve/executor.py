"""Supervised batch execution with a circuit breaker.

Batches from the micro-batcher are split into bucket-shaped chunks and
dispatched through the PR 5 :class:`~repro.exec.supervise.ChunkSupervisor`
over a thread or process pool — so a worker death or hang degrades the
batch (retry, re-dispatch, quarantine-to-serial) instead of killing the
server.  Around that sits a :class:`CircuitBreaker`: repeated pool
rebuilds or failed runs open the breaker and the executor answers
serially in-parent until a cool-down trial succeeds.

Process workers rebuild the resident tree once in their initializer
from the picklable dataset spec; chunks then travel as plain lists of
wire-format query dicts.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

from ..exec.supervise import ChunkSupervisor, SupervisorConfig
from .kernels import execute_queries
from .resident import ResidentState, build_resident_state

MODES = ("inline", "threads", "processes")

# -- process-pool worker side -------------------------------------------------

_WORKER_STATE: ResidentState | None = None


def _init_worker(spec: dict[str, Any]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = build_resident_state(spec)


def _exec_chunk_in_worker(chunk: list[dict[str, Any]],
                          max_results: int) -> list[dict[str, Any]]:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return execute_queries(_WORKER_STATE.tree, chunk, max_results=max_results)


class CircuitBreaker:
    """closed -> open (serial fallback) -> half-open -> closed.

    ``record_failure`` counts *consecutive* degraded runs; at
    ``threshold`` the breaker opens and :meth:`allow` refuses the pool
    for ``cooldown`` seconds.  The first allowed call afterwards is the
    half-open trial: success closes the breaker, failure re-opens it.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened = 0          # times the breaker tripped, cumulative
        self._opened_at = 0.0

    def allow(self) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self._opened_at >= self.cooldown:
                self.state = "half-open"
                return True
            return False
        return True  # half-open: one trial in flight

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            self.state = "open"
            self.opened += 1
            self._opened_at = self.clock()


class BatchExecutor:
    """Executes query batches against the resident tree.

    ``mode``:

    * ``inline`` — serial in the calling thread (deterministic baseline,
      what the drain/restart bit-identity tests use);
    * ``threads`` — supervised dispatch over a thread pool;
    * ``processes`` — supervised dispatch over a process pool whose
      workers hold their own copy of the tree.
    """

    def __init__(self, state: ResidentState, mode: str = "inline",
                 workers: int = 2, chunk_size: int | None = None,
                 supervisor_config: SupervisorConfig | None = None,
                 breaker: CircuitBreaker | None = None,
                 max_results: int = 256) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.state = state
        self.mode = mode
        self.workers = max(1, int(workers))
        self.chunk_size = int(chunk_size or state.tree.bucket_size)
        self.max_results = max_results
        self.breaker = breaker or CircuitBreaker()
        self.supervisor = ChunkSupervisor(
            supervisor_config or SupervisorConfig(),
            backend_name=f"serve-{mode}",
            cancel_abandoned=(mode != "processes"),
        )
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        #: test seam: the chunk function used by thread-pool submits and
        #: the serial path (patch it to inject failures/hangs)
        self._chunk_fn: Callable[[list[dict[str, Any]]], list[dict[str, Any]]] = (
            lambda chunk: execute_queries(self.state.tree, chunk,
                                          max_results=self.max_results))
        self.batches = 0
        self.serial_batches = 0
        if mode != "inline":
            self._build_pool()

    # -- pool lifecycle ------------------------------------------------------
    def _build_pool(self) -> None:
        if self.mode == "threads":
            self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                            thread_name_prefix="serve-exec")
        elif self.mode == "processes":
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.state.worker_spec(),),
            )

    def _rebuild_pool(self) -> None:
        self.shutdown()
        self._build_pool()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- execution -----------------------------------------------------------
    def _chunks(self, queries: list[dict[str, Any]]) -> list[list[dict[str, Any]]]:
        size = self.chunk_size
        return [queries[i:i + size] for i in range(0, len(queries), size)]

    def _execute_serial(self, queries: list[dict[str, Any]]) -> list[dict[str, Any]]:
        return self._chunk_fn(queries)

    def execute(self, queries: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """One result dict per query, in order.  Never raises for
        per-query problems; a degraded run falls back to serial."""
        if not queries:
            return []
        self.batches += 1
        if self.mode == "inline" or self._pool is None or not self.breaker.allow():
            self.serial_batches += 1
            return self._execute_serial(queries)

        chunks = self._chunks(queries)

        def submit(chunk_index: int, attempt: int):
            chunk = chunks[chunk_index]
            if self.mode == "processes":
                return self._pool.submit(_exec_chunk_in_worker, chunk,
                                         self.max_results)
            return self._pool.submit(self._chunk_fn, chunk)

        try:
            results, stats = self.supervisor.run(
                len(chunks), submit,
                serial_exec=lambda i: self._chunk_fn(chunks[i]),
                rebuild=self._rebuild_pool,
            )
        except Exception:
            # supervision itself blew up (pool unrecoverable mid-run):
            # count it against the breaker and answer serially
            self.breaker.record_failure()
            self.serial_batches += 1
            return self._execute_serial(queries)

        if stats.pool_rebuilds or stats.quarantined:
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        return [doc for chunk in results for doc in chunk]

    def snapshot(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "breaker": self.breaker.state,
            "breaker_opened": self.breaker.opened,
            "batches": self.batches,
            "serial_batches": self.serial_batches,
            "supervision": {
                "retries": self.supervisor.total_stats.retries,
                "worker_deaths": self.supervisor.total_stats.worker_deaths,
                "pool_rebuilds": self.supervisor.total_stats.pool_rebuilds,
                "quarantined": self.supervisor.total_stats.quarantined,
            },
        }
