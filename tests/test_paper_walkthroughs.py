"""Executable walkthroughs of the paper's conceptual figures.

* Fig 1 — the 5-particle k-d tree of bucket size 2: spatial extents, Data
  accumulation leaves→root, and a traversal pruned by ``open()``.
* Fig 2 — the six-step cache-fill protocol (exercised via SharedTreeCache).
* Figs 4-5 — the Partitions-Subtrees decomposition with a bucket split at a
  partition border.
* Figs 6-8 — the gravity user-code shape: CentroidData + GravityVisitor +
  a Driver with configure()/traversal()/postTraversal().
"""

import numpy as np
import pytest

from repro.apps.gravity import CentroidData, GravityDriver
from repro.core import Visitor, accumulate_data, get_traverser
from repro.particles import ParticleSet, uniform_cube
from repro.trees import TreeType, build_tree


class TestFig1KdTreeWalkthrough:
    """A universe of 5 particles, k-d tree, bucket size 2 (paper Fig 1)."""

    @pytest.fixture()
    def tree(self):
        pos = np.array(
            [
                [0.1, 0.1, 0.0],
                [0.2, 0.8, 0.0],
                [0.5, 0.5, 0.0],
                [0.8, 0.2, 0.0],
                [0.9, 0.9, 0.0],
            ]
        )
        p = ParticleSet(pos, mass=np.arange(1.0, 6.0))
        return build_tree(p, tree_type="kd", bucket_size=2)

    def test_leaf_structure(self, tree):
        # 5 particles at bucket 2: leaves of size <= 2 covering everything
        counts = tree.pend[tree.leaf_indices] - tree.pstart[tree.leaf_indices]
        assert counts.sum() == 5
        assert counts.max() <= 2

    def test_leaves_have_disjoint_extents(self, tree):
        leaves = tree.leaf_indices
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                a, b = int(leaves[i]), int(leaves[j])
                # interiors are disjoint: overlap has zero volume in the
                # split dimensions
                lo = np.maximum(tree.box_lo[a], tree.box_lo[b])
                hi = np.minimum(tree.box_hi[a], tree.box_hi[b])
                overlap = np.maximum(hi - lo, 0)
                assert np.prod(overlap[:2]) == pytest.approx(0.0)

    def test_data_accumulates_to_root(self, tree):
        """Fig 1 centre: user Data flows leaves -> parents -> root."""
        data = accumulate_data(tree, CentroidData)
        assert data[0].sum_mass == pytest.approx(15.0)  # 1+2+3+4+5

    def test_traversal_prunes_on_open(self, tree):
        """Fig 1 right: a traversal that refuses to open one child of the
        root consumes that child's summary via node()."""
        root_children = [int(c) for c in tree.children(0)]
        pruned_child = root_children[1]

        class PruneSecondChild(Visitor):
            def __init__(self):
                self.node_calls = []
                self.leaf_calls = []

            def open(self, source, target):
                return source.index != pruned_child

            def node(self, source, target):
                self.node_calls.append(source.index)

            def leaf(self, source, target):
                self.leaf_calls.append(source.index)

        visitor = PruneSecondChild()
        one_target = tree.leaf_indices[:1]
        get_traverser("per-bucket").traverse(tree, visitor, one_target)
        assert visitor.node_calls == [pruned_child]
        # every leaf reached lives under the non-pruned child
        under_pruned = set(tree.subtree_nodes(pruned_child).tolist())
        assert all(l not in under_pruned for l in visitor.leaf_calls)


class TestFig2CacheProtocol:
    """The enumerated steps of the shared-memory cache fill."""

    def test_six_steps(self):
        from repro.cache import SharedTreeCache
        from repro.decomp import SfcDecomposer, decompose

        p = uniform_cube(800, seed=31)
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        parts = SfcDecomposer().assign(tree.particles, 2)
        dec = decompose(tree, parts, n_subtrees=2)
        cache = SharedTreeCache(
            tree, dec.node_process(), process=0, nodes_per_request=2,
            shared_branch_levels=1,
        )
        # find a placeholder (remote node, "node 5" in the figure)
        stack = [(None, None, cache.root)]
        target = None
        while stack:
            parent, slot, e = stack.pop()
            if e.is_placeholder:
                target = (parent, slot)
                break
            stack.extend((e, i, c) for i, c in enumerate(e.children))
        assert target is not None
        parent, slot = target
        placeholder = parent.children[slot]
        resumed = []
        # Step 0: first toucher claims the atomic request flag...
        issued = cache.request_fill(parent, slot, on_resume=lambda: resumed.append(1))
        assert issued
        # Steps 1-4 happened synchronously: the placeholder was swapped for
        # a wired subtree...
        filled = parent.children[slot]
        assert filled is not placeholder
        assert not filled.is_placeholder
        assert filled.key == placeholder.key
        # ...with deeper placeholders beyond the shipped horizon,
        cache.validate()
        # and Step 5 resumed the parked traversal.
        assert resumed == [1]


class TestFig4And5PartitionsSubtrees:
    def test_border_bucket_split(self):
        """Fig 5: a bucket whose particles span two Partitions is split into
        local buckets, one per side."""
        from repro.decomp import decompose

        # 1-D line of 12 particles; the kd build (median splits, bucket 4)
        # makes four 3-particle leaves: [0,3) [3,6) [6,9) [9,12).  A
        # partition boundary at particle 5 cuts the second leaf mid-bucket.
        pos = np.zeros((12, 3))
        pos[:, 0] = np.arange(12) / 12.0
        tree = build_tree(ParticleSet(pos), tree_type="kd", bucket_size=4)
        parts = (np.arange(12) >= 5).astype(np.int64)
        # tree order may permute; map through orig_index
        parts = parts[tree.particles.orig_index]
        dec = decompose(tree, parts, n_subtrees=2)
        assert dec.n_split_buckets == 1
        split_buckets = [
            b for p in dec.partitions for b in p.buckets if b.is_split
        ]
        assert len(split_buckets) == 2  # one local bucket per side
        assert split_buckets[0].leaf == split_buckets[1].leaf
        total = sum(len(b.particle_idx) for b in split_buckets)
        leaf = split_buckets[0].leaf
        assert total == tree.pend[leaf] - tree.pstart[leaf]

    def test_leaf_sharing_volume_is_small(self):
        """Paper §II-C-1: leaf sharing costs 0.1-0.4% of iteration time
        because only split-bucket particles move; check the communicated
        fraction is a few percent of N at realistic granularity."""
        from repro.decomp import SfcDecomposer, decompose

        p = uniform_cube(4000, seed=32)
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        parts = SfcDecomposer().assign(tree.particles, 4)
        dec = decompose(tree, parts, n_subtrees=4)
        assert dec.n_shared_particles <= 0.05 * tree.n_particles


class TestFig6To8UserCodeShape:
    def test_centroid_data_matches_fig6(self):
        """CentroidData exposes exactly the Fig 6 interface: empty ctor,
        bucket ctor, +=, centroid()."""
        d = CentroidData.empty()
        assert d.sum_mass == 0.0
        pos = np.array([[1.0, 0, 0], [3.0, 0, 0]])
        p = ParticleSet(pos, mass=np.array([1.0, 1.0]))
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        leaf_data = CentroidData.from_leaf(tree.node(int(tree.leaf_indices[0])))
        d += leaf_data
        assert np.allclose(d.centroid(), [2.0, 0, 0])

    def test_driver_matches_fig8(self):
        """A GravityMain in the shape of Fig 8: configure() sets tree and
        decomposition types; traversal() starts the visitor; the run
        produces accelerations."""

        class GravityMain(GravityDriver):
            def configure(self, conf):
                conf.num_iterations = 1
                conf.tree_type = TreeType.OCT
                conf.decomp_type = "sfc"
                conf.num_partitions = 4
                conf.num_subtrees = 4

            def create_particles(self, config):
                return uniform_cube(400, seed=33)

            def post_traversal(self, iteration):
                self.output = self.accelerations.copy()

        main = GravityMain()
        main.run()
        assert main.config.tree_type == TreeType.OCT
        assert main.output.shape == (400, 3)
        assert np.any(main.output != 0)
