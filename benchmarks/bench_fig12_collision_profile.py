"""Fig 12 — planetesimal collision profile in a perturbed disk.

Reproduces the §IV-A case study at laptop scale: a Keplerian disk with an
embedded Jupiter-mass planet at 5.2 AU is evolved with gravity + collision
detection, and detected collisions are binned by heliocentric distance and
by orbital period, with the 3:1 / 2:1 / 5:3 resonance locations marked.

Substitutions: 6k planetesimals instead of 10 M, radii inflated (2.5e-3 AU
vs 50 km) and ~2 yr of evolution instead of 2 000 yr, so collisions happen
at observable rates.  The reproduced claims:

* collisions happen and their orbital elements are physical;
* the planet pumps eccentricity — colliding bodies are dynamically hotter
  than the background disk (the mechanism that concentrates Fig 12's
  collisions near resonances);
* the distance and period profiles are consistent (same events, two axes),
  as in the paper's dotted-vs-solid curves.
"""

import numpy as np

from repro.apps.collision import (
    RESONANCES,
    PlanetesimalDriver,
    orbital_elements,
    resonance_semi_major_axis,
)
from repro.bench import format_table, paper_reference, print_banner
from repro.core import Configuration
from repro.particles import DiskParams, keplerian_disk
from repro.perf import benchmark as perf_benchmark
from repro.trees import TreeType

N_PLANETESIMALS = 6_000
N_STEPS = 80
DT = 0.025


@perf_benchmark("e2e.disk_steps", group="e2e",
                description="planetesimal-disk driver, end-to-end timesteps")
def perf_disk_steps(quick=False):
    n = 1_500 if quick else 3_000
    n_steps = 3 if quick else 10

    class SmallDisk(PlanetesimalDriver):
        def configure(self, conf: Configuration) -> None:
            conf.num_iterations = n_steps
            conf.tree_type = TreeType.LONGEST_DIM
            conf.decomp_type = "longest"
            conf.num_partitions = 16
            conf.num_subtrees = 16

        def create_particles(self, config: Configuration):
            params = DiskParams(
                planetesimal_radius=2.5e-3, eccentricity_dispersion=0.015
            )
            return keplerian_disk(n, params=params, seed=42)

    def run():
        driver = SmallDisk(dt=DT, merge=False)
        driver.run()
        return {"collisions": len(driver.log)}

    return run


class DiskMain(PlanetesimalDriver):
    def configure(self, conf: Configuration) -> None:
        conf.num_iterations = N_STEPS
        conf.tree_type = TreeType.LONGEST_DIM
        conf.decomp_type = "longest"
        conf.num_partitions = 16
        conf.num_subtrees = 16

    def create_particles(self, config: Configuration):
        params = DiskParams(
            planetesimal_radius=2.5e-3, eccentricity_dispersion=0.015
        )
        return keplerian_disk(N_PLANETESIMALS, params=params, seed=42)


_CACHE = {}


def _run_disk():
    if "driver" not in _CACHE:
        driver = DiskMain(dt=DT, merge=False)
        driver.run()
        _CACHE["driver"] = driver
    return _CACHE["driver"]


def test_fig12_collision_profile(benchmark):
    driver = benchmark.pedantic(_run_disk, rounds=1, iterations=1)
    log = driver.log.as_arrays()
    n_collisions = len(log["time"])
    print_banner(
        f"Fig 12: {n_collisions} collisions in {N_STEPS * DT:.1f} yr "
        f"({N_PLANETESIMALS} planetesimals; paper: "
        f"{paper_reference.FIG12_TOTAL_COLLISIONS} collisions, 10M bodies, 2000 yr)"
    )

    # Distance profile (solid curve) and period profile (dotted curve).
    d_edges = np.linspace(2.0, 4.2, 12)
    d_hist, _ = np.histogram(log["distance"], bins=d_edges)
    p_edges = np.linspace(2.0**1.5, 4.2**1.5, 12)  # same radial range in period
    p_hist, _ = np.histogram(log["period"], bins=p_edges)
    rows = [
        (f"{d_edges[i]:.2f}-{d_edges[i + 1]:.2f}", int(d_hist[i]),
         f"{p_edges[i]:.2f}-{p_edges[i + 1]:.2f}", int(p_hist[i]))
        for i in range(len(d_hist))
    ]
    print(format_table(
        ["distance bin (AU)", "collisions", "period bin (yr)", "collisions"], rows
    ))
    print("\nresonances (paper's dashed lines):")
    from repro.apps.collision import resonance_excess

    excess = resonance_excess(log["a"], paper_reference.FIG12_PLANET_A)
    for p, q in RESONANCES:
        a = resonance_semi_major_axis(paper_reference.FIG12_PLANET_A, p, q)
        print(f"  {p}:{q} -> a = {a:.2f} AU, period = {a**1.5:.2f} yr, "
              f"collision excess over neighbourhood: {excess[(p, q)]:.2f}x")

    assert n_collisions > 50, "not enough collisions to form a profile"
    # Physicality of the recorded elements.
    finite = np.isfinite(log["a"])
    assert finite.mean() > 0.95
    assert np.all(log["distance"] > 1.5) and np.all(log["distance"] < 5.0)
    # Distance and period profiles describe the same events: total counts
    # match and the period of each event is Kepler-consistent with its a.
    kepler = log["a"][finite] ** 1.5
    assert np.allclose(log["period"][finite], kepler, rtol=1e-6)

    # The planet heats the disk: colliding bodies are dynamically excited
    # well above the initial Rayleigh dispersion (sigma = 0.015, median
    # ~0.018) — the paper's mechanism for resonance-driven collisions
    # ("high eccentricity particles near the 2:1 resonance").
    p = driver.particles
    disk = p.select(p.ptype == 0)
    el = orbital_elements(disk.position, disk.velocity)
    e_background = np.median(el["e"][np.isfinite(el["e"])])
    e_colliders = np.median(log["e"][np.isfinite(log["e"])])
    e_initial_median = 0.015 * np.sqrt(2 * np.log(2))
    print(f"\nmedian eccentricity: colliders {e_colliders:.4f}, "
          f"whole disk now {e_background:.4f}, initial {e_initial_median:.4f}")
    assert e_colliders > 1.2 * e_initial_median
    assert e_background > 1.2 * e_initial_median
