"""Decomposers, the Partitions-Subtrees model, and load balancing."""

import numpy as np
import pytest

from repro.decomp import (
    Decomposer,
    LongestDimDecomposer,
    OctDecomposer,
    SfcDecomposer,
    branch_duplication_count,
    decompose,
    get_decomposer,
    imbalance,
    register_decomposer,
    sfc_rebalance,
    spatial_bisection_rebalance,
)
from repro.decomp.loadbalance import apply_rebalance
from repro.particles import clustered_clumps, keplerian_disk, uniform_cube
from repro.trees import build_tree

DECOMPOSERS = ["sfc", "oct", "longest"]


@pytest.fixture(scope="module")
def particles():
    return clustered_clumps(3000, seed=5)


class TestSplitters:
    @pytest.mark.parametrize("name", DECOMPOSERS)
    def test_assignment_is_complete(self, name, particles):
        parts = get_decomposer(name).assign(particles, 8)
        assert parts.shape == (len(particles),)
        assert parts.min() >= 0 and parts.max() <= 7
        assert len(np.unique(parts)) == 8  # every partition non-empty

    @pytest.mark.parametrize("name", DECOMPOSERS)
    def test_count_balance(self, name, particles):
        parts = get_decomposer(name).assign(particles, 8)
        counts = np.bincount(parts, minlength=8)
        # Octree decomposition can only hand out whole octree nodes, so its
        # balance on clustered data is legitimately looser (§II-C, Fig 13).
        limit = 2.2 if name == "oct" else 1.3
        assert imbalance(counts) < limit

    def test_sfc_balance_is_tight(self, particles):
        """SFC slices by count: near-perfect balance (paper §II-C)."""
        parts = SfcDecomposer().assign(particles, 16)
        counts = np.bincount(parts, minlength=16)
        assert counts.max() - counts.min() <= 1

    def test_sfc_slices_are_spatially_coherent(self):
        uniform = uniform_cube(4000, seed=11)
        parts = SfcDecomposer().assign(uniform, 8)
        # Curve locality: each of 8 slices covers far less volume than the
        # domain (a random assignment would cover ~all of it).
        dom = uniform.bounding_box().volume
        vols = [uniform.select(parts == p).bounding_box().volume for p in range(8)]
        assert np.mean(vols) < 0.45 * dom

    def test_oct_decomposition_on_disk_is_imbalanced(self):
        """The Fig 13 effect: octree decomposition balances a flat disk
        poorly compared to longest-dimension ORB."""
        disk = keplerian_disk(4000, seed=6)
        oct_parts = OctDecomposer(oversample=4).assign(disk, 12)
        orb_parts = LongestDimDecomposer().assign(disk, 12)
        oct_imb = imbalance(np.bincount(oct_parts, minlength=12))
        orb_imb = imbalance(np.bincount(orb_parts, minlength=12))
        assert orb_imb <= oct_imb

    def test_weighted_assignment(self, particles):
        """Weights shift the splitters: a heavy region gets fewer particles."""
        w = np.ones(len(particles))
        heavy = particles.position[:, 0] > 0
        w[heavy] = 10.0
        parts = SfcDecomposer().assign(particles, 4, weights=w)
        loads = np.zeros(4)
        np.add.at(loads, parts, w)
        assert imbalance(loads) < 1.5

    def test_single_partition(self, particles):
        parts = SfcDecomposer().assign(particles, 1)
        assert np.all(parts == 0)

    def test_invalid_n_parts(self, particles):
        with pytest.raises(ValueError):
            SfcDecomposer().assign(particles, 0)

    def test_custom_decomposer_registry(self, particles):
        class Stripes(Decomposer):
            name = "stripes"

            def assign(self, particles, n_parts, weights=None):
                x = particles.position[:, 0]
                ranks = np.argsort(np.argsort(x))
                return (ranks * n_parts) // len(x)

        register_decomposer("stripes", Stripes)
        parts = get_decomposer("stripes").assign(particles, 5)
        assert len(np.unique(parts)) == 5

    def test_unknown_decomposer(self):
        with pytest.raises(ValueError):
            get_decomposer("voronoi")


class TestPartitionsSubtrees:
    @pytest.fixture(scope="class")
    def setup(self, particles):
        tree = build_tree(particles, tree_type="kd", bucket_size=16)
        # SFC partitioning of a kd-tree: the inconsistent pairing the model
        # was designed for.
        parts = SfcDecomposer().assign(tree.particles, 8)
        return tree, parts, decompose(tree, parts, n_subtrees=8)

    def test_partitions_cover_all_particles(self, setup):
        tree, parts, dec = setup
        total = sum(p.n_particles for p in dec.partitions)
        assert total == tree.n_particles
        seen = np.zeros(tree.n_particles, dtype=int)
        for p in dec.partitions:
            seen[p.particle_indices()] += 1
        assert np.all(seen == 1)

    def test_partition_owns_its_marked_particles(self, setup):
        tree, parts, dec = setup
        for p in dec.partitions:
            assert np.all(parts[p.particle_indices()] == p.index)

    def test_subtrees_tile_tree_order(self, setup):
        tree, _, dec = setup
        spans = sorted((st.pstart, st.pend) for st in dec.subtrees)
        assert spans[0][0] == 0
        assert spans[-1][1] == tree.n_particles
        for (s0, e0), (s1, e1) in zip(spans[:-1], spans[1:]):
            assert e0 == s1

    def test_node_subtree_assignment(self, setup):
        tree, _, dec = setup
        # every leaf belongs to exactly one subtree; shared branch is above
        leaves = tree.leaf_indices
        assert np.all(dec.node_subtree[leaves] >= 0)
        # subtree roots' ancestors are shared (-1)
        for st in dec.subtrees:
            for anc in tree.ancestors(st.root):
                assert dec.node_subtree[anc] == -1

    def test_split_buckets_flagged(self, setup):
        tree, parts, dec = setup
        # A leaf is split iff its particles span >1 partition.
        split_leaves = {
            int(leaf)
            for leaf in tree.leaf_indices
            if len(np.unique(parts[tree.pstart[leaf]:tree.pend[leaf]])) > 1
        }
        flagged = {
            b.leaf for p in dec.partitions for b in p.buckets if b.is_split
        }
        assert flagged == split_leaves
        assert dec.n_split_buckets == len(split_leaves)

    def test_split_fraction_shrinks_with_partition_size(self, particles):
        """Paper §II-C-1: 'because particles are generally assigned to
        Partitions spatially and there are many buckets to a Partition,
        only a few buckets will need to be split'.  The split fraction must
        drop as buckets-per-Partition grows (fewer, longer curve cuts)."""
        tree = build_tree(particles, tree_type="kd", bucket_size=16)

        def split_fraction(n_parts):
            parts = SfcDecomposer().assign(tree.particles, n_parts)
            dec = decompose(tree, parts, n_subtrees=4)
            return dec.n_split_buckets / tree.n_leaves

        assert split_fraction(2) < split_fraction(16)
        assert split_fraction(2) < 0.35

    def test_colocated_when_consistent(self, particles):
        """SFC decomposition of an octree in Morton order never splits
        buckets when splitters coincide with bucket boundaries — here we
        check the detection flag using one partition (trivially aligned)."""
        tree = build_tree(particles, tree_type="oct", bucket_size=16)
        parts = np.zeros(tree.n_particles, dtype=np.int64)
        dec = decompose(tree, parts, n_subtrees=4)
        assert dec.colocated
        assert dec.n_split_buckets == 0

    def test_partition_loads(self, setup):
        tree, parts, dec = setup
        loads = dec.partition_loads()
        assert loads.sum() == tree.n_particles
        custom = dec.partition_loads(np.full(tree.n_particles, 2.0))
        assert custom.sum() == pytest.approx(2.0 * tree.n_particles)

    def test_node_process_map(self, setup):
        tree, _, dec = setup
        proc = dec.node_process()
        for st in dec.subtrees:
            assert proc[st.root] == st.process
        assert proc[0] == -1  # root is shared

    def test_length_mismatch_raises(self, setup):
        tree, _, _ = setup
        with pytest.raises(ValueError):
            decompose(tree, np.zeros(3, dtype=np.int64), n_subtrees=2)


class TestBranchDuplication:
    def test_zero_for_single_partition(self, particles):
        tree = build_tree(particles, tree_type="oct", bucket_size=16)
        assert branch_duplication_count(tree, np.zeros(tree.n_particles, int)) == 0

    def test_counts_spanning_nodes_exactly(self):
        p = uniform_cube(200, seed=1)
        tree = build_tree(p, tree_type="kd", bucket_size=8)
        parts = SfcDecomposer().assign(tree.particles, 4)
        count = branch_duplication_count(tree, parts)
        expected = sum(
            1
            for i in range(tree.n_nodes)
            if len(np.unique(parts[tree.pstart[i]:tree.pend[i]])) > 1
        )
        assert count == expected
        assert count >= 2  # at least the root and something below

    def test_grows_with_partitions(self, particles):
        """Finer SFC decomposition duplicates more branch nodes — the strong
        scaling pain §II-C describes."""
        tree = build_tree(particles, tree_type="oct", bucket_size=16)
        dup = [
            branch_duplication_count(
                tree, SfcDecomposer().assign(tree.particles, n)
            )
            for n in (2, 8, 32)
        ]
        assert dup[0] < dup[1] < dup[2]


class TestLoadBalance:
    def test_imbalance_metric(self):
        assert imbalance(np.array([1.0, 1.0])) == 1.0
        assert imbalance(np.array([3.0, 1.0])) == 1.5
        assert imbalance(np.array([])) == 1.0
        assert imbalance(np.zeros(3)) == 1.0

    def test_sfc_rebalance_equalises_weighted_load(self, particles):
        rng = np.random.default_rng(0)
        load = rng.exponential(1.0, len(particles))
        parts = sfc_rebalance(particles, load, 8)
        sums = np.zeros(8)
        np.add.at(sums, parts, load)
        assert imbalance(sums) < 1.2

    def test_spatial_bisection_equalises_weighted_load(self, particles):
        rng = np.random.default_rng(1)
        load = rng.exponential(1.0, len(particles))
        parts = spatial_bisection_rebalance(particles, load, 8)
        sums = np.zeros(8)
        np.add.at(sums, parts, load)
        assert imbalance(sums) < 1.2

    def test_zero_load_falls_back_to_counts(self, particles):
        parts = sfc_rebalance(particles, np.zeros(len(particles)), 4)
        counts = np.bincount(parts, minlength=4)
        assert imbalance(counts) < 1.05

    def test_negative_load_rejected(self, particles):
        with pytest.raises(ValueError):
            sfc_rebalance(particles, -np.ones(len(particles)), 4)

    def test_apply_rebalance_keeps_subtrees(self, particles):
        tree = build_tree(particles, tree_type="oct", bucket_size=16)
        parts = SfcDecomposer().assign(tree.particles, 8)
        dec = decompose(tree, parts, n_subtrees=8)
        new_parts = sfc_rebalance(tree.particles, np.ones(tree.n_particles), 8)
        dec2 = apply_rebalance(dec, new_parts)
        # memory view unchanged: same subtree roots
        assert [st.root for st in dec2.subtrees] == [st.root for st in dec.subtrees]
        assert dec2.tree is tree
