"""Particle storage (structure-of-arrays) and initial-condition generators."""

from .particles import ParticleSet
from .generators import (
    uniform_cube,
    plummer_sphere,
    clustered_clumps,
    keplerian_disk,
    DiskParams,
)
from .io import SnapshotError, save_particles, load_particles
from .tipsy import save_tipsy, load_tipsy

__all__ = [
    "ParticleSet",
    "DiskParams",
    "uniform_cube",
    "plummer_sphere",
    "clustered_clumps",
    "keplerian_disk",
    "SnapshotError",
    "save_particles",
    "load_particles",
    "save_tipsy",
    "load_tipsy",
]
