"""Top-down traversal engines: per-bucket DFS and the transposed walk.

Both engines implement the same pruning semantics (open → descend;
not-open → ``node()``; opened leaf → ``leaf()``), differing only in loop
order:

* :class:`PerBucketTraverser` walks the whole tree once per target bucket —
  the classical style (ChaNGa, and the paper's "BasicTrav" ablation).  The
  working set per step is "one bucket + the frontier of the tree", but the
  tree is re-walked B times.
* :class:`TransposedTraverser` visits each tree node once, carrying the
  batch of target buckets still interested in it (the paper's
  locality-enhancing loop transformation adopted from GPU traversals
  [Jo & Kulkarni 2011]).  The working set per step is "one node + many
  buckets", so tree data is touched far fewer times (Table II).
"""

from __future__ import annotations

import numpy as np

from ..trees import Tree
from .traverser import Recorder, TraversalStats, Traverser, register_traverser
from .util import ranges_to_indices
from .visitor import Visitor

__all__ = ["PerBucketTraverser", "TransposedTraverser"]


class PerBucketTraverser(Traverser):
    """Classic depth-first walk, one full traversal per target bucket.

    The frontier is processed breadth-wise so the Visitor's batched
    ``*_sources`` hooks can amortise the per-node cost, but the visit *set*
    equals the textbook recursive DFS.
    """

    name = "per-bucket"

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        targets = self._resolve_targets(tree, targets)
        stats = TraversalStats(targets=len(targets))
        first_child = tree.first_child
        n_children = tree.n_children
        counts = tree.pend - tree.pstart
        root = np.array([tree.root], dtype=np.int64)

        for tgt in targets:
            tgt = int(tgt)
            tgt_count = int(counts[tgt])
            frontier = root
            while frontier.size:
                stats.nodes_visited += int(frontier.size)
                stats.opens += int(frontier.size)
                if recorder is not None:
                    recorder.on_open(tree, frontier, np.array([tgt]))
                mask = np.asarray(visitor.open_sources(tree, frontier, tgt), dtype=bool)
                closed = frontier[~mask]
                if closed.size:
                    stats.node_interactions += int(closed.size)
                    stats.pn_interactions += int(closed.size) * tgt_count
                    if recorder is not None:
                        recorder.on_node(tree, closed, np.array([tgt]))
                    visitor.node_sources(tree, closed, tgt)
                opened = frontier[mask]
                if not opened.size:
                    break
                leaf_mask = first_child[opened] == -1
                leaves = opened[leaf_mask]
                if leaves.size:
                    stats.leaf_interactions += int(leaves.size)
                    stats.pp_interactions += int(counts[leaves].sum()) * tgt_count
                    if recorder is not None:
                        recorder.on_leaf(tree, leaves, np.array([tgt]))
                    visitor.leaf_sources(tree, leaves, tgt)
                internal = opened[~leaf_mask]
                frontier = ranges_to_indices(
                    first_child[internal], first_child[internal] + n_children[internal]
                )
        return stats


class TransposedTraverser(Traverser):
    """ParaTreeT-style walk: each tree node once, against a target batch.

    Depth-first over source nodes; the active-target set can only shrink
    with depth, so deep (expensive) nodes see few targets.
    """

    name = "transposed"

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        targets = self._resolve_targets(tree, targets)
        stats = TraversalStats(targets=len(targets))
        if not targets.size:
            return stats
        first_child = tree.first_child
        n_children = tree.n_children
        counts = tree.pend - tree.pstart

        stack: list[tuple[int, np.ndarray]] = [(tree.root, targets)]
        while stack:
            src, active = stack.pop()
            stats.nodes_visited += 1
            stats.opens += int(active.size)
            # One source-index array per node, and only when someone listens
            # (the per-node np.array([src]) showed up in deep-tree profiles).
            src_arr = np.array([src]) if recorder is not None else None
            if recorder is not None:
                recorder.on_open(tree, src_arr, active)
            mask = np.asarray(visitor.open_batch(tree, src, active), dtype=bool)
            closed = active[~mask]
            if closed.size:
                stats.node_interactions += int(closed.size)
                stats.pn_interactions += int(counts[closed].sum())
                if recorder is not None:
                    recorder.on_node(tree, src_arr, closed)
                visitor.node_batch(tree, src, closed)
            opened = active[mask]
            if not opened.size:
                continue
            if first_child[src] == -1:
                stats.leaf_interactions += int(opened.size)
                stats.pp_interactions += int(counts[src]) * int(counts[opened].sum())
                if recorder is not None:
                    recorder.on_leaf(tree, src_arr, opened)
                visitor.leaf_batch(tree, src, opened)
            else:
                fc = int(first_child[src])
                for c in range(fc, fc + int(n_children[src])):
                    stack.append((c, opened))
        return stats


register_traverser(PerBucketTraverser.name, PerBucketTraverser)
register_traverser(TransposedTraverser.name, TransposedTraverser)
# Alias matching the paper's Fig 10 label for the per-bucket style.
register_traverser("basic", PerBucketTraverser)
