"""Attribution-recorder overhead (PR 8 acceptance gate).

Three bars around the same gravity pipeline:

* ``attr.gravity_off`` — attribution disabled.  This is the seed path;
  the disabled cost is one ``if self.attribution`` branch per iteration,
  so the bar must sit within the PR 3 noise gate of the plain pipeline.
* ``attr.gravity_on`` — per-node SoA counters recording.  The recorder
  is a handful of ``np.add.at`` scatters per traversal batch; the run
  must stay within a few percent.
* ``attr.merge`` — fork/absorb reduction cost: integer array addition,
  independent of how much traversal the workers attributed.

Compare against a baseline with ``repro bench compare``; the obs-smoke
CI job runs the quick variants and commits the result as BENCH_pr8.json.
"""

import numpy as np

from repro.apps.gravity import GravityDriver
from repro.core import Configuration
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark


def _run_gravity(n: int, attribution: bool):
    p = clustered_clumps(n, seed=9)

    class Main(GravityDriver):
        def create_particles(self, config):
            return p

    d = Main(Configuration(num_iterations=2, num_partitions=4,
                           num_subtrees=4), theta=0.7)
    d.enable_attribution(attribution)
    d.run()
    return d


@perf_benchmark("attr.gravity_off", group="obs",
                description="gravity pipeline with attribution disabled "
                            "(must match the seed path within noise)")
def bench_attr_off(quick=False):
    n = 2_000 if quick else 8_000

    def run():
        d = _run_gravity(n, attribution=False)
        return {"iterations": len(d.reports),
                "profiles": len(d.attribution_profiles)}

    return run


@perf_benchmark("attr.gravity_on", group="obs",
                description="same pipeline with per-node attribution "
                            "counters recording")
def bench_attr_on(quick=False):
    n = 2_000 if quick else 8_000

    def run():
        d = _run_gravity(n, attribution=True)
        prof = d.attribution_profiles[-1]
        return {"iterations": len(d.reports),
                "visits": int(prof.arrays["visits"].sum()),
                "cost_ns": int(prof.arrays["cost_ns"].sum())}

    return run


@perf_benchmark("attr.merge", group="obs",
                description="absorb forked attribution recorders "
                            "(integer array addition, workload free)")
def bench_attr_merge(quick=False):
    from repro.obs import AttributionRecorder

    n_nodes = 20_000 if quick else 100_000
    n_forks = 32 if quick else 128
    rng = np.random.default_rng(7)
    root = AttributionRecorder(n_nodes)
    forks = []
    for _ in range(n_forks):
        f = root.fork()
        f.visits += rng.integers(0, 50, n_nodes)
        f.pn_pairs += rng.integers(0, 200, n_nodes)
        f.pp_pairs += rng.integers(0, 200, n_nodes)
        forks.append(f)

    def run():
        merged = root.fork()
        for f in forks:
            merged.absorb(f)
        return {"n_nodes": n_nodes, "n_forks": n_forks,
                "total_visits": int(merged.visits.sum())}

    return run
