"""The Gadget-2-style smoothing-length iteration (the Fig 11 baseline).

Gadget-2 finds each particle's smoothing length by *converging on it*:
guess h, run a fixed-ball search, count neighbours, adjust h (bisection)
and repeat until the count lands in the accepted window.  Every adjustment
round is a full extra traversal over the still-unconverged particles —
"more parallelizable but less efficient" than the single kNN pass.

The implementation counts the real traversal work of every round (the
accumulated :class:`~repro.core.TraversalStats`), which is what the Fig 11
scaling bench feeds to the DES.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core import TraversalStats, get_traverser
from ...trees import Tree
from ..knn.balls import BallSearchVisitor

__all__ = ["GadgetSmoothingResult", "gadget_style_density"]


@dataclass
class GadgetSmoothingResult:
    """Converged smoothing lengths/densities plus the work it took."""

    h: np.ndarray
    density: np.ndarray
    n_rounds: int
    converged: np.ndarray  # (N,) bool
    stats: TraversalStats = field(default_factory=TraversalStats)
    stats_per_round: list[TraversalStats] = field(default_factory=list)


def gadget_style_density(
    tree: Tree,
    k: int = 32,
    tol: int = 2,
    max_rounds: int = 32,
    h0: np.ndarray | None = None,
) -> GadgetSmoothingResult:
    """Converge h so each particle has ``k ± tol`` neighbours, then density.

    Bisection with geometric bracket expansion; all unconverged particles
    share each round's traversal (buckets with any unconverged particle are
    re-searched), mirroring how Gadget batches its neighbour iterations.
    """
    n = tree.n_particles
    pos = tree.particles.position
    if h0 is None:
        # Initial guess from the mean interparticle spacing.
        vol = float(np.prod(np.maximum(tree.box_hi[0] - tree.box_lo[0], 1e-30)))
        h = np.full(n, 1.3 * (vol / n) ** (1.0 / 3.0) * k ** (1.0 / 3.0))
    else:
        h = np.asarray(h0, dtype=np.float64).copy()

    lo = np.zeros(n)
    hi = np.full(n, np.inf)
    converged = np.zeros(n, dtype=bool)
    counts = np.zeros(n, dtype=np.int64)
    last_neighbors: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    total = TraversalStats()
    per_round: list[TraversalStats] = []
    engine = get_traverser("per-bucket")
    rounds = 0

    for _ in range(max_rounds):
        active = ~converged
        if not np.any(active):
            break
        rounds += 1
        # Ball-search only buckets containing unconverged particles.
        radii = np.where(active, h, 0.0)
        visitor = BallSearchVisitor(tree, radii, include_self=False)
        leaf_of = tree.leaf_of_particle()
        target_leaves = np.unique(leaf_of[active])
        stats = engine.traverse(tree, visitor, target_leaves)
        per_round.append(stats)
        total.merge(stats)
        lists = visitor.neighbor_lists()
        for i in np.flatnonzero(active):
            nbrs = lists[i]
            counts[i] = len(nbrs)
            last_neighbors[i] = nbrs
            if abs(counts[i] - k) <= tol:
                converged[i] = True
            elif counts[i] > k:
                hi[i] = h[i]
                h[i] = 0.5 * (lo[i] + hi[i])
            else:
                lo[i] = h[i]
                h[i] = h[i] * 2.0 if np.isinf(hi[i]) else 0.5 * (lo[i] + hi[i])

    # Density from the final neighbour sets (kernel support = h).
    mass = tree.particles.mass
    rho = np.empty(n)
    from .kernels import cubic_spline_W

    for i in range(n):
        nbrs = last_neighbors[i]
        if len(nbrs):
            r = np.linalg.norm(pos[nbrs] - pos[i], axis=1)
            rho[i] = float(np.sum(mass[nbrs] * cubic_spline_W(r, h[i])))
        else:
            rho[i] = 0.0
        rho[i] += mass[i] * float(cubic_spline_W(np.zeros(1), np.array([h[i]]))[0])

    return GadgetSmoothingResult(
        h=h,
        density=rho,
        n_rounds=rounds,
        converged=converged,
        stats=total,
        stats_per_round=per_round,
    )
