"""FoF group finding, build-time model, potential/energy, kernel registry."""

import numpy as np
import pytest

from repro.apps.fof import UnionFind, brute_force_fof, friends_of_friends
from repro.apps.gravity import compute_gravity, direct_potential
from repro.decomp import SfcDecomposer, estimate_build_times
from repro.particles import clustered_clumps, uniform_cube
from repro.trees import build_tree


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(1)
        assert uf.find(3) == uf.find(4)
        assert uf.find(0) != uf.find(3)
        labels = uf.labels()
        assert labels[0] == labels[1]
        assert labels[2] not in (labels[0], labels[3])

    def test_transitive_chain(self):
        uf = UnionFind(6)
        for i in range(5):
            uf.union(i, i + 1)
        assert len(set(uf.labels().tolist())) == 1


class TestFoF:
    def test_matches_brute_force(self):
        p = clustered_clumps(800, seed=9)
        res = friends_of_friends(p, linking_length=0.03)
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        bf = brute_force_fof(tree.particles.position, 0.03)
        # same partitions: group labels must be a relabeling of each other
        got = res.labels
        mapping = {}
        for a, b in zip(got, bf):
            assert mapping.setdefault(int(a), int(b)) == int(b)
        assert len(set(got.tolist())) == len(set(bf.tolist()))

    def test_finds_the_clumps(self):
        """At a linking length between the clump scale and the clump
        separation, each Plummer clump becomes one large group."""
        p = clustered_clumps(3000, n_clumps=5, background_fraction=0.0, seed=10)
        res = friends_of_friends(p, linking_length=0.02)
        halos = res.groups_larger_than(100)
        assert 3 <= len(halos) <= 7  # clumps can merge/fragment slightly

    def test_tiny_linking_length_isolates(self):
        p = uniform_cube(300, seed=11)
        res = friends_of_friends(p, linking_length=1e-9)
        assert res.n_groups == 300
        assert np.all(res.group_sizes == 1)

    def test_huge_linking_length_unifies(self):
        p = uniform_cube(300, seed=12)
        res = friends_of_friends(p, linking_length=10.0)
        assert res.n_groups == 1
        assert res.group_mass[0] == pytest.approx(p.mass.sum())

    def test_group_summaries_consistent(self):
        p = clustered_clumps(600, seed=13)
        res = friends_of_friends(p, linking_length=0.05)
        assert res.group_sizes.sum() == 600
        assert res.group_mass.sum() == pytest.approx(p.mass.sum())
        # COM of each big group lies inside the group's bounding box
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        for g in res.groups_larger_than(20):
            members = tree.particles.position[res.labels == g]
            assert np.all(res.group_com[g] >= members.min(axis=0) - 1e-12)
            assert np.all(res.group_com[g] <= members.max(axis=0) + 1e-12)

    def test_invalid_linking_length(self):
        with pytest.raises(ValueError):
            friends_of_friends(uniform_cube(10, seed=0), 0.0)


class TestBuildTimeModel:
    @pytest.fixture(scope="class")
    def tree(self):
        return build_tree(clustered_clumps(8000, seed=14), tree_type="kd", bucket_size=16)

    def test_traditional_bytes_grow_with_granularity(self, tree):
        """§II-C: finer SFC decomposition duplicates more branch data."""
        sync_bytes = []
        for n_parts in (8, 32, 128):
            parts = SfcDecomposer().assign(tree.particles, n_parts)
            trad, _ = estimate_build_times(tree, parts, n_processes=n_parts)
            sync_bytes.append(trad.sync_bytes)
        assert sync_bytes[0] < sync_bytes[1] < sync_bytes[2]

    def test_ps_wins_at_fine_granularity(self, tree):
        """With partitions scaling with processes (strong scaling), the
        Partitions-Subtrees sync cost undercuts the merge reduction."""
        parts = SfcDecomposer().assign(tree.particles, 256)
        trad, ps = estimate_build_times(tree, parts, n_processes=64)
        assert ps.sync_time < trad.sync_time
        assert ps.local_build == trad.local_build

    def test_total_includes_both_terms(self, tree):
        parts = SfcDecomposer().assign(tree.particles, 16)
        trad, ps = estimate_build_times(tree, parts, n_processes=4)
        assert trad.total == pytest.approx(trad.local_build + trad.sync_time)
        assert ps.total == pytest.approx(ps.local_build + ps.sync_time)


class TestPotentialAndEnergy:
    def test_potential_matches_direct(self):
        p = clustered_clumps(1200, seed=15)
        res = compute_gravity(p, theta=0.5, softening=1e-3, with_potential=True)
        exact = direct_potential(p, softening=1e-3)
        rel = np.abs(res.potential - exact) / np.abs(exact)
        assert np.median(rel) < 2e-3

    def test_potential_none_by_default(self):
        p = uniform_cube(200, seed=16)
        res = compute_gravity(p, theta=0.7)
        assert res.potential is None

    def test_potential_engine_equivalence(self):
        p = uniform_cube(400, seed=17)
        a = compute_gravity(p, theta=0.6, with_potential=True, traverser="transposed")
        b = compute_gravity(p, theta=0.6, with_potential=True, traverser="per-bucket")
        assert np.allclose(a.potential, b.potential, rtol=1e-9)

    def test_leapfrog_energy_conservation(self):
        """KDK leapfrog on a softened cluster: total energy drift stays
        small over many steps (symplectic integrator + consistent forces)."""
        from repro.apps.gravity import LeapfrogIntegrator
        from repro.particles import plummer_sphere

        p = plummer_sphere(300, seed=18)
        # virial-ish velocities so the cluster doesn't instantly collapse
        rng = np.random.default_rng(0)
        p.velocity += rng.normal(0, 0.3, p.velocity.shape)
        eps = 0.05

        def forces():
            res = compute_gravity(p, theta=0.4, softening=eps, with_potential=True)
            return res.accel, res.potential

        def energy(pot):
            ke = 0.5 * np.sum(p.mass * np.einsum("ij,ij->i", p.velocity, p.velocity))
            return ke + 0.5 * np.sum(p.mass * pot)

        acc, pot = forces()
        e0 = energy(pot)
        integ = LeapfrogIntegrator(p, dt=0.01)
        for _ in range(40):
            integ.begin_step(acc)
            acc, pot = forces()
            integ.finish_step(acc)
        e1 = energy(pot)
        assert abs(e1 - e0) < 0.02 * abs(e0)


class TestKernelRegistry:
    def test_all_kernels_normalised(self):
        from repro.apps.sph import KERNELS

        r = np.linspace(0, 1, 20001)
        for name, (W, _) in KERNELS.items():
            integral = np.trapezoid(4 * np.pi * r**2 * W(r, 1.0), r)
            assert integral == pytest.approx(1.0, rel=1e-3), name

    def test_gradients_match_finite_difference(self):
        from repro.apps.sph import KERNELS

        rm = np.linspace(0.02, 0.95, 40)
        eps = 1e-6
        for name, (W, gW) in KERNELS.items():
            fd = (W(rm + eps, 1.0) - W(rm - eps, 1.0)) / (2 * eps)
            assert np.allclose(gW(rm, 1.0) * rm, fd, rtol=1e-3, atol=1e-5), name

    def test_wendland_positive_and_compact(self):
        from repro.apps.sph import wendland_c2_W, wendland_c4_W

        r = np.linspace(0, 0.999, 100)
        assert np.all(wendland_c2_W(r, 1.0) > 0)
        assert np.all(wendland_c4_W(r, 1.0) > 0)
        assert wendland_c2_W(np.array([1.0]), 1.0)[0] == 0.0
        assert wendland_c4_W(np.array([1.5]), 1.0)[0] == 0.0

    def test_density_with_alternate_kernel(self):
        from repro.apps.sph import compute_density_knn

        tree = build_tree(uniform_cube(800, seed=19), tree_type="oct", bucket_size=16)
        rho_cubic = compute_density_knn(tree, k=24, kernel="cubic").density
        rho_w2 = compute_density_knn(tree, k=24, kernel="wendland_c2").density
        # same field, different estimator bias: correlated but not equal
        assert np.corrcoef(rho_cubic, rho_w2)[0, 1] > 0.9
        assert not np.allclose(rho_cubic, rho_w2)
