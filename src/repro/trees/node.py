"""Array-backed spatial tree and the per-node view object.

The :class:`Tree` holds all nodes of one tree in flat arrays ("structure of
arrays").  Children of a node are contiguous, so the topology needs only
``first_child`` and ``n_children``.  Particles are stored once, permuted into
tree order, and every node records its ``[pstart, pend)`` slice — a leaf's
bucket is literally ``tree.particles.position[pstart:pend]``.

:class:`SpatialNode` mirrors the paper's ``SpatialNode<Data>``: the object
handed to user ``Visitor`` callbacks, carrying the node's box, particle
slice, and accumulated ``Data``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..geometry import Box3
from ..particles import ParticleSet

__all__ = ["Tree", "SpatialNode"]

#: Sentinel for "no node" in index arrays.
NO_NODE = -1


class Tree:
    """One spatial tree over a (permuted) particle set.

    Nodes are indexed ``0 .. n_nodes-1`` with the root at index 0.  All
    arrays are aligned on that index:

    ``parent``       (M,)  int64   parent index, ``NO_NODE`` for root
    ``first_child``  (M,)  int64   index of first child, ``NO_NODE`` for leaf
    ``n_children``   (M,)  int64   number of children (contiguous block)
    ``pstart/pend``  (M,)  int64   particle range in tree order
    ``box_lo/box_hi`` (M, 3)       node bounding boxes
    ``level``        (M,)  int64   depth (root = 0)
    ``key``          (M,)  uint64  tree-type-specific node key (SFC prefix
                                   for octrees, heap-style path key for
                                   binary trees); unique per node
    """

    def __init__(
        self,
        particles: ParticleSet,
        parent: np.ndarray,
        first_child: np.ndarray,
        n_children: np.ndarray,
        pstart: np.ndarray,
        pend: np.ndarray,
        box_lo: np.ndarray,
        box_hi: np.ndarray,
        level: np.ndarray,
        key: np.ndarray,
        tree_type: str,
        bucket_size: int,
    ) -> None:
        self.particles = particles
        self.parent = np.ascontiguousarray(parent, dtype=np.int64)
        self.first_child = np.ascontiguousarray(first_child, dtype=np.int64)
        self.n_children = np.ascontiguousarray(n_children, dtype=np.int64)
        self.pstart = np.ascontiguousarray(pstart, dtype=np.int64)
        self.pend = np.ascontiguousarray(pend, dtype=np.int64)
        self.box_lo = np.ascontiguousarray(box_lo, dtype=np.float64)
        self.box_hi = np.ascontiguousarray(box_hi, dtype=np.float64)
        self.level = np.ascontiguousarray(level, dtype=np.int64)
        self.key = np.ascontiguousarray(key, dtype=np.uint64)
        self.tree_type = tree_type
        self.bucket_size = int(bucket_size)
        #: Per-node user Data, filled by repro.core.data.accumulate_data.
        self.data: list[Any] | None = None
        self._leaf_indices: np.ndarray | None = None

    # -- structure queries ---------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.parent)

    @property
    def n_particles(self) -> int:
        return len(self.particles)

    @property
    def root(self) -> int:
        return 0

    def is_leaf(self, i) -> np.ndarray | bool:
        out = self.first_child[i] == NO_NODE
        return bool(out) if np.isscalar(i) else out

    @property
    def leaf_indices(self) -> np.ndarray:
        """Indices of all leaves (cached)."""
        if self._leaf_indices is None:
            self._leaf_indices = np.flatnonzero(self.first_child == NO_NODE)
        return self._leaf_indices

    @property
    def n_leaves(self) -> int:
        return len(self.leaf_indices)

    @property
    def depth(self) -> int:
        return int(self.level.max()) if self.n_nodes else 0

    def children(self, i: int) -> np.ndarray:
        fc = self.first_child[i]
        if fc == NO_NODE:
            return np.empty(0, dtype=np.int64)
        return np.arange(fc, fc + self.n_children[i], dtype=np.int64)

    def node_box(self, i: int) -> Box3:
        return Box3(self.box_lo[i].copy(), self.box_hi[i].copy())

    def node_particle_count(self, i) -> np.ndarray | int:
        out = self.pend[i] - self.pstart[i]
        return int(out) if np.isscalar(i) else out

    def ancestors(self, i: int) -> list[int]:
        """Path from ``i``'s parent up to (and including) the root."""
        out: list[int] = []
        p = self.parent[i]
        while p != NO_NODE:
            out.append(int(p))
            p = self.parent[p]
        return out

    def subtree_nodes(self, i: int) -> np.ndarray:
        """All node indices in the subtree rooted at ``i`` (preorder)."""
        out: list[int] = []
        stack = [int(i)]
        while stack:
            n = stack.pop()
            out.append(n)
            fc = self.first_child[n]
            if fc != NO_NODE:
                stack.extend(range(fc, fc + self.n_children[n]))
        return np.asarray(out, dtype=np.int64)

    def leaf_of_particle(self) -> np.ndarray:
        """(N,) array mapping each particle (tree order) to its leaf index."""
        out = np.empty(self.n_particles, dtype=np.int64)
        leaves = self.leaf_indices
        for leaf in leaves:
            out[self.pstart[leaf]:self.pend[leaf]] = leaf
        return out

    def iter_preorder(self) -> Iterator[int]:
        stack = [0] if self.n_nodes else []
        while stack:
            n = stack.pop()
            yield n
            fc = self.first_child[n]
            if fc != NO_NODE:
                stack.extend(reversed(range(fc, fc + self.n_children[n])))

    def node(self, i: int) -> "SpatialNode":
        """The user-facing view of node ``i`` (paper's ``SpatialNode``)."""
        return SpatialNode(self, int(i))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tree(type={self.tree_type!r}, nodes={self.n_nodes}, "
            f"leaves={self.n_leaves}, particles={self.n_particles}, "
            f"depth={self.depth}, bucket={self.bucket_size})"
        )


@dataclass(frozen=True)
class SpatialNode:
    """Lightweight view of one tree node, handed to Visitor callbacks.

    Mirrors ``SpatialNode<Data>`` from the paper's API (Figs 6-7): exposes
    the node's accumulated ``data``, bounding box, and particle slice.
    """

    tree: Tree
    index: int

    @property
    def data(self) -> Any:
        if self.tree.data is None:
            raise RuntimeError("tree has no accumulated Data; run accumulate_data first")
        return self.tree.data[self.index]

    @property
    def box(self) -> Box3:
        return self.tree.node_box(self.index)

    @property
    def is_leaf(self) -> bool:
        return bool(self.tree.is_leaf(self.index))

    @property
    def level(self) -> int:
        return int(self.tree.level[self.index])

    @property
    def n_particles(self) -> int:
        return int(self.tree.pend[self.index] - self.tree.pstart[self.index])

    @property
    def pslice(self) -> slice:
        return slice(int(self.tree.pstart[self.index]), int(self.tree.pend[self.index]))

    @property
    def positions(self) -> np.ndarray:
        return self.tree.particles.position[self.pslice]

    @property
    def masses(self) -> np.ndarray:
        return self.tree.particles.mass[self.pslice]

    def field(self, name: str) -> np.ndarray:
        """Slice of an arbitrary particle field for this node's bucket."""
        return self.tree.particles[name][self.pslice]

    def children(self) -> list["SpatialNode"]:
        return [SpatialNode(self.tree, int(c)) for c in self.tree.children(self.index)]

    def parent(self) -> "SpatialNode | None":
        p = self.tree.parent[self.index]
        return None if p == NO_NODE else SpatialNode(self.tree, int(p))
