"""Up-and-down traversal (paper §II-A-2).

"A second type of traversal, called up-and-down, does a top-down traversal
iteratively from each node on the path from the leaf to the root.  This
traversal is usually reserved for pruning criteria that can change during
the traversal, as with k-nearest neighbors."

Starting at the target's own leaf guarantees the nearest candidates are seen
first, so the Visitor's pruning radius tightens before distant subtrees are
considered.  When climbing, only the *siblings* of the already-visited child
are descended, so no node is evaluated twice.  The Visitor's ``done()`` hook
allows early exit once the criterion is satisfied (e.g. the kNN ball no
longer crosses the visited region's boundary).
"""

from __future__ import annotations

import numpy as np

from ..trees import Tree
from .traverser import Recorder, TraversalStats, Traverser, register_traverser
from .util import ranges_to_indices
from .visitor import Visitor

__all__ = ["UpAndDownTraverser"]


class UpAndDownTraverser(Traverser):
    name = "up-and-down"

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        targets = self._resolve_targets(tree, targets)
        stats = TraversalStats(targets=len(targets))
        parent = tree.parent
        first_child = tree.first_child
        n_children = tree.n_children

        for tgt in targets:
            tgt = int(tgt)
            current = tgt
            prev = -1
            while current != -1:
                if prev == -1:
                    roots = np.array([current], dtype=np.int64)
                else:
                    fc = first_child[current]
                    roots = np.arange(fc, fc + n_children[current], dtype=np.int64)
                    roots = roots[roots != prev]
                if roots.size:
                    self._descend(tree, visitor, roots, tgt, stats, recorder)
                visitor.path_advanced(tree.node(tgt), tree.node(current))
                if visitor.done(tree.node(tgt)):
                    break
                prev = current
                current = int(parent[current])
        return stats

    @staticmethod
    def _descend(
        tree: Tree,
        visitor: Visitor,
        roots: np.ndarray,
        tgt: int,
        stats: TraversalStats,
        recorder: Recorder | None,
    ) -> None:
        """Standard top-down pass from ``roots`` toward one target bucket."""
        first_child = tree.first_child
        n_children = tree.n_children
        counts = tree.pend - tree.pstart
        tgt_count = int(counts[tgt])
        frontier = roots
        while frontier.size:
            stats.nodes_visited += int(frontier.size)
            stats.opens += int(frontier.size)
            if recorder is not None:
                recorder.on_open(tree, frontier, np.array([tgt]))
            mask = np.asarray(visitor.open_sources(tree, frontier, tgt), dtype=bool)
            closed = frontier[~mask]
            if closed.size:
                stats.node_interactions += int(closed.size)
                stats.pn_interactions += int(closed.size) * tgt_count
                if recorder is not None:
                    recorder.on_node(tree, closed, np.array([tgt]))
                visitor.node_sources(tree, closed, tgt)
            opened = frontier[mask]
            if not opened.size:
                return
            leaf_mask = first_child[opened] == -1
            leaves = opened[leaf_mask]
            if leaves.size:
                stats.leaf_interactions += int(leaves.size)
                stats.pp_interactions += int(counts[leaves].sum()) * tgt_count
                if recorder is not None:
                    recorder.on_leaf(tree, leaves, np.array([tgt]))
                visitor.leaf_sources(tree, leaves, tgt)
            internal = opened[~leaf_mask]
            frontier = ranges_to_indices(
                first_child[internal], first_child[internal] + n_children[internal]
            )


register_traverser(UpAndDownTraverser.name, UpAndDownTraverser)
