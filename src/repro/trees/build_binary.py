"""Binary spatial tree builders: k-d trees and longest-dimension trees.

Both split every internal node at the *median particle*, so the tree is
balanced by construction (paper §I: "kd-trees are guaranteed to be balanced,
but nodes can have very different aspect ratios").  They differ only in how
the split axis is chosen:

* k-d tree — cycles the axis with depth (x, y, z, x, ...), the classic
  Bentley construction;
* longest-dimension tree — always splits the longest axis of the node's
  current box (paper §IV-B), which keeps aspect ratios in check for flat,
  disk-like particle distributions.

The median split uses ``argpartition`` on the node's slice of a global
permutation array, so the particle set is permuted exactly once at the end.
Node keys are heap path keys (root 1, children ``2k`` and ``2k+1``), unique
per node and prefix-ordered along root-to-leaf paths like Morton keys are.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..particles import ParticleSet
from .build import TreeBuildConfig
from .node import NO_NODE, Tree

__all__ = ["build_kd_tree", "build_longest_dim_tree"]

# Heap keys double every level; uint64 holds 62 levels with the sentinel bit.
_MAX_BINARY_DEPTH = 62


def build_kd_tree(particles: ParticleSet, config: TreeBuildConfig) -> Tree:
    """k-d tree with depth-cycled split axes."""

    def pick_axis(level: int, lo: np.ndarray, hi: np.ndarray) -> int:
        return level % 3

    return _build_binary(particles, config, pick_axis, "kd")


def build_longest_dim_tree(particles: ParticleSet, config: TreeBuildConfig) -> Tree:
    """Longest-dimension tree: always split the node box's longest axis."""

    def pick_axis(level: int, lo: np.ndarray, hi: np.ndarray) -> int:
        return int(np.argmax(hi - lo))

    return _build_binary(particles, config, pick_axis, "longest")


def _build_binary(
    particles: ParticleSet,
    config: TreeBuildConfig,
    pick_axis: Callable[[int, np.ndarray, np.ndarray], int],
    tree_type: str,
) -> Tree:
    n = len(particles)
    pos = particles.position
    perm = np.arange(n, dtype=np.int64)
    max_depth = min(config.max_depth, _MAX_BINARY_DEPTH)

    parent: list[int] = []
    first_child: list[int] = []
    n_children: list[int] = []
    pstart: list[int] = []
    pend: list[int] = []
    box_lo: list[np.ndarray] = []
    box_hi: list[np.ndarray] = []
    level_arr: list[int] = []
    node_key: list[int] = []

    def add_node(par: int, start: int, end: int, lo, hi, level: int, key: int) -> int:
        idx = len(parent)
        parent.append(par)
        first_child.append(NO_NODE)
        n_children.append(0)
        pstart.append(start)
        pend.append(end)
        box_lo.append(np.asarray(lo, dtype=np.float64))
        box_hi.append(np.asarray(hi, dtype=np.float64))
        level_arr.append(level)
        node_key.append(key)
        return idx

    universe = particles.bounding_box()
    root = add_node(NO_NODE, 0, n, universe.lo, universe.hi, 0, 1)
    queue = [root]
    while queue:
        i = queue.pop()
        start, end = pstart[i], pend[i]
        count = end - start
        lvl = level_arr[i]
        if count <= config.bucket_size or lvl >= max_depth:
            continue
        axis = pick_axis(lvl, box_lo[i], box_hi[i])
        coords = pos[perm[start:end], axis]
        mid = count // 2
        part = np.argpartition(coords, mid)
        perm[start:end] = perm[start:end][part]
        # Split plane halfway between the two sides' extreme particles; if
        # all coordinates are identical the children share the plane, which
        # is fine (boxes may be degenerate but remain valid).
        left_max = float(coords[part[:mid]].max())
        right_min = float(coords[part[mid:]].min())
        split = 0.5 * (left_max + right_min)
        lo, hi = box_lo[i], box_hi[i]
        l_hi = hi.copy()
        l_hi[axis] = split
        r_lo = lo.copy()
        r_lo[axis] = split
        key = node_key[i]
        left = add_node(i, start, start + mid, lo.copy(), l_hi, lvl + 1, 2 * key)
        right = add_node(i, start + mid, end, r_lo, hi.copy(), lvl + 1, 2 * key + 1)
        first_child[i] = left
        n_children[i] = 2
        queue.append(left)
        queue.append(right)

    particles = particles.permuted(perm)
    tree = Tree(
        particles=particles,
        parent=np.asarray(parent),
        first_child=np.asarray(first_child),
        n_children=np.asarray(n_children),
        pstart=np.asarray(pstart),
        pend=np.asarray(pend),
        box_lo=np.asarray(box_lo),
        box_hi=np.asarray(box_hi),
        level=np.asarray(level_arr),
        key=np.asarray(node_key, dtype=np.uint64),
        tree_type=tree_type,
        bucket_size=config.bucket_size,
    )
    if config.tight_boxes:
        p = tree.particles.position
        for j in range(tree.n_nodes):
            s, e = tree.pstart[j], tree.pend[j]
            tree.box_lo[j] = p[s:e].min(axis=0)
            tree.box_hi[j] = p[s:e].max(axis=0)
    return tree
