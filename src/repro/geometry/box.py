"""Axis-aligned bounding boxes in 3-D.

The scalar :class:`Box3` is used at API boundaries (tree nodes expose their
box through it); the array functions below are the vectorised kernels the
traversals actually run.  A box is *empty* when ``lo > hi`` in any dimension;
:func:`Box3.empty` produces the canonical empty box, which acts as the
identity element for :func:`Box3.union`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Box3",
    "bounding_box",
    "boxes_center",
    "boxes_contain_points",
    "boxes_intersect_boxes",
    "boxes_intersect_sphere",
    "boxes_longest_dim",
    "boxes_union",
    "point_box_distance_sq",
    "points_boxes_distance_sq",
]


@dataclass
class Box3:
    """A closed axis-aligned box ``[lo, hi]`` in 3-D.

    Attributes
    ----------
    lo, hi:
        Length-3 float arrays.  ``lo <= hi`` for non-empty boxes.
    """

    lo: np.ndarray = field(default_factory=lambda: np.full(3, np.inf))
    hi: np.ndarray = field(default_factory=lambda: np.full(3, -np.inf))

    def __post_init__(self) -> None:
        self.lo = np.asarray(self.lo, dtype=np.float64).reshape(3)
        self.hi = np.asarray(self.hi, dtype=np.float64).reshape(3)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def empty() -> "Box3":
        """The identity element for union: contains nothing."""
        return Box3()

    @staticmethod
    def cube(center, half_side: float) -> "Box3":
        center = np.asarray(center, dtype=np.float64)
        return Box3(center - half_side, center + half_side)

    @staticmethod
    def from_points(points: np.ndarray) -> "Box3":
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return Box3.empty()
        return Box3(points.min(axis=0), points.max(axis=0))

    # -- queries -----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return bool(np.any(self.lo > self.hi))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def size(self) -> np.ndarray:
        return np.maximum(self.hi - self.lo, 0.0)

    @property
    def volume(self) -> float:
        return float(np.prod(self.size)) if not self.is_empty else 0.0

    @property
    def longest_dim(self) -> int:
        """Index of the longest axis (ties resolved to the lowest index)."""
        return int(np.argmax(self.size))

    @property
    def radius_sq(self) -> float:
        """Squared distance from center to a corner (circumsphere radius²)."""
        if self.is_empty:
            return 0.0
        half = 0.5 * self.size
        return float(np.dot(half, half))

    def contains(self, point) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def contains_box(self, other: "Box3") -> bool:
        if other.is_empty:
            return True
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "Box3") -> bool:
        if self.is_empty or other.is_empty:
            return False
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def distance_sq(self, point) -> float:
        """Squared distance from ``point`` to the box (0 when inside)."""
        point = np.asarray(point, dtype=np.float64)
        d = np.maximum(np.maximum(self.lo - point, point - self.hi), 0.0)
        return float(np.dot(d, d))

    def farthest_distance_sq(self, point) -> float:
        """Squared distance from ``point`` to the farthest corner."""
        point = np.asarray(point, dtype=np.float64)
        d = np.maximum(np.abs(point - self.lo), np.abs(point - self.hi))
        return float(np.dot(d, d))

    def intersects_sphere(self, center, radius: float) -> bool:
        return self.distance_sq(center) <= float(radius) * float(radius)

    # -- combination -------------------------------------------------------
    def union(self, other: "Box3") -> "Box3":
        return Box3(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def union_point(self, point) -> "Box3":
        point = np.asarray(point, dtype=np.float64)
        return Box3(np.minimum(self.lo, point), np.maximum(self.hi, point))

    def expanded(self, margin: float) -> "Box3":
        return Box3(self.lo - margin, self.hi + margin)

    def split(self, dim: int, coord: float) -> tuple["Box3", "Box3"]:
        """Split into (low side, high side) along ``dim`` at ``coord``."""
        left_hi = self.hi.copy()
        left_hi[dim] = coord
        right_lo = self.lo.copy()
        right_lo[dim] = coord
        return Box3(self.lo.copy(), left_hi), Box3(right_lo, self.hi.copy())

    def octant(self, i: int) -> "Box3":
        """The ``i``-th of 8 equal-volume children (bit k of i picks hi half
        of dimension k)."""
        c = self.center
        lo = self.lo.copy()
        hi = self.hi.copy()
        for dim in range(3):
            if (i >> dim) & 1:
                lo[dim] = c[dim]
            else:
                hi[dim] = c[dim]
        return Box3(lo, hi)

    def cubified(self) -> "Box3":
        """Smallest cube with the same center that contains this box.

        Octrees prefer cubical root boxes so every node keeps aspect ratio 1.
        """
        half = float(np.max(self.size)) * 0.5
        c = self.center
        return Box3(c - half, c + half)

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, Box3):
            return NotImplemented
        if self.is_empty and other.is_empty:
            return True
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "Box3(empty)"
        return f"Box3(lo={self.lo.tolist()}, hi={self.hi.tolist()})"


# ---------------------------------------------------------------------------
# Vectorised kernels over arrays of boxes (shape (M, 3) lo / hi pairs).
# ---------------------------------------------------------------------------

def bounding_box(points: np.ndarray, pad: float = 0.0) -> Box3:
    """Tight bounding box of an (N, 3) point cloud, optionally padded."""
    box = Box3.from_points(points)
    if pad and not box.is_empty:
        box = box.expanded(pad)
    return box


def boxes_union(lo: np.ndarray, hi: np.ndarray) -> Box3:
    """Union of M boxes given as (M, 3) lo / hi arrays."""
    if len(lo) == 0:
        return Box3.empty()
    return Box3(np.min(lo, axis=0), np.max(hi, axis=0))


def boxes_center(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    return 0.5 * (np.asarray(lo) + np.asarray(hi))


def boxes_longest_dim(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """(M,) array of longest-axis indices for M boxes."""
    return np.argmax(np.asarray(hi) - np.asarray(lo), axis=-1)


def boxes_contain_points(lo: np.ndarray, hi: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Boolean (M,) mask: does box i contain point i (broadcasting rules apply)."""
    points = np.asarray(points)
    return np.all((points >= lo) & (points <= hi), axis=-1)


def boxes_intersect_boxes(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> np.ndarray:
    """Pairwise (broadcast) box-box overlap test."""
    return np.all((np.asarray(lo_a) <= hi_b) & (np.asarray(lo_b) <= hi_a), axis=-1)


def point_box_distance_sq(lo: np.ndarray, hi: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Squared distance from a single point to each of M boxes -> (M,)."""
    point = np.asarray(point)
    d = np.maximum(np.maximum(lo - point, point - hi), 0.0)
    return np.einsum("...i,...i->...", d, d)


def points_boxes_distance_sq(lo: np.ndarray, hi: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared distances between M boxes and N points -> (M, N).

    ``lo``/``hi`` are (M, 3); ``points`` is (N, 3).  This is the hot kernel of
    the transposed traversal: one tree node's box against a whole batch of
    bucket centres, or one bucket's box against a batch of nodes.
    """
    lo = np.asarray(lo)[:, None, :]
    hi = np.asarray(hi)[:, None, :]
    p = np.asarray(points)[None, :, :]
    d = np.maximum(np.maximum(lo - p, p - hi), 0.0)
    return np.einsum("mni,mni->mn", d, d)


def boxes_box_distance_sq(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> np.ndarray:
    """Minimum squared distance between boxes A (broadcast) and box(es) B.

    Zero when they overlap.  Used by kNN pruning: a source node can be
    skipped when its box is farther from the target bucket's box than the
    current worst k-th neighbour distance.
    """
    d = np.maximum(np.maximum(np.asarray(lo_a) - hi_b, np.asarray(lo_b) - hi_a), 0.0)
    return np.einsum("...i,...i->...", d, d)


def boxes_intersect_sphere(
    lo: np.ndarray, hi: np.ndarray, center: np.ndarray, radius_sq: np.ndarray
) -> np.ndarray:
    """Does each of M boxes intersect the (broadcast) sphere(s)?

    ``center`` may be (3,) or (M, 3); ``radius_sq`` scalar or (M,).
    """
    return point_box_distance_sq(lo, hi, center) <= radius_sq
