"""Tree topology queries and the SpatialNode view."""

import numpy as np
import pytest

from repro.particles import uniform_cube
from repro.trees import build_tree


@pytest.fixture(scope="module")
def tree():
    return build_tree(uniform_cube(600, seed=0), tree_type="oct", bucket_size=8)


class TestTopology:
    def test_root_properties(self, tree):
        assert tree.root == 0
        assert tree.parent[0] == -1
        assert tree.node_particle_count(0) == 600

    def test_leaf_indices_consistent(self, tree):
        leaves = tree.leaf_indices
        assert np.all(tree.first_child[leaves] == -1)
        assert tree.n_leaves == len(leaves)
        internal = np.setdiff1d(np.arange(tree.n_nodes), leaves)
        assert np.all(tree.first_child[internal] != -1)

    def test_children_parent_roundtrip(self, tree):
        for i in range(0, tree.n_nodes, 7):
            for c in tree.children(i):
                assert tree.parent[c] == i

    def test_ancestors_end_at_root(self, tree):
        leaf = int(tree.leaf_indices[-1])
        anc = tree.ancestors(leaf)
        assert anc[-1] == 0
        assert len(anc) == tree.level[leaf]
        # ancestors are strictly decreasing in level
        levels = [tree.level[a] for a in anc]
        assert levels == sorted(levels, reverse=True)

    def test_subtree_nodes_partition(self, tree):
        """Children subtrees partition the parent subtree (minus itself)."""
        kids = tree.children(0)
        all_nodes = set(tree.subtree_nodes(0).tolist())
        union = {0}
        for c in kids:
            sub = set(tree.subtree_nodes(c).tolist())
            assert union.isdisjoint(sub - {0})
            union |= sub
        assert union == all_nodes

    def test_leaf_of_particle(self, tree):
        leaf_of = tree.leaf_of_particle()
        for leaf in tree.leaf_indices[:10]:
            s, e = tree.pstart[leaf], tree.pend[leaf]
            assert np.all(leaf_of[s:e] == leaf)

    def test_preorder_visits_all_once(self, tree):
        seen = list(tree.iter_preorder())
        assert len(seen) == tree.n_nodes
        assert len(set(seen)) == tree.n_nodes
        assert seen[0] == 0
        # parent precedes child in preorder
        pos = {n: i for i, n in enumerate(seen)}
        for i in range(1, tree.n_nodes):
            assert pos[int(tree.parent[i])] < pos[i]


class TestSpatialNode:
    def test_views(self, tree):
        leaf = int(tree.leaf_indices[0])
        node = tree.node(leaf)
        assert node.is_leaf
        assert node.n_particles == tree.pend[leaf] - tree.pstart[leaf]
        assert node.positions.shape == (node.n_particles, 3)
        assert node.masses.shape == (node.n_particles,)
        assert node.box.contains(node.positions[0])
        assert node.field("mass").shape == (node.n_particles,)

    def test_parent_child_navigation(self, tree):
        root = tree.node(0)
        assert root.parent() is None
        kids = root.children()
        assert kids and all(k.parent().index == 0 for k in kids)
        assert all(k.level == 1 for k in kids)

    def test_data_access_requires_accumulation(self, tree):
        node = tree.node(0)
        tree.data = None
        with pytest.raises(RuntimeError):
            _ = node.data
