"""Artificial viscosity and the energy equation (Monaghan 1992).

The paper's SPH section evolves "density, internal energy and pressure
fields"; shock handling in Gadget-2-lineage codes uses the standard
Monaghan α/β viscosity.  This module extends the pressure-force kernel
with:

* the pairwise viscous term ``Π_ij = (-α c̄ μ + β μ²)/ρ̄`` applied only to
  approaching pairs (``v·r < 0``),
* the matching ``du/dt`` so the dissipated kinetic energy reappears as
  heat (total energy is conserved up to neighbour-list truncation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...trees import Tree
from ..knn import KNNResult
from .kernels import cubic_spline_gradW_over_r

__all__ = ["ViscosityParams", "compute_sph_accelerations"]


@dataclass(frozen=True)
class ViscosityParams:
    """Monaghan viscosity parameters (Gadget-2 defaults α≈1, β=2α)."""

    alpha: float = 1.0
    beta: float = 2.0
    #: softening in the μ denominator, in units of h̄² (avoids divergence
    #: for nearly-coincident approaching pairs)
    eta_sq: float = 0.01


def compute_sph_accelerations(
    tree: Tree,
    neighbors: KNNResult,
    density: np.ndarray,
    pressure: np.ndarray,
    h: np.ndarray,
    sound_speed: np.ndarray | None = None,
    viscosity: ViscosityParams | None = None,
    gamma: float = 5.0 / 3.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Pressure + viscous accelerations and the energy rate.

    Returns ``(accel (N, 3), du_dt (N,))`` in tree order.  With
    ``viscosity=None`` this reduces to the inviscid momentum equation plus
    the adiabatic ``du/dt = P/ρ² dρ/dt`` work term evaluated pairwise.
    """
    pos = tree.particles.position
    vel = tree.particles.velocity
    mass = tree.particles.mass
    n, k = neighbors.index.shape
    i = np.repeat(np.arange(n), k)
    j = neighbors.index.ravel()
    valid = j >= 0
    i, j = i[valid], j[valid]

    dvec = pos[i] - pos[j]
    dv = vel[i] - vel[j]
    r = np.linalg.norm(dvec, axis=1)
    h_pair = 0.5 * (h[i] + h[j])
    gw = cubic_spline_gradW_over_r(r, h_pair)  # (dW/dr)/r
    grad = gw[:, None] * dvec                   # ∇_i W_ij

    rho_i = np.maximum(density[i], 1e-300)
    rho_j = np.maximum(density[j], 1e-300)
    p_term = pressure[i] / rho_i**2 + pressure[j] / rho_j**2

    visc = np.zeros(len(i))
    if viscosity is not None:
        if sound_speed is None:
            sound_speed = np.sqrt(gamma * pressure / np.maximum(density, 1e-300))
        vdotr = np.einsum("pj,pj->p", dv, dvec)
        approaching = vdotr < 0
        mu = np.zeros(len(i))
        denom = r**2 + viscosity.eta_sq * h_pair**2
        mu[approaching] = (
            h_pair[approaching] * vdotr[approaching] / denom[approaching]
        )
        c_bar = 0.5 * (sound_speed[i] + sound_speed[j])
        rho_bar = 0.5 * (rho_i + rho_j)
        visc = (-viscosity.alpha * c_bar * mu + viscosity.beta * mu**2) / rho_bar
        visc[~approaching] = 0.0

    coef = -(p_term + visc) * mass[j]
    accel = np.zeros((n, 3))
    np.add.at(accel, i, coef[:, None] * grad)

    # Energy equation: du_i/dt = ½ Σ_j m_j (P_i/ρ_i² + Π_ij) (v_i−v_j)·∇W.
    vdotgrad = np.einsum("pj,pj->p", dv, grad)
    du_pair = mass[j] * (pressure[i] / rho_i**2 + 0.5 * visc) * vdotgrad
    du_dt = np.zeros(n)
    np.add.at(du_dt, i, du_pair)
    return accel, du_dt
