"""Trace-driven CPU cache-hierarchy simulator (paper Table II substrate).

The paper profiles hardware PMU counters (L1D/L2/L3 accesses and miss
rates) to show *why* the transposed traversal is faster: it touches tree
data far fewer times at the cost of somewhat worse locality per access.  We
have no PMU, so we rebuild the mechanism:

1. run the *real* traversal of each style with a recording visitor wrapper
   (:class:`~repro.memsim.trace.MemoryTraceRecorder`) — the engine's actual
   evaluation order becomes the access order;
2. map every touched object (node summaries, particle coordinates, masses,
   accumulators) to cache-line addresses via an explicit data layout
   (:class:`~repro.memsim.trace.DataLayout`);
3. replay the line stream through set-associative LRU L1D/L2/L3 models with
   the Skylake-SKX geometry of the paper's Stampede2 node
   (:func:`~repro.memsim.hierarchy.skx_hierarchy`).

Absolute access counts are line-granular (the paper's PMU counts are
instruction-granular and ~10³× larger); the reproduced quantities are the
*ratios* between the two traversal styles and the miss-rate ordering.
"""

from .cache import CacheLevel, CacheStats
from .hierarchy import CacheHierarchy, HierarchyStats, skx_hierarchy
from .trace import DataLayout, MemoryTraceRecorder, replay_trace
from .profile import CacheProfile, profile_traversal_style

__all__ = [
    "CacheLevel",
    "CacheStats",
    "CacheHierarchy",
    "HierarchyStats",
    "skx_hierarchy",
    "DataLayout",
    "MemoryTraceRecorder",
    "replay_trace",
    "CacheProfile",
    "profile_traversal_style",
]
