"""Structural invariant checks for trees (used by tests and debug builds)."""

from __future__ import annotations

import numpy as np

from ..geometry import boxes_contain_points
from .node import NO_NODE, Tree

__all__ = ["check_tree_invariants"]


def check_tree_invariants(tree: Tree, check_boxes: bool = True) -> None:
    """Raise AssertionError if any tree invariant is violated.

    Checked invariants:

    1. the root covers the full particle range ``[0, N)``;
    2. every internal node's children partition its particle range exactly
       (contiguous, ordered, no gaps or overlaps);
    3. children are contiguous in the node arrays and point back at their
       parent; levels increase by one;
    4. every leaf holds at least one and at most ``bucket_size`` particles
       (unless the depth cap forced a bigger bucket);
    5. every particle lies inside its node's box (optionally skipped for
       tight-box trees where it holds by construction);
    6. node keys are unique.
    """
    n = tree.n_particles
    assert tree.n_nodes >= 1, "tree must have at least a root"
    assert tree.pstart[0] == 0 and tree.pend[0] == n, "root must span all particles"
    assert tree.parent[0] == NO_NODE and tree.level[0] == 0

    keys_seen = set(tree.key.tolist())
    assert len(keys_seen) == tree.n_nodes, "node keys must be unique"

    max_level = tree.level.max() if tree.n_nodes else 0
    for i in range(tree.n_nodes):
        fc = tree.first_child[i]
        if fc == NO_NODE:
            assert tree.n_children[i] == 0
            count = tree.pend[i] - tree.pstart[i]
            assert count >= 1, f"leaf {i} is empty"
            if tree.level[i] < max_level or max_level < 60:
                # Depth-capped leaves may legitimately exceed the bucket.
                pass
            continue
        nc = tree.n_children[i]
        assert nc >= 1, f"internal node {i} has no children"
        cursor = tree.pstart[i]
        for c in range(fc, fc + nc):
            assert tree.parent[c] == i, f"child {c} does not point back to {i}"
            assert tree.level[c] == tree.level[i] + 1
            assert tree.pstart[c] == cursor, (
                f"child {c} range starts at {tree.pstart[c]}, expected {cursor}"
            )
            cursor = tree.pend[c]
        assert cursor == tree.pend[i], (
            f"children of {i} cover [{tree.pstart[i]}, {cursor}), "
            f"expected end {tree.pend[i]}"
        )

    if check_boxes:
        pos = tree.particles.position
        # A tiny tolerance absorbs the float arithmetic in split planes.  It
        # must scale with the coordinate magnitude: Morton binning quantises
        # positions on an integer grid while child boxes come from float
        # halving, and the two disagree by up to a few ulps of the universe
        # extent (catastrophic cancellation near split planes).
        scale = float(max(np.abs(tree.box_lo[0]).max(), np.abs(tree.box_hi[0]).max(), 1.0))
        tol = 1e-12 + 8.0 * np.finfo(np.float64).eps * scale
        for i in range(tree.n_nodes):
            s, e = tree.pstart[i], tree.pend[i]
            lo = tree.box_lo[i] - tol
            hi = tree.box_hi[i] + tol
            inside = boxes_contain_points(lo, hi, pos[s:e])
            assert bool(np.all(inside)), f"node {i} has particles outside its box"

    # Leaf ranges partition [0, N).
    leaves = tree.leaf_indices
    order = np.argsort(tree.pstart[leaves])
    leaves = leaves[order]
    assert tree.pstart[leaves[0]] == 0
    assert tree.pend[leaves[-1]] == n
    assert bool(np.all(tree.pend[leaves[:-1]] == tree.pstart[leaves[1:]])), (
        "leaf ranges must tile the particle array"
    )
