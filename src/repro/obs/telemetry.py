"""The telemetry facade: one tracer + one metrics registry, plus the
process-wide "current telemetry" used by instrumentation points that have no
object to hang a reference on (traversal engines, ``build_tree``,
``decompose``, the DES).

The default current telemetry is :data:`NULL_TELEMETRY`, whose tracer and
registry are shared no-ops — instrumented code runs the seed path with one
extra attribute lookup per instrumentation point.  Enable collection either
through :meth:`~repro.core.driver.Driver.enable_telemetry`, by calling
:func:`set_telemetry`, or scoped with :func:`use_telemetry`.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable

from .flight import FlightRecorder, NULL_FLIGHT, NullFlightRecorder
from .metrics import MetricsRegistry, NULL_METRICS, NullMetricsRegistry
from .span import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "traced",
]


class Telemetry:
    """A tracer and a metrics registry that live and export together."""

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetricsRegistry | None = None,
        enabled: bool = True,
        flight: FlightRecorder | NullFlightRecorder | None = None,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.tracer = tracer if tracer is not None else Tracer()
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.flight = flight if flight is not None else FlightRecorder()
        else:
            self.tracer = NULL_TRACER
            self.metrics = NULL_METRICS
            self.flight = NULL_FLIGHT
        # spans report open/close into the flight recorder through the tracer
        if getattr(self.tracer, "enabled", False):
            self.tracer.flight = self.flight

    def span(self, name: str, cat: str = "phase", **args: Any):
        """Shortcut for ``self.tracer.span(...)``."""
        return self.tracer.span(name, cat=cat, **args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(enabled={self.enabled}, "
            f"events={len(self.tracer.events)}, metrics={len(self.metrics)})"
        )


NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-wide current telemetry (NULL_TELEMETRY when disabled)."""
    return _current


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` as current (None disables); returns the
    previous one so callers can restore it."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry | None):
    """Scoped :func:`set_telemetry`; restores the previous telemetry."""
    previous = set_telemetry(telemetry)
    try:
        yield get_telemetry()
    finally:
        set_telemetry(previous)


def traced(name: str | None = None, cat: str = "function") -> Callable:
    """Decorator wrapping a function call in a span on the *current*
    telemetry.  Zero work when telemetry is disabled."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            telemetry = _current
            if not telemetry.enabled:
                return fn(*args, **kwargs)
            with telemetry.tracer.span(label, cat=cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
