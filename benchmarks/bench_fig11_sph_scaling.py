"""Fig 11 — Gadget-2 vs ParaTreeT SPH iteration times.

Reproduces §III-B on the Stampede2 configuration: both codes do "the same
SPH computations on an octree with SFC decomposition", but

* **ParaTreeT** finds each particle's neighbours with a single kNN
  traversal and runs on the shared-memory runtime (24-worker processes,
  wait-free cache);
* **Gadget-2** converges a smoothing length per particle by repeated
  fixed-ball searches ("more parallelizable but less efficient") and
  "relies on the Message Passing Interface entirely, and does not leverage
  shared memory" — modelled as one single-worker process per core with
  per-process caches.

The reproduced claim is the *shape*: ParaTreeT is faster everywhere and the
gap widens with scale (the paper reports ~10x across 48 → 3072 cores; our
scaled dataset reproduces a large, growing multiple).
"""

import pytest

from repro.bench import build_sph_workloads, format_series, paper_reference, print_banner
from repro.cache import PER_THREAD, WAITFREE
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal

CORES = (48, 192, 768)


@perf_benchmark("des.sph_scaling", group="des",
                description="Fig 11 ParaTreeT kNN point: 8 procs x 24 workers")
def perf_sph_scaling(quick=False):
    knn_wl, _, _ = build_sph_workloads(n=4_000 if quick else 12_000, k=32)

    def run():
        r = simulate_traversal(
            knn_wl.workload, machine=STAMPEDE2, n_processes=8,
            workers_per_process=24, cache_model=WAITFREE,
        )
        return {"sim_time": r.time}

    return run


@pytest.fixture(scope="module")
def sph_workloads():
    return build_sph_workloads(n=12_000, k=32)


_CACHE = {}


def _sweep(sph_workloads):
    if "sweep" in _CACHE:
        return _CACHE["sweep"]
    knn_wl, gadget_wl, rounds = sph_workloads
    paratreet, gadget = [], []
    for cores in CORES:
        r = simulate_traversal(
            knn_wl.workload, machine=STAMPEDE2,
            n_processes=cores // 24, workers_per_process=24,
            cache_model=WAITFREE,
        )
        paratreet.append(r.time)
        # Gadget: one MPI rank per core, no shared memory.
        g = simulate_traversal(
            gadget_wl.workload, machine=STAMPEDE2,
            n_processes=cores, workers_per_process=1,
            cache_model=PER_THREAD,
        )
        gadget.append(g.time)
    _CACHE["sweep"] = ({"ParaTreeT": paratreet, "Gadget2-style": gadget}, rounds)
    return _CACHE["sweep"]


def test_fig11_shape(benchmark, sph_workloads):
    series, rounds = benchmark.pedantic(_sweep, args=(sph_workloads,), rounds=1, iterations=1)
    print_banner("Fig 11: average SPH iteration time on Stampede2 (s)")
    print(format_series("cores", list(CORES), series))
    ratios = [g / p for p, g in zip(series["ParaTreeT"], series["Gadget2-style"])]
    print(f"\nGadget/ParaTreeT ratio per point: {[round(r, 2) for r in ratios]}")
    print(f"gadget smoothing-length iteration took {rounds} ball rounds")
    print(f"paper: '~10x speedup from {paper_reference.FIG11_CORE_RANGE[0]} to "
          f"{paper_reference.FIG11_CORE_RANGE[1]} cores'")

    # ParaTreeT wins at every point...
    assert all(r > 1.5 for r in ratios)
    # ...the top-end gap is large (several x; the paper reports ~10x at its
    # 64x larger problem)...
    assert ratios[-1] > 3.0
    # ...and the gap does not shrink with scale.
    assert ratios[-1] >= ratios[0] * 0.9
    # Both still benefit from more cores at these sizes.
    assert series["ParaTreeT"][-1] < series["ParaTreeT"][0]


def test_fig11_work_mechanism(benchmark, sph_workloads):
    """The algorithmic half of the gap: ball iteration does a multiple of
    the kNN traversal's particle-pair work."""
    knn_wl, gadget_wl, rounds = sph_workloads
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    knn_pp = knn_wl.stats.pp_interactions
    gadget_pp = gadget_wl.stats.pp_interactions
    print(f"\nkNN pp interactions:    {knn_pp:>12,}")
    print(f"gadget pp interactions: {gadget_pp:>12,} ({gadget_pp / knn_pp:.2f}x, "
          f"{rounds} rounds)")
    assert rounds >= 3
    assert gadget_pp > 1.5 * knn_pp


def test_fig11_benchmark_knn_point(benchmark, sph_workloads):
    knn_wl, _, _ = sph_workloads

    def run():
        return simulate_traversal(
            knn_wl.workload, machine=STAMPEDE2, n_processes=8,
            workers_per_process=24, cache_model=WAITFREE,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.time > 0
