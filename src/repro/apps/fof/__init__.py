"""Friends-of-Friends group finding.

§III motivates the framework with "the computation and analysis of
cosmological datasets"; FoF halo finding is the standard analysis pass over
exactly the data the gravity solver evolves.  Groups are maximal sets of
particles chained by pairwise separations below the linking length; the
tree's ball searches make it O(N log N) instead of O(N²).
"""

from .fof import FoFResult, friends_of_friends, brute_force_fof, UnionFind

__all__ = ["FoFResult", "friends_of_friends", "brute_force_fof", "UnionFind"]
