"""The discrete-event simulation core: event loop, resources, worker pools."""

import pytest

from repro.runtime import FifoResource, Simulator, WorkerPool
from repro.runtime.tracing import ActivityTrace, activity_totals, utilization_profile


class TestSimulator:
    def test_event_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        end = sim.run()
        assert order == ["a", "b", "c"]
        assert end == 3.0
        assert sim.events_processed == 3

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(0.5, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(10.0, lambda: hits.append(2))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert hits == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_at_absolute(self):
        sim = Simulator()
        out = []
        sim.at(2.5, lambda: out.append(sim.now))
        sim.run()
        assert out == [2.5]

    def test_determinism(self):
        def build():
            sim = Simulator()
            log = []
            res = FifoResource(sim, capacity=2)
            for i in range(10):
                sim.schedule(0.1 * (i % 3), lambda i=i: res.submit(0.5, lambda i=i: log.append((i, sim.now))))
            sim.run()
            return log

        assert build() == build()


class TestFifoResource:
    def test_serialises_beyond_capacity(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=1)
        done = []
        for i in range(3):
            res.submit(1.0, lambda i=i: done.append((i, sim.now)))
        sim.run()
        assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]
        assert res.busy_time == pytest.approx(3.0)
        assert res.jobs_served == 3
        assert res.max_queue >= 1

    def test_parallel_slots(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=3)
        done = []
        for i in range(3):
            res.submit(1.0, lambda i=i: done.append(sim.now))
        sim.run()
        assert done == [1.0, 1.0, 1.0]

    def test_on_start_fires_at_service_begin(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=1)
        starts = []
        res.submit(2.0, on_start=lambda: starts.append(sim.now))
        res.submit(1.0, on_start=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [0.0, 2.0]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoResource(Simulator(), capacity=0)


class TestWorkerPool:
    def test_parallelism_bounded_by_workers(self):
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=2)
        done = []
        for i in range(4):
            pool.submit(1.0, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 1.0, 2.0, 2.0]
        assert pool.busy_time == pytest.approx(4.0)
        assert pool.tasks_run == 4

    def test_least_busy_dispatch(self):
        """Targeted tasks go to the worker with the least backlog."""
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=2)
        ends = []
        pool.submit_to_least_busy(5.0)        # worker 0
        pool.submit_to_least_busy(1.0)        # worker 1 (less backlog)
        pool.submit_to_least_busy(1.0, on_done=lambda: ends.append(sim.now))
        sim.run()
        # third task lands on worker 1 behind the 1.0s task -> done at 2.0
        assert ends == [2.0]

    def test_trace_records_labels(self):
        sim = Simulator()
        trace = ActivityTrace()
        pool = WorkerPool(sim, n_workers=1, trace=trace, process_id=3)
        pool.submit(1.0, label="local traversal")
        pool.submit(0.5, label="cache insertion")
        sim.run()
        totals = activity_totals(trace)
        assert totals["local traversal"] == pytest.approx(1.0)
        assert totals["cache insertion"] == pytest.approx(0.5)
        assert all(iv[0] == 3 for iv in trace.intervals)

    def test_on_start_chains_submissions(self):
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=1)
        log = []
        pool.submit(1.0, on_start=lambda: pool.submit(0.5, on_done=lambda: log.append(sim.now)))
        sim.run()
        assert log == [1.5]

    def test_idle_workers(self):
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=4)
        assert pool.idle_workers() == 4

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(Simulator(), n_workers=0)


class TestUtilizationProfile:
    def test_binning(self):
        trace = ActivityTrace()
        # two workers: one busy 0-10 on A, one busy 5-10 on B
        trace.record(0, 0, 0.0, 10.0, "A")
        trace.record(0, 1, 5.0, 10.0, "B")
        edges, series = utilization_profile(trace, n_workers_total=2, n_bins=10)
        assert len(edges) == 11
        assert series["A"][0] == pytest.approx(0.5)   # 1 of 2 workers
        assert series["B"][0] == pytest.approx(0.0)
        assert series["A"][-1] + series["B"][-1] == pytest.approx(1.0)

    def test_total_time_preserved(self):
        trace = ActivityTrace()
        trace.record(0, 0, 0.3, 7.7, "X")
        edges, series = utilization_profile(trace, n_workers_total=1, n_bins=7)
        width = edges[1] - edges[0]
        assert series["X"].sum() * width * 1 == pytest.approx(7.4)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ActivityTrace().record(0, 0, 2.0, 1.0, "bad")

    def test_empty_trace(self):
        edges, series = utilization_profile(ActivityTrace(), 4)
        assert series == {}


class TestSimulatorEdgeCases:
    def test_run_on_empty_heap_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_resource_done_callback_optional(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=1)
        res.submit(1.0)  # no callbacks at all
        assert sim.run() == 1.0

    def test_pool_mixed_bound_and_shared(self):
        """Bound (least-busy) tasks take precedence over the shared queue
        on their worker, shared tasks fill the idle workers."""
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=2)
        done = []
        pool.submit_to_least_busy(2.0, on_done=lambda: done.append("bound"))
        pool.submit(1.0, on_done=lambda: done.append("shared"))
        pool.submit(1.0, on_done=lambda: done.append("shared2"))
        sim.run()
        # worker 0 runs the bound task; worker 1 drains both shared tasks
        assert done == ["shared", "bound", "shared2"] or done == ["shared", "shared2", "bound"]
        assert sim.now == pytest.approx(2.0)


class TestTimers:
    def test_cancelled_timer_never_fires(self):
        sim = Simulator()
        fired = []
        t = sim.schedule(1.0, lambda: fired.append(1))
        assert t.active
        t.cancel()
        assert not t.active
        sim.run()
        assert fired == []

    def test_cancellation_is_clock_invisible(self):
        """A run whose timers are all cancelled is bit-identical to a run
        that never scheduled them: same clock, same event count."""
        plain = Simulator()
        plain.schedule(1.0, lambda: None)
        plain.run()

        timed = Simulator()
        timed.schedule(1.0, lambda: None)
        t = timed.schedule(5.0, lambda: None)  # would have been the last event
        t.cancel()
        timed.run()
        assert timed.now == plain.now == 1.0
        assert timed.events_processed == plain.events_processed == 1

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        drop.cancel()
        assert sim.pending == 1
        assert keep.active

    def test_silent_events_do_not_count(self):
        """Silent timers advance the clock (causality) but land in a
        separate counter, so probes that fire-and-do-nothing leave the
        public event count untouched."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None, silent=True)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1
        assert sim.silent_events == 1
        assert sim.now == 2.0


class TestInputValidation:
    def test_schedule_rejects_nan_and_inf(self):
        sim = Simulator()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                sim.schedule(bad, lambda: None)

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1e-9, lambda: None)

    def test_at_rejects_past_times(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(0.5, lambda: None)

    def test_resource_rejects_bad_service_times(self):
        sim = Simulator()
        res = FifoResource(sim)
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError):
                res.submit(bad)

    def test_pool_rejects_bad_service_times(self):
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=2)
        for bad in (float("nan"), float("inf"), -0.5):
            with pytest.raises(ValueError):
                pool.submit(bad)
            with pytest.raises(ValueError):
                pool.submit_to_least_busy(bad)
            with pytest.raises(ValueError):
                pool.preempt_all(bad)


class TestFaultSupportPrimitives:
    def test_backlog_jobs_tracks_busy_plus_queue(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=1)
        assert res.backlog_jobs == 0
        res.submit(1.0)
        res.submit(1.0)
        res.submit(1.0)
        assert res.backlog_jobs == 3  # one in service, two queued
        sim.run(until=1.5)
        assert res.backlog_jobs == 2
        sim.run()
        assert res.backlog_jobs == 0

    def test_preempt_all_stalls_every_worker(self):
        """The crash-restart model: queued work waits out the restart
        window on every worker before resuming."""
        sim = Simulator()
        pool = WorkerPool(sim, n_workers=2)
        done = []
        pool.submit(1.0, on_done=lambda: done.append("a"))
        pool.submit(1.0, on_done=lambda: done.append("b"))
        pool.submit(1.0, on_done=lambda: done.append("queued"))
        pool.preempt_all(10.0)
        sim.run()
        # the two running tasks finish at t=1, then both workers stall for
        # 10, then the queued task runs: 1 + 10 + 1
        assert sim.now == pytest.approx(12.0)
        assert done[:2] == ["a", "b"] and done[-1] == "queued"
