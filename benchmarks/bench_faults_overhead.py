"""Fault-injection overhead: the Fig 10 gravity DES with the injector
disabled, armed-but-silent, and firing at increasing drop rates.

Two acceptance bars:

* **disabled ≈ free** — passing no fault plan runs the exact seed code
  path (no timers armed), and an armed-but-silent plan (all probabilities
  zero) must stay within noise of it while producing bit-identical results;
* **recovery cost scales with the drop rate** — each lost leg costs one
  timeout window plus a re-send, so simulated time grows monotonically-ish
  with the drop probability while the run still completes.

Run ``pytest benchmarks/bench_faults_overhead.py --benchmark-only -s``.
"""

from repro.bench import build_gravity_workload, print_banner
from repro.cache import WAITFREE
from repro.faults import FaultPlan, parse_fault_spec
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal

N_PROC = 16
WORKERS = 24


@perf_benchmark("des.faults_armed", group="des",
                description="Fig 10 DES with an armed-but-silent fault plan")
def perf_faults_armed(quick=False):
    workload = build_gravity_workload(
        distribution="clustered", n=6_000 if quick else 25_000,
        n_partitions=1024, n_subtrees=1024, shared_branch_levels=4,
    ).workload

    def run():
        r = _run(workload, faults=FaultPlan(seed=0))
        return {"sim_time": r.time}

    return run


def _workload():
    return build_gravity_workload(
        distribution="clustered", n=25_000, n_partitions=1024,
        n_subtrees=1024, shared_branch_levels=4,
    ).workload


def _run(workload, faults=None):
    return simulate_traversal(
        workload, machine=STAMPEDE2, n_processes=N_PROC,
        workers_per_process=WORKERS, cache_model=WAITFREE, faults=faults,
    )


def test_des_faults_disabled(benchmark):
    """Seed configuration: no injector, no timers, the PR-1 baseline."""
    workload = _workload()
    result = benchmark.pedantic(lambda: _run(workload), rounds=3, iterations=1)
    assert result.faults is None


def test_des_faults_armed_but_silent(benchmark):
    """A zero-probability plan arms the timeout machinery on every request
    but never fires; results must be bit-identical to the baseline."""
    workload = _workload()
    baseline = _run(workload)
    result = benchmark.pedantic(
        lambda: _run(workload, faults=FaultPlan(seed=0)), rounds=3, iterations=1
    )
    assert result.time == baseline.time
    assert result.events == baseline.events
    assert all(v == 0 for v in result.faults.to_dict().values())


def test_des_retry_slowdown_vs_drop_rate(benchmark):
    """Sweep the drop probability: the simulated iteration keeps completing
    while retries/timeouts (and usually the makespan) grow with the rate."""
    workload = _workload()
    baseline = _run(workload)

    result = benchmark.pedantic(
        lambda: _run(workload, faults=parse_fault_spec("drop=0.05,seed=3")),
        rounds=3, iterations=1,
    )

    print_banner("retry slowdown vs drop rate")
    print(f"{'drop':>6} {'sim ms':>10} {'slowdown':>9} "
          f"{'drops':>6} {'retries':>8} {'timeouts':>9}")
    print(f"{0.0:6.2f} {baseline.time * 1e3:10.3f} {1.0:9.2f}"
          f" {0:>6} {0:>8} {0:>9}")
    prev_retries = 0
    for rate in (0.01, 0.02, 0.05, 0.1):
        r = _run(workload, faults=parse_fault_spec(f"drop={rate},seed=3"))
        c = r.faults.to_dict()
        print(f"{rate:6.2f} {r.time * 1e3:10.3f} {r.time / baseline.time:9.2f} "
              f"{c['drops']:>6} {c['retries']:>8} {c['timeouts']:>9}")
        assert c["retries"] >= prev_retries, "higher drop rate, fewer retries?"
        prev_retries = c["retries"]

    assert result.faults.drops > 0
