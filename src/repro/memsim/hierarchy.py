"""Multi-level, multi-CPU cache hierarchy.

Mirrors the Stampede2 SKX node of the paper's Table II: per-CPU private L1D
(32 KB, 8-way) and L2 (1 MB, 16-way), one shared L3 (33 MB, 11-way).  The
lookup path is the usual one: L1 miss → L2, L2 miss → L3; every level
allocates on miss (write-allocate).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import CacheLevel, CacheStats

__all__ = ["CacheHierarchy", "HierarchyStats", "skx_hierarchy"]


@dataclass
class HierarchyStats:
    """Aggregated per-level statistics across all CPUs."""

    l1: CacheStats
    l2: CacheStats
    l3: CacheStats

    def as_table_row(self) -> dict[str, float]:
        """The quantities Table II reports."""
        combined_store_misses = self.l2.store_misses  # misses that left L2
        return {
            "l1_loads": self.l1.load_accesses,
            "l1_stores": self.l1.store_accesses,
            "l1_load_miss_rate": self.l1.load_miss_rate,
            "l2_load_miss_rate": self.l2.load_miss_rate,
            "l3_load_miss_rate": self.l3.load_miss_rate,
            # Table II groups "(L1D & L2)" store miss rate: stores that miss
            # both private levels, relative to all store accesses.
            "l1l2_store_miss_rate": (
                combined_store_misses / self.l1.store_accesses
                if self.l1.store_accesses
                else 0.0
            ),
            "l3_store_miss_rate": self.l3.store_miss_rate,
        }


class CacheHierarchy:
    """``n_cpus`` private L1/L2 pairs in front of one shared L3."""

    def __init__(
        self,
        n_cpus: int,
        l1=(32 * 1024, 8),
        l2=(1024 * 1024, 16),
        l3=(33 * 1024 * 1024 // 64 // 11 * 11 * 64, 11),
        line_size: int = 64,
    ) -> None:
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        self.n_cpus = n_cpus
        self.line_size = line_size
        self.l1s = [CacheLevel(f"L1D#{c}", l1[0], l1[1], line_size) for c in range(n_cpus)]
        self.l2s = [CacheLevel(f"L2#{c}", l2[0], l2[1], line_size) for c in range(n_cpus)]
        self.l3 = CacheLevel("L3", l3[0], l3[1], line_size)

    def access(self, cpu: int, line_addr: int, is_write: bool) -> None:
        """One line access from ``cpu``; walks down on misses."""
        if self.l1s[cpu].access_line(line_addr, is_write):
            return
        if self.l2s[cpu].access_line(line_addr, is_write):
            return
        self.l3.access_line(line_addr, is_write)

    def stats(self) -> HierarchyStats:
        l1 = CacheStats()
        l2 = CacheStats()
        for a, b in zip(self.l1s, self.l2s):
            l1 = l1.merged(a.stats)
            l2 = l2.merged(b.stats)
        return HierarchyStats(l1=l1, l2=l2, l3=self.l3.stats)


def skx_hierarchy(n_cpus: int) -> CacheHierarchy:
    """The paper's SKX node: 32 KB/8-way L1D, 1 MB/16-way L2, 33 MB/11-way
    shared L3 (size rounded down to a valid 11-way geometry)."""
    return CacheHierarchy(n_cpus=n_cpus)
