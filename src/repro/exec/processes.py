"""Process pool backend: zero-copy shared arrays, partition-ordered reduce.

The parent packs the tree topology, particle fields, and the visitor's
shared arrays into one :class:`~repro.exec.shm.ShmArena`
(``multiprocessing.shared_memory``).  Workers attach read-only views — no
serialisation of the large SoA data ever happens — rebuild the
:class:`~repro.trees.Tree` and a worker-local visitor over those views
(``exec_rebuild``), traverse their chunk, and send back only the small
per-chunk outputs (``exec_collect``), stats, and fork recorders.

The parent then reduces **in chunk order** (``exec_apply`` + stats merge +
recorder absorb), never completion order — with disjoint per-chunk target
rows and serial per-target evaluation order inside each chunk, that makes
the result bit-identical to a serial run for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import numpy as np

from ..core.traverser import Recorder, TraversalStats, Traverser, get_traverser
from ..obs import Log2Histogram, get_telemetry
from ..trees import Tree
from .backend import ExecutionBackend, register_backend
from .shm import ShmArena, attach_arena

__all__ = ["ProcessBackend"]

_TREE_FIELDS = (
    "parent", "first_child", "n_children", "pstart", "pend",
    "box_lo", "box_hi", "level", "key",
)

#: worker-side LRU cache of attached arenas/trees, keyed by shm segment
#: name: most-recently-used at the end, evictions from the front
_WORKER_TREES: OrderedDict[str, tuple[Any, Tree, dict[str, np.ndarray]]] = OrderedDict()
_WORKER_CACHE_LIMIT = 2


def _attach_tree(handle, meta) -> tuple[Tree, dict[str, np.ndarray], bool]:
    """Attach (or reuse) the arena named in ``handle`` and rebuild the tree.

    Rebuilding is zero-copy: every Tree/ParticleSet array is a read-only
    view straight into the shared segment (``ascontiguousarray`` on a
    contiguous matching-dtype view is the identity).

    The third element of the return reports whether the per-segment worker
    tree cache served this attach (True = hit); the parent aggregates it
    into the ``exec.cache.*`` metrics.
    """
    name = handle[0]
    cached = _WORKER_TREES.get(name)
    if cached is not None:
        _WORKER_TREES.move_to_end(name)
        return cached[1], cached[2], True
    while len(_WORKER_TREES) >= _WORKER_CACHE_LIMIT:
        _, (old_arena, _, _) = _WORKER_TREES.popitem(last=False)  # true LRU
        old_arena.close()
    arena = attach_arena(handle)
    from ..particles import ParticleSet

    part_fields = {
        k[len("part."):]: v for k, v in arena.arrays.items() if k.startswith("part.")
    }
    particles = ParticleSet.from_arrays(part_fields)
    tree = Tree(
        particles,
        *[arena.arrays[f"tree.{f}"] for f in _TREE_FIELDS],
        tree_type=meta["tree_type"],
        bucket_size=meta["bucket_size"],
    )
    vis_arrays = {
        k[len("vis."):]: v for k, v in arena.arrays.items() if k.startswith("vis.")
    }
    _WORKER_TREES[name] = (arena, tree, vis_arrays)
    return tree, vis_arrays, False


def _worker_run(
    handle,
    meta,
    engine_name: str,
    visitor_cls: type,
    config: dict[str, Any],
    chunk: np.ndarray,
    fork: Recorder | None,
    record_latency: bool = False,
    exec_faults=None,
    chunk_index: int = 0,
    attempt: int = 0,
):
    """Module-level worker entry point (must be picklable by reference).

    Ships the worker-clock ``t0``/``t1`` back (not just the duration): the
    parent needs real endpoints to place the span on the trace timeline,
    and it estimates the worker→parent clock offset from its own
    submit/collect window rather than re-anchoring at collection time.
    """
    t0 = time.perf_counter()
    tree, vis_arrays, cache_hit = _attach_tree(handle, meta)
    if exec_faults is not None:
        # injected after attach so a kill leaves a real mid-chunk corpse:
        # arena mapped, pool worker gone, parent left holding the future
        exec_faults.apply_in_worker(chunk_index, attempt, in_process=True)
    visitor = visitor_cls.exec_rebuild(tree, vis_arrays, config)
    stats = get_traverser(engine_name)._traverse(tree, visitor, chunk, fork)
    outputs = visitor.exec_collect(tree, chunk)
    t1 = time.perf_counter()
    lat = None
    if record_latency:
        lat = Log2Histogram()
        lat.observe(t1 - t0)
    return stats, outputs, fork, t0, t1, os.getpid(), cache_hit, lat


class ProcessBackend(ExecutionBackend):
    """Run chunks on a persistent fork-context :class:`ProcessPoolExecutor`."""

    name = "processes"
    supervisor_cancels = False

    def __init__(self, workers: int | None = None, start_method: str | None = None,
                 supervise=None, exec_faults=None) -> None:
        super().__init__(workers, supervise=supervise, exec_faults=exec_faults)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        #: bumped on every pool rebuild; tagged into arena segment names so
        #: the orphan sweeper can tell live generations from dead ones
        self._generation = 0
        #: a deadline fired: a worker may be wedged mid-chunk, so shutdown
        #: must SIGKILL instead of joining
        self._hang_suspected = False

    def _supports(self, visitor: Any) -> bool:
        # Processes need the full exec protocol: shared arrays out, config
        # over the wire, per-chunk outputs back.
        return getattr(visitor, "exec_config", lambda: None)() is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._pool

    def _pack_arena(self, tree: Tree, visitor: Any) -> tuple[ShmArena, dict]:
        shared: dict[str, np.ndarray] = {}
        for f in _TREE_FIELDS:
            shared[f"tree.{f}"] = getattr(tree, f)
        for f in tree.particles.field_names:
            shared[f"part.{f}"] = tree.particles[f]
        for k, v in visitor.exec_arrays().items():
            shared[f"vis.{k}"] = v
        meta = {"tree_type": tree.tree_type, "bucket_size": tree.bucket_size}
        arena = ShmArena(
            shared, name_prefix=f"repro-{os.getpid()}-g{self._generation}"
        )
        return arena, meta

    def _run_chunks(
        self,
        engine: Traverser,
        tree: Tree,
        visitor: Any,
        chunks: list[np.ndarray],
        forks: list[Recorder] | None,
        shared_cache=None,
    ) -> TraversalStats:
        supervisor = self._make_supervisor()
        if supervisor is not None:
            return self._run_supervised(
                supervisor, engine, tree, visitor, chunks, forks
            )
        pool = self._ensure_pool()
        arena, meta = self._pack_arena(tree, visitor)
        config = visitor.exec_config()
        record_latency = get_telemetry().enabled
        submit = time.perf_counter()
        try:
            futures = [
                pool.submit(
                    _worker_run, arena.handle, meta, engine.name,
                    type(visitor), config, c, forks[i] if forks else None,
                    record_latency, self.exec_faults, i, 0,
                )
                for i, c in enumerate(chunks)
            ]
            results = [f.result() for f in futures]  # chunk order, not completion
        finally:
            collect = time.perf_counter()
            arena.dispose()

        total = TraversalStats()
        tasks = []
        lanes: dict[int, int] = {}
        hits = misses = 0
        for i, (stats, outputs, fork, t0, t1, pid, cache_hit, lat) in enumerate(results):
            total.merge(stats)
            visitor.exec_apply(tree, chunks[i], outputs)
            if forks is not None and fork is not None:
                # the fork round-tripped through pickle; swap the filled
                # copy in so backend.run absorbs it in chunk order
                forks[i] = fork
            lane = lanes.setdefault(pid, len(lanes))
            if cache_hit:
                hits += 1
            else:
                misses += 1
            # Workers time on their own clock.  Under the fork start method
            # CLOCK_MONOTONIC is shared, so the worker interval normally
            # falls inside the parent's [submit, collect] window and the
            # offset is zero; on other start methods (or clock domains) the
            # interval is centred into the window and the applied offset is
            # reported with the span.
            offset = 0.0
            if not (submit <= t0 and t1 <= collect):
                offset = (submit + collect) / 2.0 - (t0 + t1) / 2.0
            tasks.append({
                "chunk": i, "targets": len(chunks[i]),
                "start": t0 + offset, "end": t1 + offset, "lane": lane,
                "worker": f"pid-{pid}", "clock_offset": offset,
                "latency": lat,
            })
        self._record_cache(hits, misses)
        self._record_tasks(tasks)
        return total

    def _run_supervised(
        self,
        supervisor,
        engine: Traverser,
        tree: Tree,
        visitor: Any,
        chunks: list[np.ndarray],
        forks: list[Recorder] | None,
    ) -> TraversalStats:
        """Supervised dispatch: wait-with-timeout collection, bounded chunk
        retry, and automatic pool rebuild after worker death.

        Retry safety comes from the exec protocol itself: every attempt
        ships a fresh recorder fork and rebuilds its own worker-local
        visitor over the read-only arena, so a killed/expired attempt
        leaves no partial state in the parent; the winning attempt's
        outputs are applied exactly once, in chunk order.
        """
        arena, meta = self._pack_arena(tree, visitor)
        arrays = visitor.exec_arrays()
        config = visitor.exec_config()
        record_latency = get_telemetry().enabled
        exec_faults = self.exec_faults

        def submit(i: int, attempt: int):
            fork = forks[i].fork() if forks is not None else None
            return self._ensure_pool().submit(
                _worker_run, arena.handle, meta, engine.name,
                type(visitor), config, chunks[i], fork,
                record_latency, exec_faults, i, attempt,
            )

        def serial_exec(i: int):
            # quarantine: in-parent from the parent's own arrays — no pool,
            # no shm attach, no injection, cannot fail the way workers do
            t0 = time.perf_counter()
            vis = type(visitor).exec_rebuild(tree, arrays, config)
            fork = forks[i].fork() if forks is not None else None
            stats = get_traverser(engine.name)._traverse(tree, vis, chunks[i], fork)
            outputs = vis.exec_collect(tree, chunks[i])
            t1 = time.perf_counter()
            lat = None
            if record_latency:
                lat = Log2Histogram()
                lat.observe(t1 - t0)
            return stats, outputs, fork, t0, t1, os.getpid(), None, lat

        submit_mark = time.perf_counter()
        try:
            results, sup_stats = supervisor.run(
                len(chunks), submit, serial_exec, rebuild=self._rebuild_pool
            )
        finally:
            collect = time.perf_counter()
            arena.dispose()
        if sup_stats.deadline_misses:
            self._hang_suspected = True

        total = TraversalStats()
        tasks = []
        lanes: dict[int, int] = {}
        hits = misses = 0
        for i, (stats, outputs, fork, t0, t1, pid, cache_hit, lat) in enumerate(results):
            total.merge(stats)
            visitor.exec_apply(tree, chunks[i], outputs)
            if forks is not None and fork is not None:
                forks[i] = fork  # the winning attempt's fork, absorbed by run()
            lane = lanes.setdefault(pid, len(lanes))
            if cache_hit is not None:  # None = quarantined in-parent, no attach
                if cache_hit:
                    hits += 1
                else:
                    misses += 1
            offset = 0.0
            if not (submit_mark <= t0 and t1 <= collect):
                offset = (submit_mark + collect) / 2.0 - (t0 + t1) / 2.0
            tasks.append({
                "chunk": i, "targets": len(chunks[i]),
                "start": t0 + offset, "end": t1 + offset, "lane": lane,
                "worker": f"pid-{pid}", "clock_offset": offset,
                "latency": lat,
            })
        self._record_cache(hits, misses)
        self._finish_supervised(sup_stats)
        self._record_tasks(tasks)
        return total

    def _rebuild_pool(self) -> None:
        """Replace a broken pool: SIGKILL any lingering workers (a hung one
        would otherwise block executor shutdown), drop the executor without
        waiting, and bump the arena generation so segments created after
        the rebuild are distinguishable from the dead generation's."""
        pool, self._pool = self._pool, None
        self._generation += 1
        if pool is None:
            return
        for pid, proc in list((getattr(pool, "_processes", None) or {}).items()):
            if proc.is_alive():
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _record_cache(self, hits: int, misses: int) -> None:
        """Aggregate the workers' per-segment tree cache attach outcomes
        into ``exec.cache.*`` metrics and ``last_cache_stats``."""
        total = hits + misses
        self.last_cache_stats = {
            "attach_hits": hits,
            "attach_misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.metrics.counter("exec.cache.attach_hits", backend=self.name).inc(hits)
        tel.metrics.counter("exec.cache.attach_misses", backend=self.name).inc(misses)
        tel.metrics.gauge("exec.cache.hit_rate", backend=self.name).set(
            self.last_cache_stats["hit_rate"]
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            if self._hang_suspected:
                # a worker may be wedged mid-chunk; joining would block on
                # it, so tear the pool down the same way a rebuild does
                self._rebuild_pool()
            else:
                self._pool.shutdown(wait=True)
                self._pool = None
            self._hang_suspected = False


register_backend(ProcessBackend.name, ProcessBackend)
