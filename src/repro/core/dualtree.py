"""Dual-tree traversal (paper §II-A-2; Gray & Moore 2000).

Instead of fixing the target to a leaf bucket, both sides of the interaction
are tree nodes.  ``open(source, target)`` decides whether the pair can be
approximated (→ ``node()``); when it cannot, ``cell(source, target)``
chooses between opening *both* sides (B² child-pair interactions) or keeping
the target and opening only the source (B interactions).  Pairs of leaves
fall through to ``leaf()``.

Used for n-point correlation style computations; the gravity equivalence
tests run it against the single-tree engines.
"""

from __future__ import annotations

import numpy as np

from ..trees import Tree
from .traverser import Recorder, TraversalStats, Traverser, register_traverser
from .visitor import Visitor

__all__ = ["DualTreeTraverser"]


class DualTreeTraverser(Traverser):
    name = "dual-tree"

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        """``targets`` selects *target subtree roots* (default: the root, i.e.
        the full self-interaction of the tree with itself)."""
        if targets is None:
            target_roots = [tree.root]
        else:
            target_roots = [int(t) for t in np.asarray(targets).ravel()]
        stats = TraversalStats(targets=len(target_roots))
        first_child = tree.first_child
        n_children = tree.n_children
        counts = tree.pend - tree.pstart

        stack: list[tuple[int, int]] = [(tree.root, t) for t in target_roots]
        while stack:
            s, t = stack.pop()
            s_node = tree.node(s)
            t_node = tree.node(t)
            stats.opens += 1
            stats.nodes_visited += 1
            if recorder is not None:
                recorder.on_open(tree, np.array([s]), np.array([t]))
            if not visitor.open(s_node, t_node):
                stats.node_interactions += 1
                stats.pn_interactions += int(counts[t])
                if recorder is not None:
                    recorder.on_node(tree, np.array([s]), np.array([t]))
                visitor.node(s_node, t_node)
                continue
            s_leaf = first_child[s] == -1
            t_leaf = first_child[t] == -1
            if s_leaf and t_leaf:
                stats.leaf_interactions += 1
                stats.pp_interactions += int(counts[s]) * int(counts[t])
                if recorder is not None:
                    recorder.on_leaf(tree, np.array([s]), np.array([t]))
                visitor.leaf(s_node, t_node)
            elif s_leaf:
                fc = int(first_child[t])
                for tc in range(fc, fc + int(n_children[t])):
                    stack.append((s, tc))
            elif t_leaf:
                fc = int(first_child[s])
                for sc in range(fc, fc + int(n_children[s])):
                    stack.append((sc, t))
            elif visitor.cell(s_node, t_node):
                sfc = int(first_child[s])
                tfc = int(first_child[t])
                for sc in range(sfc, sfc + int(n_children[s])):
                    for tc in range(tfc, tfc + int(n_children[t])):
                        stack.append((sc, tc))
            else:
                sfc = int(first_child[s])
                for sc in range(sfc, sfc + int(n_children[s])):
                    stack.append((sc, t))
        return stats


register_traverser(DualTreeTraverser.name, DualTreeTraverser)
