"""Fast Multipole Method: derivative tensors, accuracy, mechanics."""

import numpy as np
import pytest

from repro.apps.gravity import (
    acceleration_error,
    compute_fmm_gravity,
    compute_gravity,
    derivative_tensors,
    direct_accelerations,
)
from repro.apps.gravity.fmm import FMMVisitor, _compute_multipoles
from repro.particles import clustered_clumps, plummer_sphere
from repro.trees import build_tree


class TestDerivativeTensors:
    def setup_method(self):
        self.R = np.array([1.3, -0.7, 2.1])
        self.g = lambda x: 1.0 / np.linalg.norm(x)

    def test_first_derivative(self):
        _, g1, _, _ = derivative_tensors(self.R)
        eps = 1e-6
        for i in range(3):
            e = eps * np.eye(3)[i]
            fd = (self.g(self.R + e) - self.g(self.R - e)) / (2 * eps)
            assert g1[i] == pytest.approx(fd, abs=1e-8)

    def test_second_derivative(self):
        _, _, g2, _ = derivative_tensors(self.R)
        eps = 1e-4
        for i in range(3):
            for j in range(3):
                ei, ej = eps * np.eye(3)[i], eps * np.eye(3)[j]
                fd = (
                    self.g(self.R + ei + ej) - self.g(self.R + ei - ej)
                    - self.g(self.R - ei + ej) + self.g(self.R - ei - ej)
                ) / (4 * eps * eps)
                assert g2[i, j] == pytest.approx(fd, abs=1e-5)

    def test_third_derivative(self):
        _, _, _, g3 = derivative_tensors(self.R)
        eps = 1e-3

        def g2_num(x):
            _, _, g2, _ = derivative_tensors(x)
            return g2

        for k in range(3):
            e = eps * np.eye(3)[k]
            fd = (g2_num(self.R + e) - g2_num(self.R - e)) / (2 * eps)
            assert np.allclose(g3[:, :, k], fd, atol=1e-4)

    def test_symmetry(self):
        _, _, g2, g3 = derivative_tensors(self.R)
        assert np.allclose(g2, g2.T)
        for perm in [(0, 2, 1), (1, 0, 2), (2, 1, 0)]:
            assert np.allclose(g3, np.transpose(g3, perm))

    def test_laplacian_is_zero(self):
        """1/r is harmonic away from the origin: tr(H) = 0."""
        _, _, g2, g3 = derivative_tensors(self.R)
        assert abs(np.trace(g2)) < 1e-12
        assert np.allclose(np.einsum("iik->k", g3), 0.0, atol=1e-12)

    def test_singular_origin(self):
        with pytest.raises(ValueError):
            derivative_tensors(np.zeros(3))


class TestFMMAccuracy:
    @pytest.fixture(scope="class")
    def particles(self):
        return plummer_sphere(2500, seed=3)

    @pytest.fixture(scope="class")
    def exact(self, particles):
        return direct_accelerations(particles, softening=1e-3)

    def test_matches_direct_sum(self, particles, exact):
        res = compute_fmm_gravity(particles, theta=0.4, softening=1e-3)
        err = acceleration_error(res.accel, exact)
        assert err["mean"] < 2e-3
        assert err["p99"] < 2e-2

    def test_accuracy_improves_with_smaller_theta(self, particles, exact):
        loose = compute_fmm_gravity(particles, theta=0.7, softening=1e-3)
        tight = compute_fmm_gravity(particles, theta=0.35, softening=1e-3)
        e_loose = acceleration_error(loose.accel, exact)["mean"]
        e_tight = acceleration_error(tight.accel, exact)["mean"]
        assert e_tight < e_loose

    def test_comparable_to_barnes_hut(self, particles, exact):
        """Same physics, different expansion bookkeeping: both land in the
        sub-percent regime."""
        fmm = compute_fmm_gravity(particles, theta=0.4, softening=1e-3)
        bh = compute_gravity(particles, theta=0.6, softening=1e-3)
        assert acceleration_error(fmm.accel, exact)["mean"] < 5e-3
        assert acceleration_error(bh.accel, exact)["mean"] < 5e-3

    def test_momentum_conservation(self, particles):
        """M2L + L2L + P2P keep Newton's third law to truncation order."""
        res = compute_fmm_gravity(particles, theta=0.4, softening=1e-3)
        m = particles.mass
        net = (m[:, None] * res.accel).sum(axis=0)
        scale = np.abs(m[:, None] * res.accel).sum(axis=0)
        assert np.all(np.abs(net) < 5e-3 * scale)


class TestFMMMechanics:
    def test_m2l_and_p2p_both_happen(self):
        p = clustered_clumps(1200, seed=4)
        res = compute_fmm_gravity(p, theta=0.5)
        assert res.m2l_count > 0
        assert res.p2p_pairs > 0
        # P2P must be a small fraction of all-pairs (the method's point)
        assert res.p2p_pairs < 0.9 * len(p) ** 2

    def test_theta_validation(self):
        p = plummer_sphere(100, seed=5)
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        mp = _compute_multipoles(tree)
        with pytest.raises(ValueError):
            FMMVisitor(tree, mp, theta=1.5)

    def test_multipoles_match_centroid_path(self):
        p = plummer_sphere(500, seed=6)
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        mp = _compute_multipoles(tree)
        from repro.apps.gravity import compute_centroid_arrays

        arrays = compute_centroid_arrays(tree, with_quadrupole=True)
        assert np.allclose(mp.mass, arrays.mass)
        assert np.allclose(mp.center, arrays.centroid, atol=1e-12)
        # raw central second moment vs traceless quadrupole: Q = 3C - tr(C) I
        cov = mp.quad
        traceless = 3 * cov - np.trace(cov, axis1=1, axis2=2)[:, None, None] * np.eye(3)
        assert np.allclose(traceless, arrays.quad, atol=1e-6)

    def test_accepts_prebuilt_tree(self):
        p = plummer_sphere(300, seed=7)
        tree = build_tree(p, tree_type="kd", bucket_size=16)
        res = compute_fmm_gravity(tree, theta=0.5)
        assert res.tree is tree
