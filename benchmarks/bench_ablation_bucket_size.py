"""Ablation — leaf bucket size.

The bucket size trades exact particle-particle work (grows with bigger
buckets) against node-approximation and opening work (grows with smaller
buckets).  DESIGN.md lists it as a tunable; this bench maps the tradeoff
and checks the expected monotonicities.
"""


from repro.apps.gravity import compute_gravity
from repro.bench import format_table, print_banner
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark

BUCKETS = (4, 8, 16, 32, 64)

_CACHE = {}


@perf_benchmark("gravity.bucket16", group="gravity",
                description="Barnes-Hut gravity solve (clustered, octree, bucket=16)")
def perf_gravity_bucket16(quick=False):
    particles = clustered_clumps(4_000 if quick else 15_000, seed=13)

    def run():
        res = compute_gravity(particles, theta=0.7, bucket_size=16)
        return {"pp_interactions": res.stats.pp_interactions}

    return run


def _sweep():
    if "rows" in _CACHE:
        return _CACHE["rows"]
    particles = clustered_clumps(15_000, seed=13)
    rows = []
    for bucket in BUCKETS:
        res = compute_gravity(particles, theta=0.7, bucket_size=bucket)
        s = res.stats
        rows.append((
            bucket,
            res.tree.n_nodes,
            res.tree.n_leaves,
            s.opens,
            s.pn_interactions,
            s.pp_interactions,
            s.pn_interactions + s.pp_interactions,
        ))
    _CACHE["rows"] = rows
    return rows


def test_bucket_size_tradeoff(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_banner("Ablation: bucket size (Barnes-Hut, clustered 15k, theta=0.7)")
    print(format_table(
        ["bucket", "nodes", "leaves", "opens", "pn pairs", "pp pairs", "total pairs"],
        rows,
    ))
    from repro.runtime import CostModel

    cm = CostModel()
    costs = [r[3] * cm.c_open + r[4] * cm.c_pn + r[5] * cm.c_pp for r in rows]
    print("\ncost-model-weighted work (s):",
          [f"{BUCKETS[i]}: {costs[i]:.3f}" for i in range(len(rows))])

    opens = [r[3] for r in rows]
    pp = [r[5] for r in rows]
    nodes = [r[1] for r in rows]
    # Bigger buckets -> smaller trees and fewer opening tests...
    assert all(a > b for a, b in zip(nodes[:-1], nodes[1:]))
    assert all(a > b for a, b in zip(opens[:-1], opens[1:]))
    # ...but more exact pairwise work.
    assert all(a < b for a, b in zip(pp[:-1], pp[1:]))
    # With per-operation costs folded in, giant buckets are clearly bad
    # (pp work dominates) and the optimum sits at small-to-moderate sizes —
    # the reason bucket size is a tunable, not a constant.
    assert costs[-1] > 1.5 * min(costs)
    assert min(costs) in costs[:3]
