"""Sphere primitives and the benchmark-harness utilities."""

import numpy as np
import pytest

from repro.bench import format_series, format_table
from repro.bench.workloads import build_gravity_workload, build_sph_workloads
from repro.geometry import Sphere, spheres_intersect_box


class TestSphere:
    def test_contains(self):
        s = Sphere([0, 0, 0], 1.0)
        assert s.contains([0.5, 0.5, 0.5])
        assert s.contains([1.0, 0, 0])  # boundary closed
        assert not s.contains([1.01, 0, 0])

    def test_contains_points_vectorised(self):
        s = Sphere([1, 0, 0], 0.5)
        pts = np.array([[1.0, 0, 0], [1.4, 0, 0], [2.0, 0, 0]])
        assert s.contains_points(pts).tolist() == [True, True, False]

    def test_intersects_box(self):
        s = Sphere([2.0, 0.5, 0.5], 1.0)
        assert s.intersects_box([0, 0, 0], [1, 1, 1])
        assert not Sphere([3.0, 0.5, 0.5], 1.0).intersects_box([0, 0, 0], [1, 1, 1])

    def test_intersects_sphere(self):
        a = Sphere([0, 0, 0], 1.0)
        assert a.intersects_sphere(Sphere([1.9, 0, 0], 1.0))
        assert not a.intersects_sphere(Sphere([2.1, 0, 0], 1.0))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere([0, 0, 0], -1.0)

    def test_spheres_intersect_box_batch(self):
        centers = np.array([[0.5, 0.5, 0.5], [3.0, 3.0, 3.0]])
        radii_sq = np.array([0.01, 0.01])
        out = spheres_intersect_box(centers, radii_sq, [0, 0, 0], [1, 1, 1])
        assert out.tolist() == [True, False]

    def test_radius_sq(self):
        assert Sphere([0, 0, 0], 3.0).radius_sq == 9.0


class TestTableFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [10, 0.0001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]
        assert "-+-" in lines[1]
        # all rows same width
        assert len(set(len(l) for l in lines)) == 1

    def test_format_table_title_and_ints(self):
        out = format_table(["n"], [[1234567]], title="T")
        assert out.startswith("T\n")
        assert "1,234,567" in out

    def test_format_series(self):
        out = format_series("x", [1, 2], {"y": [0.1, 0.2], "z": [3, 4]})
        assert "x" in out and "y" in out and "z" in out
        assert out.count("\n") == 3

    def test_empty_rows(self):
        out = format_table(["only", "headers"], [])
        assert "only" in out


class TestWorkloadBuilders:
    def test_gravity_workload_memoised(self):
        a = build_gravity_workload(distribution="uniform", n=1500, n_partitions=8,
                                   n_subtrees=8, seed=99)
        b = build_gravity_workload(distribution="uniform", n=1500, n_partitions=8,
                                   n_subtrees=8, seed=99)
        assert a is b  # lru_cache hit
        assert a.workload.total_work > 0
        assert len(a.workload.buckets) == a.tree.n_leaves

    def test_sph_workloads_consistent(self):
        knn_gw, gadget_gw, rounds = build_sph_workloads(n=1200, k=12, n_partitions=8)
        assert rounds >= 1
        # gadget workload's total work was rescaled to the measured rounds
        from repro.runtime import CostModel

        cm = CostModel()
        measured = (
            gadget_gw.stats.opens * cm.c_open
            + gadget_gw.stats.pn_interactions * cm.c_pn
            + gadget_gw.stats.pp_interactions * cm.c_pp
        )
        assert gadget_gw.workload.total_work == pytest.approx(measured, rel=1e-6)
        assert gadget_gw.workload.total_work > knn_gw.workload.total_work


class TestPaperReference:
    """Sanity checks on the recorded paper numbers used by benches."""

    def test_table2_ratio(self):
        from repro.bench import paper_reference as pr

        assert pr.TABLE2_RUNTIME_RATIO == pytest.approx(9.2 / 16)
        assert set(pr.TABLE2) == {1, 2, 4, 8, 16}
        for cpu, (pt, ch) in pr.TABLE2.items():
            assert len(pt) == len(ch) == 8
            assert pt[0] < ch[0]  # ParaTreeT faster at every CPU count

    def test_fig_constants(self):
        from repro.bench import paper_reference as pr

        assert pr.FIG3_XWRITE_DEGRADES_CORES < pr.FIG3_SEQUENTIAL_DEGRADES_CORES
        assert pr.FIG10_SPEEDUP_RANGE == (2.0, 3.0)
        assert pr.FIG11_SPEEDUP == 10.0
        assert pr.TABLE3_TOTAL_GRAVITY_LOC == 135
        assert pr.FIG12_DOMINANT_RESONANCE_A == pytest.approx(3.27)

    def test_table1_matches_machines(self):
        from repro.bench import paper_reference as pr
        from repro.runtime import MACHINES

        for name, cores, cpu, clock, comm in pr.TABLE1:
            m = MACHINES[name]
            assert (m.cores_per_node, m.cpu_type, m.clock_ghz, m.comm_layer) == (
                cores, cpu, clock, comm
            )
