"""Dual-tree pair counting into radial histogram bins.

The classic dual-tree optimisation (Gray & Moore 2000): when the minimum
and maximum possible separation of two nodes' particles fall inside the
same histogram bin, the whole ``|A| x |B|`` block of pairs is added at once
and the recursion stops — the histogram equivalent of a multipole
acceptance.  Pairs are counted *ordered* (both (i,j) and (j,i), i != j),
the convention of the DD term in correlation estimators.
"""

from __future__ import annotations

import numpy as np

from ...core import TraversalStats, get_traverser
from ...core.visitor import Visitor
from ...geometry.box import boxes_box_distance_sq
from ...trees import SpatialNode, Tree, build_tree
from ...particles import ParticleSet

__all__ = ["PairCountVisitor", "pair_counts", "brute_force_pair_counts"]


def _boxes_max_distance_sq(lo_a, hi_a, lo_b, hi_b) -> float:
    """Largest possible separation between points of two boxes."""
    d = np.maximum(hi_b - lo_a, hi_a - lo_b)
    return float(np.dot(d, d))


class PairCountVisitor(Visitor):
    """Counts ordered pairs per separation bin during a dual-tree walk."""

    def __init__(self, tree: Tree, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("edges must be a 1-D array of at least 2 bin edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if edges[0] < 0:
            raise ValueError("separations are non-negative; edges[0] must be >= 0")
        self.tree = tree
        self.edges = edges
        self.edges_sq = edges**2
        self.counts = np.zeros(len(edges) - 1, dtype=np.int64)
        #: node pairs pruned wholesale (the dual-tree win; statistics)
        self.wholesale_pairs = 0

    # -- range classification ---------------------------------------------
    def _range_sq(self, s: int, t: int) -> tuple[float, float]:
        tr = self.tree
        dmin = float(
            boxes_box_distance_sq(tr.box_lo[s], tr.box_hi[s], tr.box_lo[t], tr.box_hi[t])
        )
        dmax = _boxes_max_distance_sq(
            tr.box_lo[s], tr.box_hi[s], tr.box_lo[t], tr.box_hi[t]
        )
        return dmin, dmax

    def _single_bin(self, dmin_sq: float, dmax_sq: float) -> int | None:
        """Bin index if the whole range falls in one bin (or -1 for fully
        out of range); None when the pair must be refined."""
        e = self.edges_sq
        if dmax_sq < e[0] or dmin_sq >= e[-1]:
            return -1
        lo_bin = int(np.searchsorted(e, dmin_sq, side="right")) - 1
        hi_bin = int(np.searchsorted(e, dmax_sq, side="right")) - 1
        if lo_bin == hi_bin and 0 <= lo_bin < len(self.counts):
            return lo_bin
        return None

    # -- Visitor interface ----------------------------------------------------
    def open(self, source: SpatialNode, target: SpatialNode) -> bool:
        return self._single_bin(*self._range_sq(source.index, target.index)) is None

    def node(self, source: SpatialNode, target: SpatialNode) -> None:
        s, t = source.index, target.index
        bin_idx = self._single_bin(*self._range_sq(s, t))
        assert bin_idx is not None, "node() implies a classifiable pair"
        if bin_idx < 0:
            return  # fully outside the histogram range
        tr = self.tree
        n_pairs = int(tr.pend[s] - tr.pstart[s]) * int(tr.pend[t] - tr.pstart[t])
        if s == t:
            n_pairs -= int(tr.pend[s] - tr.pstart[s])  # drop self-pairs
        self.counts[bin_idx] += n_pairs
        self.wholesale_pairs += n_pairs

    def leaf(self, source: SpatialNode, target: SpatialNode) -> None:
        tr = self.tree
        s, t = source.index, target.index
        a = tr.particles.position[tr.pstart[s]:tr.pend[s]]
        b = tr.particles.position[tr.pstart[t]:tr.pend[t]]
        d = a[:, None, :] - b[None, :, :]
        d2 = np.einsum("abj,abj->ab", d, d)
        if s == t:
            np.fill_diagonal(d2, -1.0)  # exclude self-pairs from binning
        bins = np.searchsorted(self.edges_sq, d2.ravel(), side="right") - 1
        valid = (bins >= 0) & (bins < len(self.counts)) & (d2.ravel() >= 0)
        np.add.at(self.counts, bins[valid], 1)

    def cell(self, source: SpatialNode, target: SpatialNode) -> bool:
        # Refining an identical pair must open both sides (opening only the
        # source would create ancestor-descendant pairs and double counting).
        if source.index == target.index:
            return True
        # Otherwise open the bigger side; when the source is bigger, the
        # engine's cell()==False branch opens only the source.
        return target.box.volume >= source.box.volume


def pair_counts(
    particles_or_tree: ParticleSet | Tree,
    edges: np.ndarray,
    bucket_size: int = 16,
) -> tuple[np.ndarray, PairCountVisitor, TraversalStats]:
    """Ordered pair-separation histogram via dual-tree counting."""
    if isinstance(particles_or_tree, Tree):
        tree = particles_or_tree
    else:
        tree = build_tree(particles_or_tree, tree_type="kd", bucket_size=bucket_size)
    visitor = PairCountVisitor(tree, edges)
    stats = get_traverser("dual-tree").traverse(tree, visitor)
    return visitor.counts, visitor, stats


def brute_force_pair_counts(positions: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Reference O(N²) ordered pair histogram."""
    positions = np.asarray(positions)
    edges = np.asarray(edges, dtype=np.float64)
    d = positions[:, None, :] - positions[None, :, :]
    d2 = np.einsum("ijc,ijc->ij", d, d)
    np.fill_diagonal(d2, -1.0)
    r = np.sqrt(np.where(d2 >= 0, d2, np.nan)).ravel()
    counts, _ = np.histogram(r[~np.isnan(r)], bins=edges)
    return counts.astype(np.int64)
