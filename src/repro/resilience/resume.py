"""Rebuilding a Driver from a checkpoint (``repro resume``).

A checkpoint records which application wrote it (``app``) plus the keyword
arguments of that application's Driver (``app_config``); this module maps
the name back to a constructor.  Particles, PRNG streams, and application
state come from the checkpoint itself via
:func:`~repro.resilience.checkpoint.restore_run`, so the rebuilt driver
never calls ``create_particles``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.config import Configuration
from .checkpoint import Checkpoint, CheckpointError

__all__ = ["APP_BUILDERS", "register_app", "driver_from_checkpoint"]


def _gravity(config: Configuration, kwargs: dict[str, Any]):
    from ..apps.gravity import GravityDriver

    return GravityDriver(config, **kwargs)


def _sph(config: Configuration, kwargs: dict[str, Any]):
    from ..apps.sph import SPHDriver

    return SPHDriver(config, **kwargs)


def _disk(config: Configuration, kwargs: dict[str, Any]):
    from ..apps.collision import PlanetesimalDriver

    return PlanetesimalDriver(config, **kwargs)


def _knn(config: Configuration, kwargs: dict[str, Any]):
    from ..apps.knn import KNNDriver

    return KNNDriver(config, **kwargs)


def _correlation(config: Configuration, kwargs: dict[str, Any]):
    from ..apps.correlation import CorrelationDriver

    return CorrelationDriver(config, **kwargs)


APP_BUILDERS: dict[str, Callable[[Configuration, dict[str, Any]], Any]] = {
    "gravity": _gravity,
    "sph": _sph,
    "disk": _disk,
    "knn": _knn,
    "correlation": _correlation,
}


def register_app(name: str, builder: Callable[[Configuration, dict[str, Any]], Any]) -> None:
    """Register a custom application so its checkpoints can be resumed."""
    APP_BUILDERS[name] = builder


def driver_from_checkpoint(ckpt: Checkpoint):
    """Construct the (not-yet-restored) Driver a checkpoint belongs to.

    The caller passes the returned driver and the checkpoint to
    ``driver.run(resume_from=ckpt)`` (or :func:`restore_run` directly).
    """
    if ckpt.app is None:
        raise CheckpointError(
            "checkpoint does not record its application; "
            "pass the driver explicitly instead of using `repro resume`"
        )
    builder = APP_BUILDERS.get(ckpt.app)
    if builder is None:
        raise CheckpointError(
            f"unknown application {ckpt.app!r}; known: {sorted(APP_BUILDERS)}"
        )
    config = Configuration.from_dict(ckpt.config) if ckpt.config else Configuration()
    return builder(config, dict(ckpt.app_config))
