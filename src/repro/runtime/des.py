"""A minimal deterministic discrete-event simulation core.

Three primitives cover everything the runtime model needs:

* :class:`Simulator` — the event loop (a heap of timestamped callbacks with
  FIFO tie-breaking, so runs are fully deterministic);
* :class:`FifoResource` — a server with fixed concurrency; models mutexes
  (capacity 1) and bandwidth-style pipes;
* :class:`WorkerPool` — the worker threads of one process: a shared ready
  queue drained by ``n_workers`` servers, plus Charm++-style targeted
  dispatch to the least-busy worker.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable

__all__ = ["Simulator", "Timer", "FifoResource", "WorkerPool"]


def _check_service_time(service_time: float) -> None:
    """Negative or non-finite service times corrupt the clock or the
    backlog accounting silently; reject them at the submission boundary."""
    if not math.isfinite(service_time):
        raise ValueError(f"non-finite service time {service_time}")
    if service_time < 0:
        raise ValueError(f"negative service time {service_time}")


class Timer:
    """Handle for one scheduled event; ``cancel()`` prevents it firing.

    Cancellation is lazy (the heap entry stays put) but *clock-invisible*:
    the event loop discards cancelled entries without advancing ``now`` or
    counting an event, so a run whose timers all get cancelled is
    bit-identical to a run that never scheduled them.  This is what lets
    the fault layer arm a timeout per request without perturbing fault-free
    results.

    ``silent`` timers additionally keep *firing* out of the public event
    count (they still advance the clock — causality requires it — and land
    in ``Simulator.silent_events``).  Timeout probes that fire only to
    discover "the response is still queued, wait longer" use this so a
    fault-free run with an armed injector reports the same
    ``events_processed`` as one without.
    """

    __slots__ = ("cancelled", "silent")

    def __init__(self, silent: bool = False) -> None:
        self.cancelled = False
        self.silent = silent

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class Simulator:
    """Deterministic event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None], Timer]] = []
        self._seq = 0
        self.events_processed = 0
        self.silent_events = 0

    def schedule(self, delay: float, fn: Callable[[], None],
                 silent: bool = False) -> Timer:
        """Run ``fn`` at ``now + delay``; returns a cancellable handle."""
        if not math.isfinite(delay):
            raise ValueError(f"non-finite delay {delay}")
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        timer = Timer(silent=silent)
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, timer))
        return timer

    def at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` at absolute ``time`` (must not be in the past)."""
        return self.schedule(time - self.now, fn)

    def run(self, until: float | None = None) -> float:
        """Drain events (optionally stopping at ``until``); returns the
        final clock."""
        while self._heap:
            t, _, fn, timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            if timer.silent:
                self.silent_events += 1
            else:
                self.events_processed += 1
            fn()
        return self.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)


class FifoResource:
    """A server with ``capacity`` parallel slots and a FIFO backlog.

    ``submit(service_time, on_done, on_start)`` queues a job; when a slot
    frees up the job occupies it for ``service_time`` and then ``on_done``
    fires.  Capacity 1 is a mutex with queueing — the model for the
    exclusive-write cache.  Tracks total busy time and peak queue length.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._busy = 0
        self._queue: deque[tuple] = deque()
        self.busy_time = 0.0
        self.jobs_served = 0
        self.max_queue = 0
        #: critical-path recording (a ``repro.perf.critical_path.CPRecorder``
        #: or None).  When set, every job records a queue-wait node (if it
        #: waited) plus a service node, and ``cp_last`` holds the service
        #: node id during the job's ``on_start``/``on_done`` callbacks so
        #: downstream submissions can chain causally.
        self.cp = None
        self.cp_last: int | None = None
        self.cp_label = "service"
        self.cp_kind = "compute"
        self.cp_resource = "fifo"

    def submit(
        self,
        service_time: float,
        on_done: Callable[[], None] | None = None,
        on_start: Callable[[], None] | None = None,
        cp: int | None = None,
    ) -> None:
        _check_service_time(service_time)
        self._queue.append((service_time, on_done, on_start, cp, self.sim.now))
        self.max_queue = max(self.max_queue, len(self._queue))
        self._try_start()

    @property
    def backlog_jobs(self) -> int:
        """Jobs in service plus jobs queued (a congestion snapshot used by
        adaptive request timeouts)."""
        return self._busy + len(self._queue)

    def _try_start(self, freed: int | None = None) -> None:
        while self._busy < self.capacity and self._queue:
            service_time, on_done, on_start, cp_pred, t_enq = self._queue.popleft()
            self._busy += 1
            node = None
            if self.cp is not None:
                now = self.sim.now
                preds = (cp_pred,)
                if now > t_enq:
                    # A job that waited was held up by the occupant that just
                    # freed the slot; that edge lets the critical path follow
                    # the contended server instead of charging the wait.
                    wait = self.cp.add(self.cp_label + " wait", "queue",
                                       t_enq, now, self.cp_resource,
                                       (cp_pred, freed))
                    preds = (wait,)
                node = self.cp.add(self.cp_label, self.cp_kind,
                                   now, now + service_time, self.cp_resource, preds)
                self.cp_last = node
            if on_start:
                on_start()
            self.busy_time += service_time
            self.jobs_served += 1

            def finish(done=on_done, node=node):
                self._busy -= 1
                if self.cp is not None:
                    self.cp_last = node
                if done:
                    done()
                self._try_start(freed=node)

            self.sim.schedule(service_time, finish)


class WorkerPool:
    """The worker threads of one simulated process.

    Tasks pushed with :meth:`submit` go to a shared ready queue (Charm++
    scheduler style): any idle worker picks up the next task.  Tasks pushed
    with :meth:`submit_to_least_busy` are bound to the worker with the least
    backlog at submission time — the paper's policy for remote-request fill
    messages.  Each task carries an activity label for the utilisation
    trace.
    """

    def __init__(self, sim: Simulator, n_workers: int, trace=None, process_id: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.sim = sim
        self.n_workers = n_workers
        self.trace = trace
        self.process_id = process_id
        # Task: (service_time, label, on_done, on_start, cp_pred, enqueue_time)
        self._shared: deque[tuple] = deque()
        self._bound: list[deque[tuple]] = [deque() for _ in range(n_workers)]
        self._idle: list[bool] = [True] * n_workers
        #: committed-but-unfinished service time per worker, used for the
        #: least-busy heuristic.
        self._backlog: list[float] = [0.0] * n_workers
        self.busy_time = 0.0
        self.tasks_run = 0
        #: critical-path recording (a ``repro.perf.critical_path.CPRecorder``
        #: or None).  ``cp_last`` holds the id of the node whose task is
        #: currently inside ``on_start``/``on_done``.
        self.cp = None
        self.cp_last: int | None = None

    # -- submission ---------------------------------------------------------
    def submit(self, service_time: float, label: str = "work", on_done=None,
               on_start=None, cp: int | None = None) -> None:
        _check_service_time(service_time)
        self._shared.append((service_time, label, on_done, on_start, cp, self.sim.now))
        self._wake_one()

    def submit_to_least_busy(self, service_time: float, label: str = "fill",
                             on_done=None, cp: int | None = None) -> None:
        _check_service_time(service_time)
        w = min(range(self.n_workers), key=lambda i: (self._backlog[i], i))
        self._backlog[w] += service_time
        self._bound[w].append((service_time, label, on_done, None, cp, self.sim.now))
        if self._idle[w]:
            self._run_next(w)

    def preempt_all(self, service_time: float, label: str = "restart") -> None:
        """Stall every worker for ``service_time`` at its next scheduling
        point (crash-with-restart model: tasks already executing finish,
        then the restart window runs ahead of any queued work)."""
        _check_service_time(service_time)
        for w in range(self.n_workers):
            self._backlog[w] += service_time
            self._bound[w].appendleft((service_time, label, None, None, None, self.sim.now))
            if self._idle[w]:
                self._run_next(w)

    # -- scheduling ----------------------------------------------------------
    def _wake_one(self) -> None:
        for w in range(self.n_workers):
            if self._idle[w]:
                self._run_next(w)
                return

    def _run_next(self, w: int, freed: int | None = None) -> None:
        # Bound tasks first (they were targeted deliberately), then shared.
        if self._bound[w]:
            service_time, label, on_done, on_start, cp_pred, t_enq = self._bound[w].popleft()
            bound = True
        elif self._shared:
            service_time, label, on_done, on_start, cp_pred, t_enq = self._shared.popleft()
            bound = False
        else:
            self._idle[w] = True
            return
        self._idle[w] = False
        start = self.sim.now
        node = None
        if self.cp is not None:
            resource = f"p{self.process_id}.w{w}"
            preds = (cp_pred,)
            if start > t_enq:
                # The task that just vacated this worker is what held the
                # queued task up; the edge routes the critical path through
                # the busy worker's own task chain.
                wait = self.cp.add(label + " wait", "queue", t_enq, start,
                                   resource, (cp_pred, freed))
                preds = (wait,)
            node = self.cp.add(label, "compute", start, start + service_time,
                               resource, preds)
            self.cp_last = node
        if on_start:
            on_start()
        self.busy_time += service_time
        self.tasks_run += 1

        def finish():
            if bound:
                self._backlog[w] -= service_time
            if self.trace is not None:
                self.trace.record(self.process_id, w, start, self.sim.now, label)
            if self.cp is not None:
                self.cp_last = node
            if on_done:
                on_done()
            self._run_next(w, freed=node)

        self.sim.schedule(service_time, finish)

    @property
    def queued(self) -> int:
        return len(self._shared) + sum(len(q) for q in self._bound)

    def idle_workers(self) -> int:
        return sum(self._idle)
