"""DES critical-path analysis (Projections-style).

The discrete-event simulator resolves every dependency the distributed
traversal has — request → serialize → response → insertion → resumption
chains, worker occupancy, comm-thread and injection-pipe queues — but the
seed only reports *totals* (busy seconds per activity).  This module records
the dependency edges as they are resolved and extracts the **critical
path**: the longest chain of dependent simulated work, which is what
actually bounds the iteration time (Valdarnini's treecode studies and the
event-driven N-body literature both attribute end-to-end time this way).

Recording model
---------------

Every timed activity becomes a :class:`CPNode` with a ``kind``:

* ``compute`` — worker-task execution (local traversals, resumptions,
  cache insertions, request CPU);
* ``latency`` — cache-miss latency legs (request/response wire time,
  home-side serialization, injection-bandwidth streaming);
* ``queue``   — time a ready activity waited for a busy resource (worker
  backlog, comm-thread/pipe/writer FIFOs);
* ``barrier`` — end-of-iteration wait (processes that finished before the
  slowest one; also any trailing clock advance past the last activity).

Edges point from an activity to the activities it enabled.  An edge may
come from a *completion* (a fill enables its waiters) or from a *start*
(a bucket's local traversal issues its remote requests when it begins);
the extractor handles both by clamping each predecessor's contribution at
the moment its successor became runnable.

Extraction walks backward from the activity that finishes last: at each
node it takes the predecessor that was available latest, emitting one
contiguous :class:`CPSegment` per step.  The resulting segments tile
``[0, makespan]`` exactly, so the per-kind attribution **sums to the
end-to-end simulated time by construction** — the property the regression
harness asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "CP_KINDS",
    "CPNode",
    "CPRecorder",
    "CPSegment",
    "CriticalPathReport",
    "analyze_critical_path",
    "format_components",
]

#: attribution buckets, in reporting order
CP_KINDS = ("compute", "latency", "queue", "barrier")


class CPNode:
    """One recorded activity interval with causal predecessors."""

    __slots__ = ("id", "label", "kind", "start", "end", "resource", "preds")

    def __init__(self, id: int, label: str, kind: str, start: float,
                 end: float, resource: str, preds: tuple[int, ...]) -> None:
        self.id = id
        self.label = label
        self.kind = kind
        self.start = start
        self.end = end
        self.resource = resource
        self.preds = preds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CPNode({self.id}, {self.label!r}, {self.kind}, "
                f"[{self.start:.3g}, {self.end:.3g}], {self.resource!r})")


class CPRecorder:
    """Append-only event graph; the DES adds a node per resolved activity.

    Predecessor ids must already exist (they always do — edges are recorded
    in causal order), which makes the graph acyclic by construction.
    """

    __slots__ = ("nodes",)

    def __init__(self) -> None:
        self.nodes: list[CPNode] = []

    def add(self, label: str, kind: str, start: float, end: float,
            resource: str = "", preds: Iterable[int] = ()) -> int:
        """Record one activity; returns its node id (usable as a pred)."""
        if end < start:
            raise ValueError(f"activity ends before it starts: {label}")
        node_id = len(self.nodes)
        pred_t = tuple(p for p in preds if p is not None)
        for p in pred_t:
            if not 0 <= p < node_id:
                raise ValueError(f"predecessor {p} of node {node_id} does not exist")
        self.nodes.append(CPNode(node_id, label, kind, start, end, resource, pred_t))
        return node_id

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class CPSegment:
    """One contiguous slice of the critical path."""

    label: str
    kind: str
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "kind": self.kind,
            "resource": self.resource,
            "start": self.start,
            "end": self.end,
        }


@dataclass
class CriticalPathReport:
    """The longest chain of dependent simulated work, with attribution.

    ``components`` maps each of :data:`CP_KINDS` to the seconds the chain
    spent in that kind; the values sum to ``makespan`` exactly (the
    segments tile ``[0, makespan]``).
    """

    makespan: float
    segments: list[CPSegment] = field(default_factory=list)
    components: dict[str, float] = field(default_factory=dict)
    by_resource: dict[str, float] = field(default_factory=dict)
    by_label: dict[str, float] = field(default_factory=dict)
    #: off-chain end-of-iteration wait per simulated process
    barrier_wait: dict[int, float] = field(default_factory=dict)
    n_nodes: int = 0

    @property
    def attributed_total(self) -> float:
        return sum(self.components.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan": float(self.makespan),
            "components": {k: float(v) for k, v in self.components.items()},
            "fractions": {
                k: (float(v) / self.makespan if self.makespan > 0 else 0.0)
                for k, v in self.components.items()
            },
            "by_resource": {k: float(v) for k, v in self.by_resource.items()},
            "by_label": {k: float(v) for k, v in self.by_label.items()},
            "barrier_wait": {str(k): float(v) for k, v in self.barrier_wait.items()},
            "n_nodes": int(self.n_nodes),
            "n_segments": len(self.segments),
            "segments": [s.to_dict() for s in self.segments],
        }

    def format(self, max_labels: int = 8) -> str:
        """Compact console rendering."""
        lines = [f"critical path: {self.makespan * 1e3:.3f} ms simulated, "
                 f"{len(self.segments)} segments over {self.n_nodes} activities"]
        lines.append("  " + format_components(self.components, self.makespan))
        top = sorted(self.by_label.items(), key=lambda kv: -kv[1])[:max_labels]
        for label, secs in top:
            frac = secs / self.makespan if self.makespan > 0 else 0.0
            lines.append(f"    {label:<28} {secs * 1e3:10.3f} ms  {frac:6.1%}")
        if self.barrier_wait:
            waits = list(self.barrier_wait.values())
            lines.append(
                f"  barrier wait (off-chain): mean {sum(waits) / len(waits) * 1e3:.3f} ms, "
                f"max {max(waits) * 1e3:.3f} ms across {len(waits)} processes")
        return "\n".join(lines)


def format_components(components: dict[str, float], total: float | None = None) -> str:
    """One-line ``kind=ms (pct)`` summary of an attribution dict."""
    total = total if total is not None else sum(components.values()) or 1.0
    parts = []
    for kind in CP_KINDS:
        v = components.get(kind, 0.0)
        pct = v / total if total > 0 else 0.0
        parts.append(f"{kind}={v * 1e3:.3f}ms ({pct:.0%})")
    return "  ".join(parts)


def analyze_critical_path(
    recorder: CPRecorder,
    makespan: float | None = None,
    barrier_wait: dict[int, float] | None = None,
) -> CriticalPathReport:
    """Extract the critical path from a recorded event graph.

    Walks backward from the last-finishing activity, always following the
    predecessor that was available latest.  Gaps no recorded activity
    covers are attributed as ``queue`` (the activity waited in a queue the
    recorder did not model); clock time past the last activity (and the
    implicit join on the slowest process) is attributed as ``barrier``.
    """
    nodes = recorder.nodes
    if not nodes:
        ms = float(makespan or 0.0)
        report = CriticalPathReport(makespan=ms)
        report.components = {k: 0.0 for k in CP_KINDS}
        report.components["barrier"] = ms
        if ms > 0:
            report.segments = [CPSegment("idle", "barrier", "", 0.0, ms)]
        report.barrier_wait = dict(barrier_wait or {})
        return report

    end_node = max(nodes, key=lambda n: (n.end, n.id))
    ms = float(makespan) if makespan is not None else end_node.end
    segments: list[CPSegment] = []
    # Trailing clock advance past the last activity (silent timers, etc.)
    # is barrier wait: everyone has finished, the clock is joining.
    if ms > end_node.end:
        segments.append(CPSegment("join", "barrier", "", end_node.end, ms))

    node = end_node
    t = min(end_node.end, ms)
    guard = len(nodes) + 4
    while guard > 0:
        guard -= 1
        # The predecessor that was available latest is the previous hop.  A
        # predecessor finishing *during* this node's interval (the previous
        # occupant of a contended resource, recorded on queue-wait nodes)
        # truncates this node's on-chain share to the enabling moment — the
        # chain then descends through the resource's own task sequence
        # instead of charging the whole wait.
        best: CPNode | None = None
        best_avail = -1.0
        for pid in node.preds:
            p = nodes[pid]
            avail = min(p.end, t)
            if avail > best_avail:
                best, best_avail = p, avail
        lo = max(0.0, min(node.start, t))
        if best is not None and best_avail > lo:
            lo = best_avail
        if t > lo:
            segments.append(CPSegment(node.label, node.kind, node.resource, lo, t))
        t = lo
        if t <= 0.0:
            break
        if best is None:
            # Chain origin starts after t=0 with no recorded cause.
            segments.append(CPSegment("origin wait", "queue", node.resource, 0.0, t))
            t = 0.0
            break
        if best_avail < t:
            # The enabling activity finished before this one started and no
            # explicit wait was recorded: unmodelled queueing.
            segments.append(CPSegment("unattributed wait", "queue",
                                      node.resource, best_avail, t))
            t = best_avail
        node = best

    segments.reverse()
    components = {k: 0.0 for k in CP_KINDS}
    by_resource: dict[str, float] = {}
    by_label: dict[str, float] = {}
    for seg in segments:
        d = seg.duration
        components[seg.kind] = components.get(seg.kind, 0.0) + d
        if seg.resource:
            by_resource[seg.resource] = by_resource.get(seg.resource, 0.0) + d
        by_label[seg.label] = by_label.get(seg.label, 0.0) + d
    return CriticalPathReport(
        makespan=ms,
        segments=segments,
        components=components,
        by_resource=by_resource,
        by_label=by_label,
        barrier_wait=dict(barrier_wait or {}),
        n_nodes=len(nodes),
    )
