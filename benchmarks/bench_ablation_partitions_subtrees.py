"""Ablation — the Partitions-Subtrees model vs the traditional coupling.

Quantifies §II-C's two claims against the traditional model (where the
tree itself is split along decomposition boundaries):

1. communication volume: "only split leaf nodes need be communicated
   across processes, not their whole path to the root" — we compare the
   particles moved by leaf sharing against the branch nodes the traditional
   model must duplicate-and-merge;
2. the duplication grows with decomposition granularity ("at the extreme
   end of strong scaling ... merging these tree nodes will require a
   significant amount of communication"), while leaf-share volume stays a
   small fraction.
"""


from repro.bench import format_table, print_banner
from repro.cache.stats import NODE_BYTES, PARTICLE_BYTES
from repro.decomp import (
    SfcDecomposer,
    branch_duplication_count,
    decompose,
    estimate_build_times,
)
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.trees import build_tree

PARTITION_COUNTS = (4, 16, 64, 256)

_CACHE = {}


@perf_benchmark("decomp.partitions_subtrees", group="decomp",
                description="decompose + branch-duplication census at 64 partitions")
def perf_partitions_subtrees(quick=False):
    particles = clustered_clumps(8_000 if quick else 30_000, seed=3)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    parts = SfcDecomposer().assign(tree.particles, 64)

    def run():
        dec = decompose(tree, parts, n_subtrees=64)
        dup = branch_duplication_count(tree, parts)
        return {"split_buckets": dec.n_split_buckets, "dup_nodes": int(dup)}

    return run


def _measure():
    if "rows" in _CACHE:
        return _CACHE["rows"]
    particles = clustered_clumps(30_000, seed=3)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    rows = []
    for n_parts in PARTITION_COUNTS:
        parts = SfcDecomposer().assign(tree.particles, n_parts)
        dec = decompose(tree, parts, n_subtrees=n_parts)
        duplicated = branch_duplication_count(tree, parts)
        traditional_bytes = duplicated * NODE_BYTES
        ps_bytes = dec.n_shared_particles * PARTICLE_BYTES
        rows.append(
            (
                n_parts,
                duplicated,
                traditional_bytes,
                dec.n_split_buckets,
                dec.n_shared_particles,
                ps_bytes,
                traditional_bytes / max(ps_bytes, 1),
            )
        )
    _CACHE["rows"] = (rows, tree)
    return _CACHE["rows"]


def test_partitions_subtrees_ablation(benchmark):
    rows, tree = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_banner("Ablation: Partitions-Subtrees vs traditional tree splitting")
    print(format_table(
        [
            "partitions", "dup. branch nodes", "trad. bytes",
            "split buckets", "shared particles", "P-S bytes", "trad/P-S",
        ],
        rows,
    ))

    dup = [r[1] for r in rows]
    shared_frac = [r[4] / tree.n_particles for r in rows]
    # Branch duplication explodes with granularity ("at the extreme end of
    # strong scaling ... a significant amount of communication")...
    assert dup[-1] > 5 * dup[0]
    # ...while leaf sharing stays a small fraction of the particle set.
    assert shared_frac[0] < 0.02
    assert shared_frac[-1] < 0.10
    # At every granularity the Partitions-Subtrees bytes undercut the
    # traditional duplicate-and-merge bytes.
    assert all(r[6] > 1.0 for r in rows)


def test_build_phase_times(benchmark):
    """The §II-C build-phase payoff in time units: under strong scaling
    (partitions ∝ processes) the traditional merge reduction falls behind
    the one-shot leaf-sharing exchange."""
    _, tree = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for n_proc in PARTITION_COUNTS:
        parts = SfcDecomposer().assign(tree.particles, n_proc)
        trad, ps = estimate_build_times(tree, parts, n_processes=n_proc)
        rows.append((
            n_proc,
            trad.sync_time * 1e6,
            ps.sync_time * 1e6,
            trad.sync_time / max(ps.sync_time, 1e-30),
        ))
    print_banner("Build-phase sync time, traditional vs Partitions-Subtrees")
    print(format_table(
        ["processes", "trad merge (us)", "P-S leaf share (us)", "trad/P-S"], rows
    ))
    # P-S wins at the fine-granularity end and its advantage grows.
    assert rows[-1][3] > 1.0
    assert rows[-1][3] >= rows[0][3]
