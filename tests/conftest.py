"""Shared fixtures: small deterministic particle sets and built trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.particles import (
    ParticleSet,
    clustered_clumps,
    keplerian_disk,
    plummer_sphere,
    uniform_cube,
)
from repro.trees import build_tree


@pytest.fixture(scope="session")
def uniform_1k() -> ParticleSet:
    return uniform_cube(1000, seed=42)


@pytest.fixture(scope="session")
def clustered_2k() -> ParticleSet:
    return clustered_clumps(2000, seed=7)


@pytest.fixture(scope="session")
def plummer_1k() -> ParticleSet:
    return plummer_sphere(1000, seed=3)


@pytest.fixture(scope="session")
def disk_1k() -> ParticleSet:
    return keplerian_disk(1000, seed=5)


@pytest.fixture(scope="session")
def oct_tree(uniform_1k):
    return build_tree(uniform_1k, tree_type="oct", bucket_size=12)


@pytest.fixture(scope="session")
def kd_tree(clustered_2k):
    return build_tree(clustered_2k, tree_type="kd", bucket_size=10)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
