"""Two-point correlation functions via dual-tree pair counting.

The paper motivates n-point correlation functions as one of the cosmology
workloads a general tree framework must serve (§III; the SPIRIT comparison
in §V proved itself on two-point correlation).  This app showcases the
dual-tree traversal: node *pairs* are pruned wholesale when their
separation range falls inside a single histogram bin, and ``cell()``
chooses between opening both sides or only the source.
"""

from .paircount import PairCountVisitor, pair_counts, brute_force_pair_counts
from .correlation import two_point_correlation
from .driver import CorrelationDriver

__all__ = [
    "CorrelationDriver",
    "PairCountVisitor",
    "pair_counts",
    "brute_force_pair_counts",
    "two_point_correlation",
]
