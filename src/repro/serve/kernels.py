"""Point-query kernels over the resident tree.

The batch pipelines answer particle-to-particle queries through the
Visitor protocol; the server instead answers *arbitrary-point* queries,
so these kernels walk the SoA tree directly with a nearest-first stack
(the classic prune: skip any node whose box is farther than the current
k-th neighbour).  They are pure functions of ``(tree, query)`` — no
clocks, no RNG — which is what makes drained-and-resumed servers return
bit-identical answers.

Results are returned JSON-ready (lists of Python ints/floats) because
they cross both the socket protocol and process-pool pickling.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..geometry import point_box_distance_sq
from ..trees.node import NO_NODE, Tree


def knn_point(tree: Tree, point: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """k nearest particles to ``point``: ``(indices (k,), dist_sq (k,))``.

    Output is sorted by ``(dist_sq, index)`` — a canonical order, so two
    servers over byte-identical trees agree even on distance ties.
    """
    pos = tree.particles.position
    lo, hi = tree.box_lo, tree.box_hi
    first, nkids = tree.first_child, tree.n_children
    pstart, pend = tree.pstart, tree.pend

    best_d2 = np.full(k, np.inf)
    best_idx = np.full(k, -1, dtype=np.int64)
    worst = np.inf
    stack = [0]
    while stack:
        node = stack.pop()
        if float(point_box_distance_sq(lo[node], hi[node], point)) > worst:
            continue
        if first[node] == NO_NODE:
            cand = np.arange(pstart[node], pend[node], dtype=np.int64)
            if cand.size == 0:
                continue
            delta = pos[cand] - point
            d2 = np.einsum("ij,ij->i", delta, delta)
            all_d2 = np.concatenate([best_d2, d2])
            all_idx = np.concatenate([best_idx, cand])
            if all_d2.size > k:
                sel = np.argpartition(all_d2, k - 1)[:k]
                best_d2, best_idx = all_d2[sel], all_idx[sel]
            else:
                best_d2, best_idx = all_d2, all_idx
            worst = float(best_d2.max())
        else:
            kids = np.arange(first[node], first[node] + nkids[node])
            kd2 = point_box_distance_sq(lo[kids], hi[kids], point)
            # push farthest first so the nearest child pops first
            for j in np.argsort(-kd2, kind="stable"):
                if kd2[j] <= worst:
                    stack.append(int(kids[j]))
    order = np.lexsort((best_idx, best_d2))
    return best_idx[order], best_d2[order]


def range_point(tree: Tree, point: np.ndarray, radius: float,
                max_results: int | None = None) -> np.ndarray:
    """Indices of particles within ``radius`` of ``point`` (ascending).

    ``max_results`` caps the *returned* array so a pathological radius
    cannot produce an unbounded response line.  Callers that need the
    exact hit count must take it before capping — ``execute_queries``
    does, reporting an exact ``count`` plus a ``truncated`` flag.
    """
    pos = tree.particles.position
    lo, hi = tree.box_lo, tree.box_hi
    first, nkids = tree.first_child, tree.n_children
    pstart, pend = tree.pstart, tree.pend
    r2 = float(radius) * float(radius)

    hits: list[np.ndarray] = []
    stack = [0]
    while stack:
        node = stack.pop()
        if float(point_box_distance_sq(lo[node], hi[node], point)) > r2:
            continue
        if first[node] == NO_NODE:
            cand = np.arange(pstart[node], pend[node], dtype=np.int64)
            if cand.size == 0:
                continue
            delta = pos[cand] - point
            d2 = np.einsum("ij,ij->i", delta, delta)
            inside = cand[d2 <= r2]
            if inside.size:
                hits.append(inside)
        else:
            stack.extend(int(c) for c in
                         range(first[node], first[node] + nkids[node]))
    if not hits:
        return np.empty(0, dtype=np.int64)
    out = np.sort(np.concatenate(hits))
    if max_results is not None and out.size > max_results:
        out = out[:max_results]
    return out


def density_point(tree: Tree, point: np.ndarray, k: int) -> tuple[float, float]:
    """kNN mass-density estimate at ``point``: ``(rho, h)``.

    ``h`` is the k-th neighbour distance; ``rho`` is the neighbour mass
    inside the ball over its volume (the simple SPH gather estimate).
    """
    idx, d2 = knn_point(tree, point, k)
    h = float(np.sqrt(d2[-1]))
    msum = float(tree.particles.mass[idx].sum())
    volume = (4.0 / 3.0) * np.pi * max(h, 1e-300) ** 3
    return msum / volume, h


def execute_queries(tree: Tree, queries: list[dict[str, Any]],
                    max_results: int = 256) -> list[dict[str, Any]]:
    """Run one chunk of wire-format queries; one result dict per query.

    This is the function the executor ships to workers, so it takes and
    returns only plain (picklable, JSON-ready) structures.  A per-query
    failure becomes an ``{"error": ...}`` result instead of poisoning
    the chunk.
    """
    out: list[dict[str, Any]] = []
    for doc in queries:
        try:
            point = np.asarray(doc["point"], dtype=np.float64)
            op = doc["op"]
            if op == "knn":
                idx, d2 = knn_point(tree, point, int(doc["k"]))
                out.append({"idx": [int(i) for i in idx],
                            "dist": [float(np.sqrt(d)) for d in d2]})
            elif op == "range":
                idx = range_point(tree, point, float(doc["radius"]))
                res: dict[str, Any] = {"count": int(idx.size)}
                if idx.size > max_results:
                    idx = idx[:max_results]
                    res["truncated"] = True
                res["idx"] = [int(i) for i in idx]
                out.append(res)
            elif op == "density":
                rho, h = density_point(tree, point, int(doc["k"]))
                out.append({"rho": float(rho), "h": float(h)})
            else:
                out.append({"error": f"unknown op {op!r}"})
        except Exception as exc:  # noqa: BLE001 - per-query isolation
            out.append({"error": f"{type(exc).__name__}: {exc}"})
    return out
