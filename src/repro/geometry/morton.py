"""Morton (Z-order) space-filling-curve keys.

SFC decomposition maps particles onto the number line with a space-filling
curve and slices that line into ranges that are uniform in particle count
(Warren & Salmon 1993).  We use 21 bits per dimension, giving 63-bit keys
that fit in ``uint64`` with the top bit spare (the classic "hashed oct-tree"
layout: the key of an octree node is a prefix of the keys of the particles it
contains).

Both encode and decode are fully vectorised with the magic-bits bit-spreading
trick; no Python-level loops over particles.
"""

from __future__ import annotations

import numpy as np

from .box import Box3

__all__ = [
    "MORTON_BITS",
    "MORTON_MAX_COORD",
    "morton_encode",
    "morton_decode",
    "morton_keys",
    "normalize_to_grid",
    "morton_ancestor_key",
    "keys_in_node",
]

#: Bits of resolution per dimension.
MORTON_BITS = 21
#: Largest representable integer grid coordinate.
MORTON_MAX_COORD = (1 << MORTON_BITS) - 1

# Magic constants for spreading 21 bits with 2-bit gaps (part1by2).
_MASKS = (
    np.uint64(0x1FFFFF),               # 21 low bits
    np.uint64(0x1F00000000FFFF),
    np.uint64(0x1F0000FF0000FF),
    np.uint64(0x100F00F00F00F00F),
    np.uint64(0x10C30C30C30C30C3),
    np.uint64(0x1249249249249249),
)
_SHIFTS = (32, 16, 8, 4, 2)


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element so consecutive bits land three
    apart: bit i -> bit 3*i."""
    x = x.astype(np.uint64) & _MASKS[0]
    for shift, mask in zip(_SHIFTS, _MASKS[1:]):
        x = (x | (x << np.uint64(shift))) & mask
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & _MASKS[-1]
    for shift, mask in zip(reversed(_SHIFTS), reversed(_MASKS[:-1])):
        x = (x | (x >> np.uint64(shift))) & mask
    return x


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave three integer grid coordinates into Morton keys.

    Bit layout (low to high): x0 y0 z0 x1 y1 z1 ...
    """
    ix = np.asarray(ix, dtype=np.uint64)
    iy = np.asarray(iy, dtype=np.uint64)
    iz = np.asarray(iz, dtype=np.uint64)
    if np.any(ix > MORTON_MAX_COORD) or np.any(iy > MORTON_MAX_COORD) or np.any(
        iz > MORTON_MAX_COORD
    ):
        raise ValueError(f"grid coordinates exceed {MORTON_BITS}-bit range")
    return _part1by2(ix) | (_part1by2(iy) << np.uint64(1)) | (_part1by2(iz) << np.uint64(2))


def morton_decode(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the (ix, iy, iz) grid coordinates from Morton keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    return (
        _compact1by2(keys),
        _compact1by2(keys >> np.uint64(1)),
        _compact1by2(keys >> np.uint64(2)),
    )


def normalize_to_grid(points: np.ndarray, box: Box3) -> np.ndarray:
    """Map points in ``box`` onto the integer Morton grid -> (N, 3) uint64.

    Points exactly on the upper face map to the maximum coordinate rather
    than overflowing.
    """
    points = np.asarray(points, dtype=np.float64)
    size = np.where(box.size > 0, box.size, 1.0)
    frac = (points - box.lo) / size
    frac = np.clip(frac, 0.0, 1.0)
    grid = np.minimum((frac * (MORTON_MAX_COORD + 1)).astype(np.uint64), MORTON_MAX_COORD)
    return grid


def morton_keys(points: np.ndarray, box: Box3) -> np.ndarray:
    """Morton key of each point in the universe ``box`` -> (N,) uint64."""
    grid = normalize_to_grid(points, box)
    return morton_encode(grid[:, 0], grid[:, 1], grid[:, 2])


def morton_ancestor_key(keys: np.ndarray, level: int) -> np.ndarray:
    """Key prefix identifying the octree node at ``level`` containing each key.

    Level 0 is the root (all particles share prefix 0); each level consumes
    3 bits from the top of the 63-bit key.
    """
    if not 0 <= level <= MORTON_BITS:
        raise ValueError(f"level must be in [0, {MORTON_BITS}], got {level}")
    shift = np.uint64(3 * (MORTON_BITS - level))
    return np.asarray(keys, dtype=np.uint64) >> shift


def keys_in_node(keys: np.ndarray, node_key: int, level: int) -> np.ndarray:
    """Boolean mask of which (sorted or unsorted) keys fall under the octree
    node identified by ``(node_key, level)``."""
    return morton_ancestor_key(keys, level) == np.uint64(node_key)
