"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.gravity import CentroidData
from repro.core import accumulate_data, ranges_to_indices, segment_sums
from repro.core.data import combine_sequence
from repro.geometry import (
    Box3,
    MORTON_MAX_COORD,
    morton_decode,
    morton_encode,
    morton_keys,
)
from repro.particles import ParticleSet
from repro.trees import build_tree, check_tree_invariants

# Shared strategies -----------------------------------------------------------

finite_coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def point_clouds(min_n=2, max_n=120):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(3)),
        elements=finite_coords,
    )


grid_coords = arrays(
    np.uint64, st.integers(1, 200), elements=st.integers(0, MORTON_MAX_COORD)
)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMortonProperties:
    @given(ix=grid_coords, iy=grid_coords, iz=grid_coords)
    @settings(max_examples=50, **COMMON)
    def test_roundtrip(self, ix, iy, iz):
        n = min(len(ix), len(iy), len(iz))
        ix, iy, iz = ix[:n], iy[:n], iz[:n]
        dx, dy, dz = morton_decode(morton_encode(ix, iy, iz))
        assert np.array_equal(ix, dx)
        assert np.array_equal(iy, dy)
        assert np.array_equal(iz, dz)

    @given(ix=grid_coords)
    @settings(max_examples=30, **COMMON)
    def test_monotone_in_each_axis(self, ix):
        """Fixing two coordinates, the key is strictly monotone in the third."""
        ix = np.sort(np.unique(ix))
        if len(ix) < 2:
            return
        zero = np.zeros(len(ix), dtype=np.uint64)
        for args in [(ix, zero, zero), (zero, ix, zero), (zero, zero, ix)]:
            k = morton_encode(*args).astype(np.int64)
            assert np.all(np.diff(k) > 0)

    @given(pts=point_clouds())
    @settings(max_examples=30, **COMMON)
    def test_keys_respect_octants(self, pts):
        """Particles in the low half of x never sort after the entire high
        half when y,z agree — weaker property: keys are identical iff grid
        cells are identical."""
        box = Box3.from_points(pts).cubified()
        if box.is_empty or np.any(box.size == 0):
            return
        keys = morton_keys(pts, box)
        from repro.geometry import normalize_to_grid

        grid = normalize_to_grid(pts, box)
        _, first_idx = np.unique(grid, axis=0, return_index=True)
        same_cell = len(pts) - len(first_idx)
        assert len(np.unique(keys)) == len(pts) - same_cell


class TestBoxProperties:
    @given(pts=point_clouds())
    @settings(max_examples=50, **COMMON)
    def test_bounding_box_contains_all(self, pts):
        box = Box3.from_points(pts)
        assert all(box.contains(p) for p in pts)

    @given(pts=point_clouds(), q=arrays(np.float64, 3, elements=finite_coords))
    @settings(max_examples=50, **COMMON)
    def test_distance_lower_bounds_point_distances(self, pts, q):
        """dist(box, q) <= min distance from q to any contained point."""
        box = Box3.from_points(pts)
        d_box = box.distance_sq(q)
        d_min = np.min(np.einsum("ij,ij->i", pts - q, pts - q))
        assert d_box <= d_min + 1e-6 * max(d_min, 1.0)

    @given(pts=point_clouds())
    @settings(max_examples=30, **COMMON)
    def test_union_is_commutative_and_monotone(self, pts):
        half = len(pts) // 2
        a = Box3.from_points(pts[:half])
        b = Box3.from_points(pts[half:])
        u1 = a.union(b)
        u2 = b.union(a)
        assert u1 == u2
        assert u1.contains_box(a) and u1.contains_box(b)


class TestTreeProperties:
    @given(pts=point_clouds(min_n=3, max_n=150), data=st.data())
    @settings(max_examples=25, **COMMON)
    def test_invariants_random_clouds(self, pts, data):
        tree_type = data.draw(st.sampled_from(["oct", "kd", "longest"]))
        bucket = data.draw(st.integers(1, 12))
        tree = build_tree(ParticleSet(pts), tree_type=tree_type, bucket_size=bucket)
        check_tree_invariants(tree)

    @given(pts=point_clouds(min_n=3, max_n=100))
    @settings(max_examples=25, **COMMON)
    def test_data_accumulation_mass_conservation(self, pts):
        p = ParticleSet(pts, mass=np.abs(pts[:, 0]) + 1.0)
        tree = build_tree(p, tree_type="kd", bucket_size=4)
        accumulated = accumulate_data(tree, CentroidData)
        assert accumulated[0].sum_mass == pytest.approx(p.mass.sum(), rel=1e-12)

    @given(masses=arrays(np.float64, st.integers(1, 40),
                         elements=st.floats(0.1, 10.0)))
    @settings(max_examples=30, **COMMON)
    def test_data_combine_order_independent(self, masses):
        """+= over any grouping of leaf Data gives the same totals (the
        associativity the leaves-to-root sweep relies on)."""
        rng = np.random.default_rng(0)
        pos = rng.normal(size=(len(masses), 3))
        p = ParticleSet(pos, mass=masses)
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        parts = [CentroidData.from_leaf(tree.node(int(l))) for l in tree.leaf_indices]
        forward = combine_sequence(CentroidData, parts)
        backward = combine_sequence(CentroidData, parts[::-1])
        assert forward.sum_mass == pytest.approx(backward.sum_mass, rel=1e-12)
        assert np.allclose(forward.moment, backward.moment, rtol=1e-9)


class TestUtilProperties:
    @given(data=st.data())
    @settings(max_examples=50, **COMMON)
    def test_ranges_to_indices_matches_naive(self, data):
        n = data.draw(st.integers(0, 20))
        starts, ends = [], []
        for _ in range(n):
            s = data.draw(st.integers(0, 1000))
            e = s + data.draw(st.integers(0, 30))
            starts.append(s)
            ends.append(e)
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        got = ranges_to_indices(starts, ends)
        want = (
            np.concatenate([np.arange(s, e) for s, e in zip(starts, ends)])
            if n
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(got, want)

    @given(
        values=arrays(np.float64, st.integers(1, 200), elements=st.floats(-100, 100)),
        data=st.data(),
    )
    @settings(max_examples=50, **COMMON)
    def test_segment_sums_matches_naive(self, values, data):
        n_ranges = data.draw(st.integers(1, 10))
        starts, ends = [], []
        for _ in range(n_ranges):
            s = data.draw(st.integers(0, len(values)))
            e = data.draw(st.integers(s, len(values)))
            starts.append(s)
            ends.append(e)
        got = segment_sums(values, np.array(starts), np.array(ends))
        for k in range(n_ranges):
            assert got[k] == pytest.approx(values[starts[k]:ends[k]].sum(), abs=1e-7)


class TestKnnProperties:
    @given(pts=point_clouds(min_n=6, max_n=80), data=st.data())
    @settings(max_examples=15, **COMMON)
    def test_knn_matches_brute_force(self, pts, data):
        from repro.apps.knn import brute_force_knn, knn_search

        k = data.draw(st.integers(1, min(5, len(pts) - 1)))
        tree = build_tree(ParticleSet(pts), tree_type="kd", bucket_size=4)
        res = knn_search(tree, k)
        bf_d, _ = brute_force_knn(tree.particles.position, k)
        assert np.allclose(res.dist_sq, bf_d, rtol=1e-9, atol=1e-9)


class TestMemsimProperties:
    @given(
        addrs=arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 500)),
        ways=st.integers(1, 8),
    )
    @settings(max_examples=30, **COMMON)
    def test_bigger_cache_never_misses_more(self, addrs, ways):
        """Miss count is monotone non-increasing in associativity x size for
        LRU (stack property)."""
        from repro.memsim import CacheLevel

        small = CacheLevel("s", 64 * ways * 4, ways, 64)
        big = CacheLevel("b", 64 * ways * 8, ways * 2, 64)
        for a in addrs:
            small.access_line(int(a), False)
            big.access_line(int(a), False)
        assert big.stats.load_misses <= small.stats.load_misses

    @given(addrs=arrays(np.int64, st.integers(1, 200), elements=st.integers(0, 100)))
    @settings(max_examples=30, **COMMON)
    def test_repeat_trace_all_hits_when_fits(self, addrs):
        from repro.memsim import CacheLevel

        unique = len(np.unique(addrs))
        c = CacheLevel("c", 64 * 256, 256, 64)  # fully associative, 256 lines
        for a in addrs:
            c.access_line(int(a), False)
        first_misses = c.stats.load_misses
        assert first_misses == unique
        for a in addrs:
            c.access_line(int(a), False)
        assert c.stats.load_misses == unique  # second pass free


class TestDesProperties:
    @given(
        services=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=30),
        workers=st.integers(1, 8),
    )
    @settings(max_examples=40, **COMMON)
    def test_makespan_bounds(self, services, workers):
        """Greedy pool scheduling: max(total/w, longest) <= makespan <=
        total/w + longest."""
        from repro.runtime import Simulator, WorkerPool

        sim = Simulator()
        pool = WorkerPool(sim, workers)
        for s in services:
            pool.submit(s)
        end = sim.run()
        total = sum(services)
        longest = max(services)
        assert end >= max(total / workers, longest) - 1e-9
        assert end <= total / workers + longest + 1e-9


class TestHilbertProperties:
    @given(start=st.integers(0, (1 << 62) - 3000), n=st.integers(2, 400))
    @settings(max_examples=25, **COMMON)
    def test_consecutive_cells_adjacent(self, start, n):
        """Any window of consecutive Hilbert keys decodes to a path of
        face-adjacent grid cells."""
        from repro.geometry import hilbert_decode

        ks = np.arange(n, dtype=np.uint64) + np.uint64(start)
        x, y, z = hilbert_decode(ks)
        step = (
            np.abs(np.diff(x.astype(np.int64)))
            + np.abs(np.diff(y.astype(np.int64)))
            + np.abs(np.diff(z.astype(np.int64)))
        )
        assert np.all(step == 1)

    @given(data=st.data())
    @settings(max_examples=25, **COMMON)
    def test_roundtrip(self, data):
        from repro.geometry import MORTON_MAX_COORD, hilbert_decode, hilbert_encode

        n = data.draw(st.integers(1, 200))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        ix = rng.integers(0, MORTON_MAX_COORD + 1, n, dtype=np.uint64)
        iy = rng.integers(0, MORTON_MAX_COORD + 1, n, dtype=np.uint64)
        iz = rng.integers(0, MORTON_MAX_COORD + 1, n, dtype=np.uint64)
        dx, dy, dz = hilbert_decode(hilbert_encode(ix, iy, iz))
        assert np.array_equal(ix, dx) and np.array_equal(iy, dy) and np.array_equal(iz, dz)


class TestPairCountProperties:
    @given(pts=point_clouds(min_n=4, max_n=60), data=st.data())
    @settings(max_examples=15, **COMMON)
    def test_dual_tree_matches_brute_force(self, pts, data):
        from repro.apps.correlation import brute_force_pair_counts, pair_counts

        scale = float(np.abs(pts).max() or 1.0)
        n_bins = data.draw(st.integers(1, 5))
        edges = np.linspace(0.01 * scale + 1e-9, 3.0 * scale + 1.0, n_bins + 1)
        counts, _, _ = pair_counts(ParticleSet(pts), edges, bucket_size=4)
        assert np.array_equal(counts, brute_force_pair_counts(pts, edges))

    @given(pts=point_clouds(min_n=3, max_n=50))
    @settings(max_examples=15, **COMMON)
    def test_total_pairs_bound(self, pts):
        from repro.apps.correlation import pair_counts

        edges = np.array([0.0, 1e9])
        counts, _, _ = pair_counts(ParticleSet(pts), edges, bucket_size=4)
        assert counts.sum() == len(pts) * (len(pts) - 1)


class TestFMMProperties:
    @given(data=st.data())
    @settings(max_examples=25, **COMMON)
    def test_derivative_tensors_harmonic(self, data):
        """1/r is harmonic: the trace of every derivative tensor vanishes."""
        from repro.apps.gravity import derivative_tensors

        R = np.array([
            data.draw(st.floats(-10, 10)),
            data.draw(st.floats(-10, 10)),
            data.draw(st.floats(-10, 10)),
        ])
        if np.linalg.norm(R) < 1e-3:
            return
        _, _, g2, g3 = derivative_tensors(R)
        assert abs(np.trace(g2)) < 1e-9 * max(np.abs(g2).max(), 1e-30)
        assert np.all(
            np.abs(np.einsum("iik->k", g3)) < 1e-9 * max(np.abs(g3).max(), 1e-30)
        )


class TestRayProperties:
    @given(data=st.data())
    @settings(max_examples=10, **COMMON)
    def test_tree_tracer_matches_brute_force(self, data):
        from repro.apps.ray import brute_force_trace, trace_rays

        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        n = data.draw(st.integers(20, 120))
        pos = rng.uniform(-1, 1, (n, 3))
        p = ParticleSet(pos)
        p.add_field("radius", rng.uniform(0.01, 0.15, n))
        tree = build_tree(p, tree_type="oct", bucket_size=8)
        n_rays = data.draw(st.integers(1, 15))
        origins = rng.uniform(-3, 3, (n_rays, 3))
        dirs = rng.normal(size=(n_rays, 3))
        if np.any(np.linalg.norm(dirs, axis=1) < 1e-9):
            return
        res = trace_rays(tree, origins, dirs)
        bf_hit, bf_t = brute_force_trace(
            tree.particles.position, tree.particles.radius, origins, dirs
        )
        # Equal first-hit distances (indices can differ on tangential ties).
        finite = np.isfinite(bf_t)
        assert np.array_equal(np.isfinite(res.t_hit), finite)
        assert np.allclose(res.t_hit[finite], bf_t[finite], rtol=1e-9)


class TestBallSearchProperties:
    @given(pts=point_clouds(min_n=4, max_n=70), data=st.data())
    @settings(max_examples=10, **COMMON)
    def test_matches_brute_force(self, pts, data):
        from repro.apps.knn import ball_search, brute_force_ball

        scale = float(np.abs(pts).max() or 1.0)
        radius = data.draw(st.floats(0.01, 1.0)) * scale
        tree = build_tree(ParticleSet(pts), tree_type="kd", bucket_size=4)
        lists, _ = ball_search(tree, radius)
        expect = brute_force_ball(tree.particles.position, radius)
        for got, want in zip(lists, expect):
            assert set(got.tolist()) == set(want.tolist())


class TestFoFProperties:
    @given(pts=point_clouds(min_n=4, max_n=60), data=st.data())
    @settings(max_examples=10, **COMMON)
    def test_partition_matches_brute_force(self, pts, data):
        from repro.apps.fof import brute_force_fof, friends_of_friends

        scale = float(np.abs(pts).max() or 1.0)
        ll = data.draw(st.floats(0.01, 0.5)) * scale + 1e-9
        tree = build_tree(ParticleSet(pts), tree_type="oct", bucket_size=4)
        res = friends_of_friends(tree, linking_length=ll)
        bf = brute_force_fof(tree.particles.position, ll)
        # same partition structure: bijection between label sets
        pairs = set(zip(res.labels.tolist(), bf.tolist()))
        assert len(pairs) == len(set(res.labels.tolist()))
        assert len(pairs) == len(set(bf.tolist()))
