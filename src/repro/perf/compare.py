"""Noise-aware regression detection between two BENCH documents.

A benchmark regresses when its new median exceeds the baseline median by
more than ``max(rel_floor * base_median, k_iqr * max(base_iqr, new_iqr))``:
the relative floor keeps micro-benchmarks from tripping on scheduler
jitter, and the IQR term scales the threshold with each benchmark's own
measured noise.  Symmetrically-exceeded thresholds in the other direction
are flagged as improvements (never as failures).

The result carries a console rendering, a markdown table for PR bodies,
and an exit code for CI gating (``repro bench compare`` returns it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["BenchDelta", "ComparisonResult", "compare_reports"]

#: default relative regression floor (fraction of the baseline median)
DEFAULT_REL_FLOOR = 0.25
#: default noise multiplier on the larger of the two IQRs
DEFAULT_K_IQR = 3.0


@dataclass(frozen=True)
class BenchDelta:
    """Verdict for one benchmark present in both documents."""

    id: str
    base_median: float
    new_median: float
    base_iqr: float
    new_iqr: float
    threshold: float

    @property
    def delta(self) -> float:
        return self.new_median - self.base_median

    @property
    def ratio(self) -> float:
        return self.new_median / self.base_median if self.base_median > 0 else float("inf")

    @property
    def regressed(self) -> bool:
        return self.delta > self.threshold

    @property
    def improved(self) -> bool:
        return -self.delta > self.threshold

    @property
    def verdict(self) -> str:
        if self.regressed:
            return "regression"
        if self.improved:
            return "improved"
        return "ok"


@dataclass
class ComparisonResult:
    """Everything ``repro bench compare`` reports."""

    deltas: list[BenchDelta] = field(default_factory=list)
    #: ids in the baseline but not the new run
    missing: list[str] = field(default_factory=list)
    #: ids in the new run but not the baseline
    added: list[str] = field(default_factory=list)
    #: ids that errored in either run
    errored: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    rel_floor: float = DEFAULT_REL_FLOOR
    k_iqr: float = DEFAULT_K_IQR

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "rel_floor": self.rel_floor,
            "k_iqr": self.k_iqr,
            "regressions": [d.id for d in self.regressions],
            "improvements": [d.id for d in self.improvements],
            "missing": list(self.missing),
            "added": list(self.added),
            "errored": list(self.errored),
            "warnings": list(self.warnings),
            "deltas": [
                {"id": d.id, "base_median": d.base_median, "new_median": d.new_median,
                 "ratio": d.ratio, "threshold": d.threshold, "verdict": d.verdict}
                for d in self.deltas
            ],
        }

    def format(self) -> str:
        """Console rendering."""
        lines = [f"{'benchmark':<28} {'base ms':>10} {'new ms':>10} "
                 f"{'ratio':>7} {'thresh ms':>10}  verdict"]
        for d in sorted(self.deltas, key=lambda d: (-int(d.regressed), -d.ratio)):
            lines.append(
                f"{d.id:<28} {d.base_median * 1e3:>10.3f} {d.new_median * 1e3:>10.3f} "
                f"{d.ratio:>6.2f}x {d.threshold * 1e3:>10.3f}  {d.verdict}")
        for w in self.warnings:
            lines.append(f"warning: {w}")
        if self.missing:
            lines.append(f"missing from new run: {', '.join(self.missing)}")
        if self.added:
            lines.append(f"new benchmarks (no baseline): {', '.join(self.added)}")
        if self.errored:
            lines.append(f"errored (not compared): {', '.join(self.errored)}")
        n_reg = len(self.regressions)
        lines.append(
            f"{'PASS' if self.passed else 'FAIL'}: {len(self.deltas)} compared, "
            f"{n_reg} regression{'s' if n_reg != 1 else ''}, "
            f"{len(self.improvements)} improved "
            f"(floor {self.rel_floor:.0%}, {self.k_iqr:g}x IQR)")
        return "\n".join(lines)

    def markdown(self) -> str:
        """Markdown report suitable for a PR body or job summary."""
        badge = "✅ pass" if self.passed else "❌ regression"
        lines = [
            f"## Benchmark comparison — {badge}",
            "",
            f"Threshold per benchmark: `max({self.rel_floor:.0%} of baseline, "
            f"{self.k_iqr:g}×IQR)`.",
            "",
            "| benchmark | base median | new median | ratio | verdict |",
            "|---|---:|---:|---:|---|",
        ]
        icon = {"regression": "🔺", "improved": "🔽", "ok": ""}
        for d in sorted(self.deltas, key=lambda d: (-int(d.regressed), -d.ratio)):
            lines.append(
                f"| `{d.id}` | {d.base_median * 1e3:.3f} ms | {d.new_median * 1e3:.3f} ms "
                f"| {d.ratio:.2f}× | {icon[d.verdict]} {d.verdict} |")
        extras = []
        if self.missing:
            extras.append(f"missing from new run: {', '.join(f'`{i}`' for i in self.missing)}")
        if self.added:
            extras.append(f"added (no baseline): {', '.join(f'`{i}`' for i in self.added)}")
        if self.errored:
            extras.append(f"errored: {', '.join(f'`{i}`' for i in self.errored)}")
        extras.extend(self.warnings)
        if extras:
            lines.append("")
            lines.extend(f"- {e}" for e in extras)
        return "\n".join(lines) + "\n"


def compare_reports(
    base: dict[str, Any],
    new: dict[str, Any],
    rel_floor: float = DEFAULT_REL_FLOOR,
    k_iqr: float = DEFAULT_K_IQR,
) -> ComparisonResult:
    """Compare two loaded BENCH documents (see :func:`~repro.perf.harness.load_report`)."""
    result = ComparisonResult(rel_floor=rel_floor, k_iqr=k_iqr)

    if bool(base.get("quick")) != bool(new.get("quick")):
        result.warnings.append(
            f"quick-mode mismatch (baseline quick={base.get('quick')}, "
            f"new quick={new.get('quick')}): workload sizes differ, "
            "ratios are not meaningful")
    b_env, n_env = base.get("environment", {}), new.get("environment", {})
    for key in ("python", "numpy", "cpu_count"):
        if b_env.get(key) != n_env.get(key):
            result.warnings.append(
                f"environment mismatch: {key} {b_env.get(key)!r} -> {n_env.get(key)!r}")

    base_by_id = {r["id"]: r for r in base.get("results", [])}
    new_by_id = {r["id"]: r for r in new.get("results", [])}
    for bench_id in sorted(set(base_by_id) | set(new_by_id)):
        b, n = base_by_id.get(bench_id), new_by_id.get(bench_id)
        if b is None:
            result.added.append(bench_id)
            continue
        if n is None:
            result.missing.append(bench_id)
            continue
        if b.get("error") or n.get("error") or b.get("median") is None or n.get("median") is None:
            result.errored.append(bench_id)
            continue
        threshold = max(rel_floor * float(b["median"]),
                        k_iqr * max(float(b.get("iqr") or 0.0), float(n.get("iqr") or 0.0)))
        result.deltas.append(BenchDelta(
            id=bench_id,
            base_median=float(b["median"]), new_median=float(n["median"]),
            base_iqr=float(b.get("iqr") or 0.0), new_iqr=float(n.get("iqr") or 0.0),
            threshold=threshold,
        ))
    return result
