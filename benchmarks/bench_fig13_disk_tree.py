"""Fig 13 — longest-dimension tree vs octree on a protoplanetary disk.

Reproduces §IV-B: the disk is "mostly two-dimensional", so cutting all
three dimensions equally (octrees) wastes branching and balances load
poorly, while the longest-dimension tree "branches at the median but always
in the longest dimension".  Three configurations, as in the figure:

* **Longest-dim (ParaTreeT)** — longest-dimension tree + ORB decomposition;
* **Octree (ParaTreeT)**      — octree + octree decomposition;
* **Octree (ChaNGa)**         — octree + octree decomposition with the
  per-bucket style and per-thread caches.

Each runs a real gravity traversal over the same disk, and the DES scales
the iteration over Stampede2 cores.  Reproduced claims: the longest-dim
tree wins, "especially at scale", and the octree's decomposition imbalance
produces scaling anomalies like the paper's 192-core point.
"""


from repro.bench import build_gravity_workload, format_series, paper_reference, print_banner
from repro.cache import PER_THREAD, WAITFREE
from repro.decomp import imbalance
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal

CORES = (48, 192, 768)
WORKERS = 48  # full Stampede2 nodes


@perf_benchmark("des.disk_tree", group="des",
                description="Fig 13 longest-dim disk point: 16 procs x 48 workers")
def perf_disk_tree(quick=False):
    gw = build_gravity_workload(
        distribution="disk", n=6_000 if quick else 20_000,
        n_partitions=64, n_subtrees=64, seed=5,
        tree_type="longest", decomp_type="longest",
    )

    def run():
        r = simulate_traversal(
            gw.workload, machine=STAMPEDE2, n_processes=16,
            workers_per_process=WORKERS, cache_model=WAITFREE,
            traversal_style="transposed",
        )
        return {"sim_time": r.time}

    return run

CONFIGS = {
    "Longest-dim": dict(tree_type="longest", decomp_type="longest"),
    "Oct (ParaTreeT)": dict(tree_type="oct", decomp_type="oct"),
    "Oct (ChaNGa)": dict(tree_type="oct", decomp_type="oct"),
}
STYLE = {"Longest-dim": ("transposed", WAITFREE),
         "Oct (ParaTreeT)": ("transposed", WAITFREE),
         "Oct (ChaNGa)": ("per-bucket", PER_THREAD)}

_CACHE = {}


def _sweep():
    if "sweep" in _CACHE:
        return _CACHE["sweep"]
    series = {}
    imbalances = {}
    for name, kwargs in CONFIGS.items():
        gw = build_gravity_workload(
            distribution="disk", n=20_000, n_partitions=64, n_subtrees=64,
            seed=5, **kwargs,
        )
        style, cache = STYLE[name]
        times = []
        for cores in CORES:
            r = simulate_traversal(
                gw.workload, machine=STAMPEDE2, n_processes=cores // WORKERS,
                workers_per_process=WORKERS, cache_model=cache,
                traversal_style=style,
            )
            times.append(r.time)
        series[name] = times
        imbalances[name] = imbalance(gw.decomposition.partition_loads())
    _CACHE["sweep"] = (series, imbalances)
    return _CACHE["sweep"]


def test_fig13_shape(benchmark):
    series, imbalances = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_banner("Fig 13: average disk iteration time on Stampede2 (s)")
    print(format_series("cores", list(CORES), series))
    print("\npartition count-imbalance (max/mean) per decomposition:")
    for name, v in imbalances.items():
        print(f"  {name:18s} {v:.3f}")
    print("\npaper: octree decomposition shows anomalies (e.g. at "
          f"{paper_reference.FIG13_OCTREE_ANOMALY_CORES} cores); the "
          "longest-dimension tree 'has better load balance and can achieve "
          "greater performance, especially at scale'")

    longest = series["Longest-dim"]
    oct_pt = series["Oct (ParaTreeT)"]
    oct_ch = series["Oct (ChaNGa)"]
    # Longest-dim beats both octree configurations at scale.
    assert longest[-1] < oct_pt[-1]
    assert longest[-1] < oct_ch[-1]
    # The gap grows with core count (load imbalance bites harder when each
    # process holds fewer partitions).
    assert oct_pt[-1] / longest[-1] >= oct_pt[0] / longest[0] * 0.95
    # ChaNGa's octree is the slowest curve, as in the figure.
    assert all(c >= p * 0.999 for c, p in zip(oct_ch, oct_pt))
    # The decomposition-imbalance mechanism: ORB balances the flat disk
    # better than octant-granularity assignment.
    assert imbalances["Longest-dim"] < imbalances["Oct (ParaTreeT)"]


def test_fig13_tree_depth_mechanism(benchmark):
    """§IV-B's 'useless tree branching': on a flat disk the octree spends
    depth separating the thin z dimension, yielding deeper trees for the
    same bucket size."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    long_gw = build_gravity_workload(
        distribution="disk", n=20_000, n_partitions=64, n_subtrees=64,
        seed=5, tree_type="longest", decomp_type="longest",
    )
    oct_gw = build_gravity_workload(
        distribution="disk", n=20_000, n_partitions=64, n_subtrees=64,
        seed=5, tree_type="oct", decomp_type="oct",
    )
    print(f"\nlongest-dim tree: depth {long_gw.tree.depth}, "
          f"{long_gw.tree.n_nodes} nodes, "
          f"{long_gw.stats.pp_interactions:,} pp interactions")
    print(f"octree:           depth {oct_gw.tree.depth}, "
          f"{oct_gw.tree.n_nodes} nodes, "
          f"{oct_gw.stats.pp_interactions:,} pp interactions")
    assert oct_gw.tree.depth > long_gw.tree.depth / 2  # octrees go deep on disks
    # Balanced binary leaves: no leaf ever exceeds the bucket, while the
    # depth-capped octree can have oversized leaves on coincident swarms.
    counts = long_gw.tree.pend[long_gw.tree.leaf_indices] - long_gw.tree.pstart[
        long_gw.tree.leaf_indices
    ]
    assert counts.max() <= 16
