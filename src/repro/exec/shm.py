"""Zero-copy array sharing for the process backend.

A :class:`ShmArena` packs a dict of NumPy arrays into one
``multiprocessing.shared_memory`` block; its :attr:`~ShmArena.handle` is a
small picklable description (segment name + per-array offset/dtype/shape)
that worker processes turn back into zero-copy views with
:func:`attach_arena`.  Workers never copy the particle or tree arrays —
they map the parent's pages read-only, which is the in-process analogue of
the paper's shared Subtree memory.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "AttachedArena", "attach_arena"]

#: byte alignment of each array inside the block (cache-line friendly)
_ALIGN = 64

#: picklable handle: (segment name, {array name: (offset, dtype str, shape)})
Handle = tuple[str, dict[str, tuple[int, str, tuple[int, ...]]]]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class ShmArena:
    """Owner side: copy ``arrays`` into one shared segment, once.

    The owner must keep the arena alive while workers use it and call
    :meth:`dispose` (or use it as a context manager) afterwards — disposal
    unlinks the segment; workers that still have it mapped keep their views
    until they drop them (POSIX semantics).
    """

    def __init__(self, arrays: dict[str, np.ndarray], name_prefix: str = "repro") -> None:
        specs: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        offset = 0
        contiguous = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        for name, arr in contiguous.items():
            offset = _aligned(offset)
            specs[name] = (offset, arr.dtype.str, arr.shape)
            offset += arr.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, arr in contiguous.items():
            off, _, _ = specs[name]
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=off)
            dst[...] = arr
        self.handle: Handle = (self._shm.name, specs)
        self.nbytes = offset

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


class AttachedArena:
    """Worker side: zero-copy read-only views over an owner's segment."""

    def __init__(self, handle: Handle) -> None:
        name, specs = handle
        self.name = name
        # CPython's resource tracker assumes whoever opens a segment owns
        # it and unlinks leaked segments at interpreter exit — an attaching
        # worker must not adopt (and later destroy) the parent's arena
        # (bpo-39959).  Unregistering after the fact races the owner's own
        # registration when the tracker process is shared (fork), so
        # suppress registration entirely for the attach.
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            self._shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        self.arrays: dict[str, np.ndarray] = {}
        for arr_name, (offset, dtype, shape) in specs.items():
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf,
                              offset=offset)
            view.flags.writeable = False
            self.arrays[arr_name] = view

    def close(self) -> None:
        if self._shm is not None:
            self.arrays = {}
            self._shm.close()
            self._shm = None


def attach_arena(handle: Handle) -> AttachedArena:
    """Attach to an owner's segment (worker-process entry point)."""
    return AttachedArena(handle)
