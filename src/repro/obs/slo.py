"""Declarative latency SLOs evaluated with burn-rate windows.

An :class:`SLOSpec` states an objective — "99% of samples complete under
5 ms" — as ``lat<5ms,target=0.99``.  Evaluation follows the SRE burn-rate
formulation: with error budget ``1 - target``, the *burn rate* of a window
is ``bad_fraction / (1 - target)`` — 1.0 means the budget is being spent
exactly at the sustainable rate, above 1.0 the objective will be missed if
the window's behaviour continues.  Two windows are checked:

* the **long window** — every sample (the full run);
* the **short window** — the trailing ``window`` fraction of samples
  (default 25%), which catches a run that *became* slow even when the
  early samples keep the overall average healthy.

The spec violates when either window's burn rate exceeds ``burn``
(default 1.0).  Samples come from real runs (per-iteration wall times via
:func:`samples_from_reports`) or from DES traffic (per-task service
intervals via :func:`samples_from_sim`) — the same spec text evaluates
over both, which is how CI can gate on simulated straggler traffic before
the serving layer exists.

Spec grammar (comma-separated, order-free after the objective)::

    lat<5ms[,target=0.99][,burn=1.5][,window=0.25]

with unit suffixes ``s``, ``ms``, ``us`` on the threshold.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .hist import Log2Histogram

__all__ = [
    "SLOSpec",
    "SLOReport",
    "parse_slo_spec",
    "evaluate_slo",
    "samples_from_reports",
    "samples_from_sim",
    "SLO_SCHEMA",
]

#: schema tag for SLO report JSON, bumped on breaking layout changes
SLO_SCHEMA = "repro.slo/1"

_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6}

_SPEC_RE = re.compile(r"^lat\s*<\s*(?P<value>[0-9.]+)\s*(?P<unit>s|ms|us)?$")


@dataclass(frozen=True)
class SLOSpec:
    """One latency objective: ``good_fraction(samples < threshold) >= target``."""

    threshold: float          # seconds
    target: float = 0.99      # fraction of samples that must be good
    burn_limit: float = 1.0   # max tolerated burn rate in any window
    window: float = 0.25      # short-window size as a fraction of samples
    text: str = ""            # original spec string, for reports

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.burn_limit <= 0:
            raise ValueError("burn limit must be positive")
        if not 0.0 < self.window <= 1.0:
            raise ValueError("window must be in (0, 1]")


@dataclass
class SLOReport:
    """Evaluation result; ``to_dict()`` is the ``repro.slo/1`` schema."""

    spec: SLOSpec
    n_samples: int
    windows: list[dict[str, Any]] = field(default_factory=list)
    quantiles: dict[str, float] = field(default_factory=dict)
    violated: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SLO_SCHEMA,
            "spec": {
                "text": self.spec.text,
                "threshold": self.spec.threshold,
                "target": self.spec.target,
                "burn_limit": self.spec.burn_limit,
                "window": self.spec.window,
            },
            "n_samples": self.n_samples,
            "windows": self.windows,
            "quantiles": self.quantiles,
            "violated": self.violated,
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    def summary(self) -> str:
        lines = [
            f"SLO {self.spec.text or f'lat<{self.spec.threshold}s'}: "
            f"{'VIOLATED' if self.violated else 'ok'} "
            f"({self.n_samples} samples)"
        ]
        for w in self.windows:
            lines.append(
                f"  {w['name']:<6s} window ({w['n']} samples): "
                f"bad={w['bad']} burn={w['burn_rate']:.2f} "
                f"(limit {self.spec.burn_limit:.2f})"
                + ("  <-- violated" if w["violated"] else "")
            )
        if self.quantiles:
            q = "  ".join(f"{k}={v * 1e3:.3f}ms" for k, v in self.quantiles.items())
            lines.append(f"  latency: {q}")
        return "\n".join(lines)


def parse_slo_spec(text: str) -> SLOSpec:
    """Parse ``"lat<5ms,target=0.99,burn=1.5,window=0.25"``."""
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise ValueError("empty SLO spec")
    m = _SPEC_RE.match(parts[0])
    if not m:
        raise ValueError(
            f"bad SLO objective {parts[0]!r}: expected 'lat<NUMBER[s|ms|us]'"
        )
    threshold = float(m.group("value")) * _UNITS[m.group("unit") or "s"]
    kwargs: dict[str, float] = {}
    keys = {"target": "target", "burn": "burn_limit", "window": "window"}
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(f"bad SLO option {part!r}: expected key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in keys:
            raise ValueError(f"unknown SLO option {key!r} (expected {sorted(keys)})")
        kwargs[keys[key]] = float(value)
    return SLOSpec(threshold=threshold, text=text, **kwargs)


def _window_stats(spec: SLOSpec, name: str, samples: Sequence[float]) -> dict[str, Any]:
    n = len(samples)
    bad = sum(1 for s in samples if s >= spec.threshold)
    bad_fraction = bad / n if n else 0.0
    burn = bad_fraction / (1.0 - spec.target)
    return {
        "name": name,
        "n": n,
        "bad": bad,
        "bad_fraction": bad_fraction,
        "burn_rate": burn,
        "violated": burn > spec.burn_limit,
    }


def evaluate_slo(spec: SLOSpec, samples: Iterable[float]) -> SLOReport:
    """Evaluate ``spec`` over ordered samples (oldest first)."""
    ordered = [float(s) for s in samples]
    windows = [_window_stats(spec, "long", ordered)]
    if ordered and spec.window < 1.0:
        n_short = max(1, math.ceil(spec.window * len(ordered)))
        windows.append(_window_stats(spec, "short", ordered[-n_short:]))
    hist = Log2Histogram()
    if ordered:
        hist.observe_many(ordered)
    return SLOReport(
        spec=spec,
        n_samples=len(ordered),
        windows=windows,
        quantiles=hist.quantiles() if ordered else {},
        violated=any(w["violated"] for w in windows),
    )


# -- sample adapters ---------------------------------------------------------

def samples_from_reports(reports: Iterable[Any]) -> list[float]:
    """Per-iteration wall times from driver :class:`IterationReport`\\ s
    (reports without a recorded wall time are skipped)."""
    out = []
    for r in reports:
        wall = getattr(r, "wall_time", None)
        if wall is not None:
            out.append(float(wall))
    return out


def samples_from_sim(result: Any) -> list[float]:
    """Per-task service durations (simulated seconds) from a DES
    :class:`~repro.runtime.model.SimResult`'s activity trace, in event
    order — deterministic because the DES is."""
    trace = getattr(result, "trace", None)
    if trace is None:
        return []
    return [end - start for (_, _, start, end, _) in trace.intervals]
