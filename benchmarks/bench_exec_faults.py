"""Supervision overhead and fault-recovery cost for the exec backends.

Two honest questions, answered with the perf harness's robust statistics:

1. **What does supervision cost when nothing goes wrong?**  The same
   gravity traversal through the process backend, unsupervised vs
   supervised with no fault plan — both bit-identical to serial, so the
   delta is pure dispatch-loop overhead (event-driven ``cf.wait`` vs
   block-in-order).  It should be within bench noise ("free").

2. **What does recovery cost as the kill rate rises?**  The supervised
   process backend under seeded ``ExecFaultPlan`` worker-kill plans — real
   ``SIGKILL`` on live workers, pool rebuilds, quarantines — recording the
   slowdown vs fault-free and the recovery-action counts as extras.

Run ``python -m repro bench run --quick 'exec.faults.*' -o BENCH_pr7.json``
to regenerate the PR 7 record.
"""

import time

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.exec import get_backend
from repro.faults import ExecFaultPlan
from repro.particles.generators import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.trees import build_tree


def _gravity_workload(quick=False):
    n = 4_000 if quick else 20_000
    tree = build_tree(clustered_clumps(n, seed=29), tree_type="oct",
                      bucket_size=16)
    arrays = compute_centroid_arrays(tree, theta=0.6)

    def make_visitor():
        return GravityVisitor(tree, arrays, softening=1e-3)

    return tree, make_visitor


@perf_benchmark("exec.faults.supervision_overhead", group="exec",
                repeats=5, quick_repeats=3,
                description="supervised vs unsupervised dispatch, fault-free "
                            "process backend (overhead should be ~ free)")
def perf_supervision_overhead(quick=False):
    tree, make_visitor = _gravity_workload(quick)
    plain = get_backend("processes", workers=4, supervise=False)
    supervised = get_backend("processes", workers=4, supervise=True)
    plain.run(tree, "transposed", make_visitor())       # warm pools
    supervised.run(tree, "transposed", make_visitor())

    def run():
        t0 = time.perf_counter()
        plain.run(tree, "transposed", make_visitor())
        plain_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        supervised.run(tree, "transposed", make_visitor())
        sup_s = time.perf_counter() - t0
        assert supervised.last_mode == "parallel"  # fault-free: not degraded
        return {
            "unsupervised_ms": plain_s * 1e3,
            "supervised_ms": sup_s * 1e3,
            "overhead_pct": (sup_s / plain_s - 1.0) * 100 if plain_s else 0.0,
        }

    return run


def _recovery_bench(kill_rate):
    def setup(quick=False):
        tree, make_visitor = _gravity_workload(quick)
        clean = get_backend("processes", workers=4, supervise=True)
        clean.run(tree, "transposed", make_visitor())  # warm the clean pool

        def run():
            t0 = time.perf_counter()
            clean.run(tree, "transposed", make_visitor())
            clean_s = time.perf_counter() - t0
            # fresh backend per sample: a kill plan leaves the pool dead,
            # so reuse would time pool rebuilds from the *previous* sample
            faulty = get_backend(
                "processes", workers=4,
                exec_faults=ExecFaultPlan(seed=3, worker_kill=kill_rate),
            )
            try:
                t0 = time.perf_counter()
                faulty.run(tree, "transposed", make_visitor())
                faulty_s = time.perf_counter() - t0
                sup = faulty.last_supervision or {}
            finally:
                faulty.shutdown()
            return {
                "clean_ms": clean_s * 1e3,
                "faulty_ms": faulty_s * 1e3,
                "slowdown": faulty_s / clean_s if clean_s else 0.0,
                **{f"sup_{k}": v for k, v in sup.items() if v},
            }

        return run

    return setup


perf_recovery_kill10 = perf_benchmark(
    "exec.faults.recovery_kill10", group="exec", repeats=3, quick_repeats=2,
    description="recovery cost, process backend, 10% worker-kill rate",
)(_recovery_bench(0.10))

perf_recovery_kill25 = perf_benchmark(
    "exec.faults.recovery_kill25", group="exec", repeats=3, quick_repeats=2,
    description="recovery cost, process backend, 25% worker-kill rate",
)(_recovery_bench(0.25))


def test_supervised_fault_free_is_parallel(benchmark):
    """pytest-benchmark wrapper: supervision must not change the fault-free
    execution mode or trip any recovery counter."""
    tree, make_visitor = _gravity_workload(quick=True)
    backend = get_backend("processes", workers=4, supervise=True)
    backend.run(tree, "transposed", make_visitor())

    def run():
        backend.run(tree, "transposed", make_visitor())
        return backend.last_mode, backend.last_supervision

    mode, supervision = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mode == "parallel"
    assert not any((supervision or {}).values())
    backend.shutdown()
