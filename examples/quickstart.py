"""Quickstart: trees, Data, Visitors, and one gravity solve in ~60 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.gravity import compute_gravity, direct_accelerations, acceleration_error
from repro.apps.knn import knn_search
from repro.core import accumulate_data
from repro.apps.gravity import CentroidData
from repro.particles import uniform_cube
from repro.trees import build_tree


def main() -> None:
    # 1. Make some particles (or load your own into a ParticleSet).
    particles = uniform_cube(20_000, seed=1)
    print(f"particles: {len(particles)}, universe box: {particles.bounding_box()}")

    # 2. Build a spatial tree: octree, k-d, or longest-dimension.
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    print(f"tree: {tree}")

    # 3. Extract per-node Data, leaves -> root (the paper's Data abstraction).
    data = accumulate_data(tree, CentroidData)
    print(f"root mass {data[tree.root].sum_mass:.3f}, "
          f"root centroid {np.round(data[tree.root].centroid(), 4)}")

    # 4. Run a Barnes-Hut gravity traversal (Visitor + transposed Traverser).
    result = compute_gravity(particles, theta=0.6, softening=1e-3)
    print(f"traversal stats: {result.stats.as_dict()}")

    # 5. Check accuracy against the direct O(N^2) sum on a sample.
    sample = particles.select(np.arange(0, len(particles), 20))
    res_sample = compute_gravity(sample, theta=0.6, softening=1e-3)
    exact = direct_accelerations(sample, softening=1e-3)
    print(f"force error vs direct sum: {acceleration_error(res_sample.accel, exact)}")

    # 6. Other built-in traversals: k-nearest neighbours (up-and-down).
    knn = knn_search(tree, k=8)
    print(f"kNN: median 8th-neighbour distance "
          f"{np.median(np.sqrt(knn.dist_sq[:, -1])):.4f}, "
          f"pp interactions {knn.stats.pp_interactions:,} "
          f"(vs {len(particles)**2:,} brute force)")


if __name__ == "__main__":
    main()
