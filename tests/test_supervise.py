"""Fault-tolerant execution layer tests: supervised dispatch semantics,
real worker-kill recovery (SIGKILL on process workers), hung-worker
deadlines, pool rebuild, poison-chunk quarantine, deterministic exec fault
plans, the worker tree cache LRU fix, and the orphan shm sweeper."""

import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.exec import (
    ChunkSupervisor,
    SupervisionStats,
    SupervisorConfig,
    get_backend,
    sweep_orphan_segments,
)
from repro.exec.processes import _WORKER_CACHE_LIMIT, _WORKER_TREES, _attach_tree
from repro.exec.shm import ShmArena
from repro.faults import (
    ExecFaultError,
    ExecFaultPlan,
    WorkerDeath,
    parse_exec_fault_spec,
)
from repro.obs import Telemetry, use_telemetry
from repro.particles.generators import uniform_cube
from repro.trees import build_tree

from tests.harness.differential import (
    CountInRadiusVisitor,
    assert_equivalent,
    run_combination,
)


@pytest.fixture(scope="module")
def tree():
    return build_tree(uniform_cube(800, seed=5), tree_type="oct", bucket_size=12)


def _make_visitor(tree):
    return CountInRadiusVisitor(tree, 0.12)


def _collect(visitor):
    return {"counts": visitor.counts}


def _serial(tree):
    return run_combination(tree, "basic", _make_visitor, _collect)


# -- fault plan ---------------------------------------------------------------
class TestExecFaultPlan:
    def test_spec_round_trip(self):
        plan = parse_exec_fault_spec("err=0.1,hang=0.2@3,kill=0.3,seed=9")
        assert plan == ExecFaultPlan(
            seed=9, chunk_error=0.1, worker_hang=0.2, hang_time=3.0,
            worker_kill=0.3,
        )
        assert parse_exec_fault_spec(plan.describe()) == plan

    def test_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exec_fault_spec("explode=0.5")
        with pytest.raises(ValueError):
            parse_exec_fault_spec("err")
        with pytest.raises(ValueError):
            parse_exec_fault_spec("kill=1.5")

    def test_draw_is_deterministic_and_per_attempt(self):
        plan = ExecFaultPlan(seed=3, worker_kill=0.5)
        draws = [plan.draw(c, a) for c in range(16) for a in range(3)]
        assert draws == [plan.draw(c, a) for c in range(16) for a in range(3)]
        # retried chunks redraw: some chunk killed at attempt 0 survives later
        killed = [c for c in range(16) if plan.draw(c, 0) == "kill"]
        assert killed, "seed should kill at least one chunk at attempt 0"
        assert any(plan.draw(c, 1) is None for c in killed)

    def test_kill_always_fires_at_probability_one(self):
        plan = ExecFaultPlan(worker_kill=1.0)
        assert all(plan.draw(c, a) == "kill" for c in range(8) for a in range(4))

    def test_thread_kill_raises_worker_death(self):
        plan = ExecFaultPlan(worker_kill=1.0)
        with pytest.raises(WorkerDeath):
            plan.apply_in_worker(0, 0, in_process=False)

    def test_error_fault_raises(self):
        plan = ExecFaultPlan(chunk_error=1.0)
        with pytest.raises(ExecFaultError):
            plan.apply_in_worker(0, 0, in_process=True)

    def test_no_faults_is_a_no_op(self):
        ExecFaultPlan().apply_in_worker(0, 0, in_process=True)
        assert not ExecFaultPlan().any_faults
        assert ExecFaultPlan(chunk_error=0.1).any_faults


# -- supervisor unit behaviour ------------------------------------------------
def _run_supervisor(n_chunks, compute, config=None, rebuild=None, workers=4):
    """Drive a ChunkSupervisor over a real thread pool with a fake compute."""
    sup = ChunkSupervisor(config or SupervisorConfig(), "test")
    pool = ThreadPoolExecutor(max_workers=workers)
    try:
        results, stats = sup.run(
            n_chunks,
            submit=lambda i, a: pool.submit(compute, i, a),
            serial_exec=lambda i: ("serial", i),
            rebuild=rebuild,
        )
    finally:
        # don't join abandoned (hung) attempts — mirror the backends'
        # _hang_suspected shutdown path
        pool.shutdown(wait=False, cancel_futures=True)
    return results, stats


class TestChunkSupervisor:
    def test_clean_run_touches_nothing(self):
        results, stats = _run_supervisor(8, lambda i, a: ("ok", i, a))
        assert results == [("ok", i, 0) for i in range(8)]
        assert not stats.degraded
        assert stats.to_dict() == SupervisionStats().to_dict()

    def test_transient_error_retries(self):
        def compute(i, attempt):
            if i == 3 and attempt == 0:
                raise RuntimeError("transient")
            return ("ok", i, attempt)

        results, stats = _run_supervisor(6, compute)
        assert results[3] == ("ok", 3, 1)
        assert stats.retries == 1 and stats.quarantined == 0
        assert stats.degraded

    def test_worker_death_counts_separately(self):
        def compute(i, attempt):
            if i == 1 and attempt == 0:
                raise WorkerDeath("bang")
            return ("ok", i, attempt)

        _, stats = _run_supervisor(4, compute)
        assert stats.worker_deaths == 1
        assert stats.retries == 0

    def test_poison_chunk_quarantines_serially(self):
        def compute(i, attempt):
            if i == 2:
                raise RuntimeError("always fails")
            return ("ok", i, attempt)

        cfg = SupervisorConfig(max_chunk_retries=2, backoff_base=0.0)
        results, stats = _run_supervisor(4, compute, config=cfg)
        assert results[2] == ("serial", 2)
        assert stats.quarantined == 1
        assert stats.retries == 3  # attempts 0..2 all failed

    def test_deadline_redispatches_hung_attempt(self):
        def compute(i, attempt):
            if i == 0 and attempt == 0:
                time.sleep(5.0)  # hung first attempt
            return ("ok", i, attempt)

        cfg = SupervisorConfig(chunk_deadline=0.2)
        t0 = time.perf_counter()
        results, stats = _run_supervisor(3, compute, config=cfg)
        assert time.perf_counter() - t0 < 4.0, "must not wait out the hang"
        assert results[0] == ("ok", 0, 1)
        assert stats.deadline_misses >= 1
        assert stats.redispatches >= 1

    def test_latency_seeded_deadline_arms_after_observations(self):
        cfg = SupervisorConfig(seed_observations=4)
        sup = ChunkSupervisor(cfg, "test")
        assert sup.effective_deadline() is None
        for _ in range(4):
            sup.observe(0.01)
        armed = sup.effective_deadline()
        assert armed is not None
        assert armed >= cfg.min_deadline

    def test_explicit_deadline_wins_over_seed(self):
        sup = ChunkSupervisor(SupervisorConfig(chunk_deadline=7.0), "test")
        for _ in range(32):
            sup.observe(0.001)
        assert sup.effective_deadline() == 7.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(chunk_deadline=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_chunk_retries=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(deadline_factor=0)


# -- real-backend recovery ----------------------------------------------------
class TestThreadRecovery:
    def test_kill_plan_is_bit_identical_to_serial(self, tree):
        base = _serial(tree)
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "threads", 4,
            backend_opts={"exec_faults": ExecFaultPlan(seed=7, worker_kill=0.3)},
        )
        assert other.mode == "degraded"
        assert other.extra["supervision"]["worker_deaths"] > 0
        assert_equivalent(base, other)

    def test_error_plan_is_bit_identical_to_serial(self, tree):
        base = _serial(tree)
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "threads", 4,
            backend_opts={"exec_faults": ExecFaultPlan(seed=2, chunk_error=0.5)},
        )
        assert other.mode == "degraded"
        assert other.extra["supervision"]["retries"] > 0
        assert_equivalent(base, other)

    def test_hang_plan_recovers_via_deadline(self, tree):
        base = _serial(tree)
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "threads", 4,
            backend_opts={
                "exec_faults": ExecFaultPlan(seed=5, worker_hang=0.25,
                                             hang_time=10.0),
                "supervise": SupervisorConfig(chunk_deadline=0.5),
            },
        )
        assert other.mode == "degraded"
        assert other.extra["supervision"]["redispatches"] > 0
        assert_equivalent(base, other)

    def test_unsupervised_kill_plan_demonstrably_fails(self, tree):
        with pytest.raises(WorkerDeath):
            run_combination(
                tree, "basic", _make_visitor, _collect, "threads", 4,
                backend_opts={
                    "exec_faults": ExecFaultPlan(seed=7, worker_kill=0.3),
                    "supervise": False,
                },
            )

    def test_fault_free_supervised_matches_unsupervised(self, tree):
        base = run_combination(
            tree, "basic", _make_visitor, _collect, "threads", 4,
        )
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "threads", 4,
            backend_opts={"supervise": True},
        )
        assert other.mode == "parallel"
        assert "supervision" in other.extra
        assert not any(other.extra["supervision"].values())
        assert_equivalent(base, other)


class TestProcessRecovery:
    def test_sigkill_mid_chunk_is_bit_identical_to_serial(self, tree):
        """The acceptance scenario: real SIGKILL on process workers
        mid-chunk; the run completes bit-identical to serial and reports
        the deaths."""
        base = _serial(tree)
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "processes", 4,
            backend_opts={"exec_faults": ExecFaultPlan(seed=3, worker_kill=0.25)},
        )
        assert other.mode == "degraded"
        sup = other.extra["supervision"]
        assert sup["worker_deaths"] > 0
        assert sup["pool_rebuilds"] > 0  # BrokenProcessPool -> rebuilt
        assert_equivalent(base, other)

    def test_sigkill_events_reach_flight_recorder(self, tree):
        tel = Telemetry()
        with use_telemetry(tel):
            other = run_combination(
                tree, "basic", _make_visitor, _collect, "processes", 4,
                backend_opts={
                    "exec_faults": ExecFaultPlan(seed=3, worker_kill=0.25)
                },
            )
        assert other.mode == "degraded"
        kinds = {kind for _, kind, _ in tel.flight.snapshot()}
        assert "exec.worker_death" in kinds
        assert "exec.pool_rebuild" in kinds
        deaths = tel.metrics.counter("exec.worker_deaths", backend="processes")
        assert deaths.value > 0

    def test_unsupervised_kill_plan_demonstrably_fails(self, tree):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            run_combination(
                tree, "basic", _make_visitor, _collect, "processes", 4,
                backend_opts={
                    "exec_faults": ExecFaultPlan(seed=3, worker_kill=0.25),
                    "supervise": False,
                },
            )

    def test_hang_plan_recovers_via_deadline(self, tree):
        base = _serial(tree)
        t0 = time.perf_counter()
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "processes", 4,
            backend_opts={
                "exec_faults": ExecFaultPlan(seed=5, worker_hang=0.2,
                                             hang_time=30.0),
                "supervise": SupervisorConfig(chunk_deadline=1.0),
            },
        )
        assert time.perf_counter() - t0 < 25.0, "must not wait out 30s hangs"
        assert other.mode == "degraded"
        assert other.extra["supervision"]["deadline_misses"] > 0
        assert_equivalent(base, other)

    def test_fault_free_supervised_matches_unsupervised(self, tree):
        base = run_combination(
            tree, "basic", _make_visitor, _collect, "processes", 4,
        )
        other = run_combination(
            tree, "basic", _make_visitor, _collect, "processes", 4,
            backend_opts={"supervise": True},
        )
        assert other.mode == "parallel"
        assert not any(other.extra["supervision"].values())
        assert_equivalent(base, other)


class TestBackendPlumbing:
    def test_supervision_auto_arms_on_fault_plan(self):
        b = get_backend("threads", workers=2,
                        exec_faults=ExecFaultPlan(chunk_error=0.1))
        assert b.supervise_config is not None
        b.shutdown()

    def test_supervision_off_by_default_without_faults(self):
        b = get_backend("threads", workers=2)
        assert b.supervise_config is None
        b.shutdown()

    def test_supervise_false_forces_off_even_with_faults(self):
        b = get_backend("processes", workers=2, supervise=False,
                        exec_faults=ExecFaultPlan(worker_kill=1.0))
        assert b.supervise_config is None
        b.shutdown()

    def test_serial_backend_ignores_supervision(self):
        b = get_backend("serial", supervise=True,
                        exec_faults=ExecFaultPlan(worker_kill=1.0))
        assert b.supervise_config is None
        assert b.exec_faults is None
        b.shutdown()

    def test_backend_is_a_context_manager(self, tree):
        with get_backend("threads", workers=2, supervise=True) as b:
            vis = _make_visitor(tree)
            b.run(tree, "basic", vis)
        assert b._pool is None  # __exit__ shut the pool down


class TestDriverIntegration:
    def test_report_carries_exec_mode_and_supervision(self):
        from repro.apps.knn import KNNDriver
        from repro.core import Configuration

        p = uniform_cube(500, seed=11)

        class Main(KNNDriver):
            def create_particles(self, config):
                return p

        driver = Main(Configuration(num_iterations=1), k=4)
        driver.enable_parallel("threads", workers=4,
                               exec_faults="err=0.5,seed=1")
        try:
            driver.run()
        finally:
            driver.disable_parallel()
        rep = driver.reports[-1]
        assert rep.exec_mode == "degraded"
        assert rep.supervision["retries"] > 0
        d = rep.to_dict()
        assert d["exec_mode"] == "degraded"
        assert d["supervision"]["retries"] > 0

    def test_sph_report_carries_supervision(self):
        # SPH drives the backend directly via compute_density_knn, so it
        # needs the same _absorb_backend_run hook as kNN
        from repro.apps.sph import SPHDriver
        from repro.core import Configuration

        p = uniform_cube(400, seed=12)

        class Main(SPHDriver):
            def create_particles(self, config):
                return p

        driver = Main(Configuration(num_iterations=1), k_neighbors=8)
        driver.enable_parallel("threads", workers=4,
                               exec_faults="err=0.5,seed=1")
        try:
            driver.run()
        finally:
            driver.disable_parallel()
        rep = driver.reports[-1]
        assert rep.exec_mode == "degraded"
        assert rep.supervision["retries"] > 0

    def test_driver_supervision_defaults_on(self):
        from repro.core import Driver

        driver = Driver()
        backend = driver.enable_parallel("threads", workers=2)
        try:
            assert backend.supervise_config is not None
        finally:
            driver.disable_parallel()

    def test_driver_no_supervise_opt_out(self):
        from repro.core import Driver

        driver = Driver()
        backend = driver.enable_parallel("threads", workers=2, supervise=False)
        try:
            assert backend.supervise_config is None
        finally:
            driver.disable_parallel()


# -- worker tree cache LRU (satellite fix) ------------------------------------
class TestWorkerTreeCacheLRU:
    def _arena(self, tree):
        shared = {}
        for f in ("parent", "first_child", "n_children", "pstart", "pend",
                  "box_lo", "box_hi", "level", "key"):
            shared[f"tree.{f}"] = getattr(tree, f)
        for f in tree.particles.field_names:
            shared[f"part.{f}"] = tree.particles[f]
        return ShmArena(shared)

    def test_eviction_is_least_recently_used(self, tree):
        meta = {"tree_type": tree.tree_type, "bucket_size": tree.bucket_size}
        _WORKER_TREES.clear()
        arenas = [self._arena(tree) for _ in range(_WORKER_CACHE_LIMIT + 1)]
        try:
            names = [a.handle[0] for a in arenas]
            # fill the cache to its limit
            for a in arenas[:_WORKER_CACHE_LIMIT]:
                _attach_tree(a.handle, meta)
            # touch the OLDEST entry so it becomes most-recently-used
            _, _, hit = _attach_tree(arenas[0].handle, meta)
            assert hit
            # inserting one more must evict the true LRU (names[1]),
            # not the most-recently-inserted (the old popitem() bug)
            _attach_tree(arenas[-1].handle, meta)
            assert names[0] in _WORKER_TREES
            assert names[1] not in _WORKER_TREES
            assert names[-1] in _WORKER_TREES
        finally:
            for name in list(_WORKER_TREES):
                _WORKER_TREES.pop(name)[0].close()
            for a in arenas:
                a.dispose()

    def test_cache_is_an_ordered_dict(self):
        assert isinstance(_WORKER_TREES, OrderedDict)


# -- shm generation tags and orphan sweeper -----------------------------------
class TestShmSweeper:
    def test_arena_name_embeds_pid_and_generation(self):
        arena = ShmArena({"x": np.arange(4)})
        try:
            name = arena.handle[0]
            parts = name.split("-")
            assert parts[0] == "repro"
            assert int(parts[1]) == os.getpid()
            assert parts[2] == "g0"
        finally:
            arena.dispose()

    def test_sweeper_ignores_live_owner(self):
        arena = ShmArena({"x": np.arange(8)})
        try:
            name = arena.handle[0]
            records = {r["name"]: r for r in sweep_orphan_segments()}
            assert name in records
            assert not records[name]["orphan"]
            assert not records[name]["removed"]
            # still attachable: the sweep must not have unlinked it
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
        finally:
            arena.dispose()

    def test_sweeper_removes_dead_owner_segment(self):
        # forge an orphan: a segment named for a pid that cannot exist
        dead_pid = 2 ** 22 + 12345  # beyond default pid_max
        name = f"repro-{dead_pid}-g3-deadbeef"
        seg = shared_memory.SharedMemory(name=name, create=True, size=128)
        seg.close()
        try:
            dry = {r["name"]: r for r in sweep_orphan_segments(dry_run=True)}
            assert dry[name]["orphan"] and not dry[name]["removed"]
            wet = {r["name"]: r for r in sweep_orphan_segments()}
            assert wet[name]["removed"]
            assert wet[name]["generation"] == 3
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            try:
                shared_memory.SharedMemory(name=name).unlink()
            except FileNotFoundError:
                pass

    def test_sweeper_skips_foreign_names(self):
        seg = shared_memory.SharedMemory(name="notrepro-1-g0-aaaa",
                                         create=True, size=64)
        seg.close()
        try:
            names = {r["name"] for r in sweep_orphan_segments()}
            assert "notrepro-1-g0-aaaa" not in names
        finally:
            shared_memory.SharedMemory(name="notrepro-1-g0-aaaa").unlink()

    def test_attach_failure_does_not_leak_segment(self):
        from repro.exec.shm import AttachedArena

        arena = ShmArena({"x": np.arange(4, dtype=np.int64)})
        name, specs = arena.handle
        # corrupt the spec: claims more data than the segment holds
        bad = (name, {"x": (0, "<i8", (10**6,))})
        try:
            with pytest.raises(Exception):
                AttachedArena(bad)
        finally:
            arena.dispose()
