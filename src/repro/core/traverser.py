"""Traverser interface, traversal statistics, and recorders.

The *Traverser* (paper §II-A-2) fixes the order in which tree nodes are
considered; the Visitor decides pruning and actions.  Built-in traversers:

* :class:`~repro.core.topdown.PerBucketTraverser` — the standard DFS
  ("BasicTrav" in Fig 10, and how ChaNGa walks): the full tree is traversed
  once per target bucket.
* :class:`~repro.core.topdown.TransposedTraverser` — ParaTreeT's
  locality-enhancing loop transposition: each tree node is processed against
  the whole batch of target buckets that still need it.
* :class:`~repro.core.upanddown.UpAndDownTraverser` — top-down passes from
  each node on the leaf-to-root path; for criteria that tighten during the
  traversal (kNN).
* :class:`~repro.core.dualtree.DualTreeTraverser` — node-node interactions
  controlled by ``cell()``.

All engines produce identical Visitor callback *sets* (same interactions,
possibly different order/batching) — the equivalence tests rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_telemetry
from ..trees import Tree
from .visitor import Visitor

__all__ = [
    "TraversalStats",
    "Recorder",
    "InteractionLists",
    "BucketLoadRecorder",
    "Traverser",
    "get_traverser",
    "register_traverser",
]


@dataclass
class TraversalStats:
    """Counters accumulated during one traversal.

    ``*_interactions`` count (source node, target bucket) pairs;
    ``pp_interactions`` counts particle-particle pairs evaluated exactly at
    leaves — the quantity that dominates compute cost and that the DES uses
    to convert a traversal into simulated work.
    """

    opens: int = 0
    node_interactions: int = 0
    leaf_interactions: int = 0
    pp_interactions: int = 0
    pn_interactions: int = 0  # particle-node pairs via node() approximations
    nodes_visited: int = 0
    targets: int = 0

    def merge(self, other: "TraversalStats") -> "TraversalStats":
        self.opens += other.opens
        self.node_interactions += other.node_interactions
        self.leaf_interactions += other.leaf_interactions
        self.pp_interactions += other.pp_interactions
        self.pn_interactions += other.pn_interactions
        self.nodes_visited += other.nodes_visited
        self.targets += other.targets
        return self

    def as_dict(self) -> dict[str, int]:
        return {
            "opens": self.opens,
            "node_interactions": self.node_interactions,
            "leaf_interactions": self.leaf_interactions,
            "pp_interactions": self.pp_interactions,
            "pn_interactions": self.pn_interactions,
            "nodes_visited": self.nodes_visited,
            "targets": self.targets,
        }


class Recorder:
    """Observer of traversal events, in the engine's actual evaluation order.

    Every callback receives arrays of source node indices and target leaf
    indices with outer-product semantics ("each source against each
    target").  One of the two arrays has length 1 depending on the engine's
    batching direction — which is exactly the memory-access-order
    information the cache simulator consumes.
    """

    def on_open(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        pass

    def on_node(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        pass

    def on_leaf(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        pass

    # -- parallel execution (repro.exec) -----------------------------------
    def fork(self) -> "Recorder | None":
        """An empty recorder of the same kind for one worker chunk, or None
        when this recorder cannot be split (backends then run serially).
        After the chunk completes the backend hands the fork back through
        :meth:`absorb`, in chunk order."""
        return None

    def absorb(self, other: "Recorder") -> None:
        """Merge a completed fork back in (chunk order)."""
        raise NotImplementedError


class InteractionLists(Recorder):
    """Recorder that collects, per target bucket, which source nodes were
    approximated (``node_lists``) and which leaves interacted exactly
    (``leaf_lists``), plus every node whose open() was evaluated
    (``visited``).  These lists drive the distributed-fetch statistics and
    the FDPS-style bulk-interaction comparison."""

    def __init__(self) -> None:
        self.node_lists: dict[int, list[int]] = {}
        self.leaf_lists: dict[int, list[int]] = {}
        self.visited: dict[int, list[int]] = {}

    def _extend(self, store: dict[int, list[int]], sources: np.ndarray, targets: np.ndarray) -> None:
        src = [int(s) for s in np.atleast_1d(sources)]
        for t in np.atleast_1d(targets):
            store.setdefault(int(t), []).extend(src)

    def on_open(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        self._extend(self.visited, sources, targets)

    def on_node(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        self._extend(self.node_lists, sources, targets)

    def on_leaf(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        self._extend(self.leaf_lists, sources, targets)

    def fork(self) -> "InteractionLists":
        return InteractionLists()

    def absorb(self, other: "InteractionLists") -> None:
        # Chunks own disjoint target buckets, so per-target lists come from
        # exactly one fork and stay identical to a serial run.
        for mine, theirs in (
            (self.node_lists, other.node_lists),
            (self.leaf_lists, other.leaf_lists),
            (self.visited, other.visited),
        ):
            for t, src in theirs.items():
                mine.setdefault(t, []).extend(src)


class BucketLoadRecorder(Recorder):
    """Tallies interaction work per target bucket — the measured load the
    re-balancers consume (Charm++ measures this through the RTS; here the
    traversal reports it directly)."""

    def __init__(self, tree: Tree) -> None:
        self.work = np.zeros(tree.n_nodes, dtype=np.float64)
        self._counts = tree.pend - tree.pstart

    def on_node(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        t = np.atleast_1d(targets)
        self.work[t] += len(np.atleast_1d(sources)) * self._counts[t]

    def on_leaf(self, tree: Tree, sources: np.ndarray, targets: np.ndarray) -> None:
        t = np.atleast_1d(targets)
        src_particles = int(self._counts[np.atleast_1d(sources)].sum())
        self.work[t] += src_particles * self._counts[t]

    def fork(self) -> "BucketLoadRecorder":
        out = object.__new__(BucketLoadRecorder)
        out.work = np.zeros_like(self.work)
        out._counts = self._counts
        return out

    def absorb(self, other: "BucketLoadRecorder") -> None:
        self.work += other.work

    def per_particle_load(self, tree: Tree) -> np.ndarray:
        """Spread each bucket's work evenly over its particles -> (N,)."""
        out = np.zeros(tree.n_particles)
        for leaf in tree.leaf_indices:
            s, e = int(tree.pstart[leaf]), int(tree.pend[leaf])
            if e > s and self.work[leaf] > 0:
                out[s:e] = self.work[leaf] / (e - s)
        return out


class Traverser:
    """Base class: a traversal strategy over one tree.

    Subclasses implement :meth:`_traverse` (preferred — :meth:`traverse`
    then wraps every run in a telemetry span and folds the stats into the
    current metrics registry) or override :meth:`traverse` wholesale.
    ``targets`` defaults to all leaves of the tree (every bucket computes);
    Partitions pass the subset of buckets they own.
    """

    name: str = "abstract"

    def traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        """Run the traversal (telemetry-instrumented entry point)."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self._traverse(tree, visitor, targets, recorder)
        with telemetry.tracer.span(
            f"traverse.{self.name}", cat="traversal", visitor=type(visitor).__name__
        ):
            stats = self._traverse(tree, visitor, targets, recorder)
        telemetry.metrics.absorb_traversal_stats(stats, engine=self.name)
        return stats

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        raise NotImplementedError

    @staticmethod
    def _resolve_targets(tree: Tree, targets: np.ndarray | None) -> np.ndarray:
        if targets is None:
            return tree.leaf_indices.copy()
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size and not np.all(tree.first_child[targets] == -1):
            raise ValueError("targets must be leaf indices")
        return targets


_TRAVERSERS: dict[str, type[Traverser]] = {}


def register_traverser(name: str, cls: type[Traverser]) -> None:
    """Register a traversal strategy (users may add e.g. priority-driven
    traversals for ray tracing, as the paper suggests)."""
    _TRAVERSERS[name] = cls


def get_traverser(name: str) -> Traverser:
    """Instantiate a registered traverser by name."""
    try:
        return _TRAVERSERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown traverser {name!r}; available: {sorted(_TRAVERSERS)}"
        ) from None
