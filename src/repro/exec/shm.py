"""Zero-copy array sharing for the process backend.

A :class:`ShmArena` packs a dict of NumPy arrays into one
``multiprocessing.shared_memory`` block; its :attr:`~ShmArena.handle` is a
small picklable description (segment name + per-array offset/dtype/shape)
that worker processes turn back into zero-copy views with
:func:`attach_arena`.  Workers never copy the particle or tree arrays —
they map the parent's pages read-only, which is the in-process analogue of
the paper's shared Subtree memory.

Segments are named ``<prefix>-<owner pid>-g<generation>-<nonce>`` so a
crashed owner leaves forensically attributable corpses:
:func:`sweep_orphan_segments` scans ``/dev/shm`` for segments whose owner
pid is dead and unlinks them (``repro audit --shm``).
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "AttachedArena", "attach_arena", "sweep_orphan_segments"]

#: byte alignment of each array inside the block (cache-line friendly)
_ALIGN = 64

#: picklable handle: (segment name, {array name: (offset, dtype str, shape)})
Handle = tuple[str, dict[str, tuple[int, str, tuple[int, ...]]]]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class ShmArena:
    """Owner side: copy ``arrays`` into one shared segment, once.

    The owner must keep the arena alive while workers use it and call
    :meth:`dispose` (or use it as a context manager) afterwards — disposal
    unlinks the segment; workers that still have it mapped keep their views
    until they drop them (POSIX semantics).
    """

    def __init__(self, arrays: dict[str, np.ndarray], name_prefix: str | None = None) -> None:
        specs: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        offset = 0
        contiguous = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        for name, arr in contiguous.items():
            offset = _aligned(offset)
            specs[name] = (offset, arr.dtype.str, arr.shape)
            offset += arr.nbytes
        if name_prefix is None:
            name_prefix = f"repro-{os.getpid()}-g0"
        self._shm = None
        for _ in range(16):
            name = f"{name_prefix}-{secrets.token_hex(4)}"
            try:
                self._shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(offset, 1)
                )
                break
            except FileExistsError:  # pragma: no cover - 1-in-2^32 per draw
                continue
        if self._shm is None:  # pragma: no cover - defensive
            raise RuntimeError(f"could not allocate shm segment under {name_prefix!r}")
        for name, arr in contiguous.items():
            off, _, _ = specs[name]
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=off)
            dst[...] = arr
        self.handle: Handle = (self._shm.name, specs)
        self.nbytes = offset

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


class AttachedArena:
    """Worker side: zero-copy read-only views over an owner's segment."""

    def __init__(self, handle: Handle) -> None:
        name, specs = handle
        self.name = name
        # CPython's resource tracker assumes whoever opens a segment owns
        # it and unlinks leaked segments at interpreter exit — an attaching
        # worker must not adopt (and later destroy) the parent's arena
        # (bpo-39959).  Unregistering after the fact races the owner's own
        # registration when the tracker process is shared (fork), so
        # suppress registration entirely for the attach.
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            self._shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        self.arrays: dict[str, np.ndarray] = {}
        try:
            for arr_name, (offset, dtype, shape) in specs.items():
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf,
                                  offset=offset)
                view.flags.writeable = False
                self.arrays[arr_name] = view
        except Exception:
            # a handle/segment mismatch mid-attach (truncated segment, bad
            # spec) must not leak the mapping — the worker cache never saw
            # this arena, so nobody else will close it
            self.close()
            raise

    def close(self) -> None:
        if self._shm is not None:
            self.arrays = {}
            self._shm.close()
            self._shm = None


def attach_arena(handle: Handle) -> AttachedArena:
    """Attach to an owner's segment (worker-process entry point)."""
    return AttachedArena(handle)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by other user
        return True
    return True


def sweep_orphan_segments(
    prefix: str = "repro", shm_dir: str = "/dev/shm", dry_run: bool = False
) -> list[dict[str, object]]:
    """Find and unlink arena segments whose owning process is dead.

    A SIGKILLed (or OOM-killed) parent never reaches :meth:`ShmArena.dispose`,
    so its segments persist in ``/dev/shm`` until reboot.  Every arena name
    embeds the owner pid (``<prefix>-<pid>-g<gen>-<nonce>``); a segment whose
    pid no longer exists is an orphan by construction.  Segments owned by
    live pids are reported but never touched.  Returns one record per
    matching segment:
    ``{"name", "pid", "generation", "bytes", "orphan", "removed"}``.
    """
    records: list[dict[str, object]] = []
    try:
        entries = os.listdir(shm_dir)
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return records
    for entry in sorted(entries):
        parts = entry.split("-")
        # <prefix>-<pid>-g<gen>-<nonce>
        if len(parts) != 4 or parts[0] != prefix:
            continue
        if not (parts[1].isdigit() and parts[2].startswith("g")
                and parts[2][1:].isdigit()):
            continue
        pid = int(parts[1])
        try:
            size = os.stat(os.path.join(shm_dir, entry)).st_size
        except OSError:  # pragma: no cover - raced with owner disposal
            continue
        orphan = not _pid_alive(pid)
        removed = False
        if orphan and not dry_run:
            try:
                seg = shared_memory.SharedMemory(name=entry)
            except FileNotFoundError:  # pragma: no cover - raced
                continue
            seg.close()
            try:
                seg.unlink()
                removed = True
            except FileNotFoundError:  # pragma: no cover - raced
                pass
        records.append({
            "name": entry, "pid": pid, "generation": int(parts[2][1:]),
            "bytes": size, "orphan": orphan, "removed": removed,
        })
    return records
