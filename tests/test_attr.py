"""Traversal attribution tests (``repro.obs.attr`` + ``repro explain``).

The contract under test, in order of importance:

1. the counter totals agree exactly with :class:`TraversalStats` for both
   traversal engines (the recorder is a per-node *decomposition* of the
   stats, not an independent estimate);
2. the arrays are **bit-identical** across serial/threads/processes at
   workers {1, 2, 4} (fork/absorb in chunk order, integer ``np.add.at``);
3. forks pickle (process backend) and absorb exactly;
4. the profile layer — subtree rollups, dict round-trip, schema
   validation, counter-track export — is faithful to the arrays;
5. the Driver wires it end to end (``enable_attribution`` →
   ``IterationReport.attribution`` + ``attribution_profiles``), including
   per-partition cache-miss attribution.
"""

import json
import pickle

import numpy as np
import pytest

from repro.cache.stats import assign_fetch_groups, fetch_statistics, miss_attribution
from repro.cache.models import WAITFREE
from repro.core import Configuration
from repro.core.traverser import InteractionLists, get_traverser
from repro.decomp import SfcDecomposer, decompose
from repro.obs import (
    ATTR_SCHEMA,
    AttributionProfile,
    AttributionRecorder,
    format_chunk_heatmap,
    validate_attribution,
)
from repro.obs.attr import ARRAY_FIELDS, OPEN_COST_NS, PN_COST_NS, PP_COST_NS
from repro.particles.generators import clustered_clumps, uniform_cube
from repro.trees import build_tree

from tests.harness.differential import (
    CountInRadiusVisitor,
    attribution_matrix,
)

ENGINES = ("per-bucket", "transposed")


@pytest.fixture(scope="module")
def small_tree():
    return build_tree(uniform_cube(500, seed=11), tree_type="oct", bucket_size=12)


@pytest.fixture(scope="module")
def clustered_tree():
    return build_tree(clustered_clumps(800, seed=5), tree_type="kd", bucket_size=10)


def _run_serial(tree, engine_name, radius=0.25):
    engine = get_traverser(engine_name)
    visitor = CountInRadiusVisitor(tree, radius)
    rec = AttributionRecorder(tree.n_nodes)
    stats = engine.traverse(tree, visitor, tree.leaf_indices, rec)
    return rec, stats


class TestRecorderCounters:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_totals_decompose_stats(self, small_tree, engine):
        rec, stats = _run_serial(small_tree, engine)
        assert int(rec.visits.sum()) == stats.opens
        assert int(rec.mac_accepts.sum()) == stats.node_interactions
        assert int(rec.leaf_hits.sum()) == stats.leaf_interactions
        assert int(rec.pn_pairs.sum()) == stats.pn_interactions
        assert int(rec.pp_pairs.sum()) == stats.pp_interactions

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bucket_side_mirrors_source_side(self, small_tree, engine):
        rec, _ = _run_serial(small_tree, engine)
        assert int(rec.bucket_pn.sum()) == int(rec.pn_pairs.sum())
        assert int(rec.bucket_pp.sum()) == int(rec.pp_pairs.sum())
        # bucket_visits counts (source, target) MAC tests from the target
        # side; the source side counts the same pairs
        assert int(rec.bucket_visits.sum()) == int(rec.visits.sum())
        # bucket-side arrays only touch leaves
        leaves = set(small_tree.leaf_indices.tolist())
        nonzero = set(np.nonzero(rec.bucket_visits)[0].tolist())
        assert nonzero <= leaves

    def test_engines_attribute_identically(self, small_tree):
        """Per-node attribution is engine-invariant: both engines evaluate
        the same (source node, target bucket) pairs, just batched along
        different axes."""
        a, _ = _run_serial(small_tree, "per-bucket")
        b, _ = _run_serial(small_tree, "transposed")
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_derived_arrays(self, small_tree):
        rec, _ = _run_serial(small_tree, "transposed")
        rejects = rec.mac_rejects()
        assert np.array_equal(rejects + rec.mac_accepts, rec.visits)
        assert (rejects >= 0).all()
        cost = rec.cost_ns()
        assert cost.dtype == np.int64
        expected = (OPEN_COST_NS * rec.visits + PN_COST_NS * rec.pn_pairs
                    + PP_COST_NS * rec.pp_pairs)
        assert np.array_equal(cost, expected)
        assert cost.sum() > 0

    def test_fork_absorb_exact(self, small_tree):
        whole, _ = _run_serial(small_tree, "transposed")
        # run the same traversal split over two target halves via forks
        engine = get_traverser("transposed")
        parent = AttributionRecorder(small_tree.n_nodes)
        leaves = small_tree.leaf_indices
        half = len(leaves) // 2
        for chunk in (leaves[:half], leaves[half:]):
            fork = parent.fork()
            visitor = CountInRadiusVisitor(small_tree, 0.25)
            engine.traverse(small_tree, visitor, chunk, fork)
            parent.absorb(fork)
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(parent, name), getattr(whole, name)), name

    def test_absorb_rejects_mismatched_tree(self):
        a, b = AttributionRecorder(8), AttributionRecorder(9)
        with pytest.raises(ValueError):
            a.absorb(b)

    def test_pickle_roundtrip_drops_counts_cache(self, small_tree):
        rec, _ = _run_serial(small_tree, "per-bucket")
        assert rec._counts is not None  # populated by the callbacks
        clone = pickle.loads(pickle.dumps(rec))
        assert clone._counts is None  # rebuilt lazily worker-side
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(clone, name), getattr(rec, name))
        # the clone keeps recording correctly after unpickling
        clone.on_leaf(small_tree, np.array([small_tree.leaf_indices[0]]),
                      np.array([small_tree.leaf_indices[0]]))
        assert clone.pp_pairs.sum() > rec.pp_pairs.sum()


class TestBackendBitIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matrix_small(self, small_tree, engine):
        base = attribution_matrix(
            small_tree, engine, lambda t: CountInRadiusVisitor(t, 0.25)
        )
        assert base.visits.sum() > 0

    def test_matrix_clustered_with_decomposition(self, clustered_tree):
        parts = SfcDecomposer().assign(clustered_tree.particles, 4)
        dec = decompose(clustered_tree, parts, n_subtrees=4)
        base = attribution_matrix(
            clustered_tree, "transposed",
            lambda t: CountInRadiusVisitor(t, 0.2),
            decomposition=dec,
        )
        assert base.pp_pairs.sum() > 0


class TestAttributionProfile:
    @pytest.fixture()
    def profile(self, small_tree):
        rec, _ = _run_serial(small_tree, "transposed")
        return AttributionProfile.from_recorder(rec, iteration=0)

    def test_totals_and_rollup(self, small_tree, profile):
        totals = profile.totals()
        assert totals["cost_ns"] == int(profile.arrays["cost_ns"].sum())
        rows = profile.subtree_rollup(small_tree, depth=2, top=5)
        assert 0 < len(rows) <= 5
        # rollup conserves cost: summing over *all* anchors equals the total
        all_rows = profile.subtree_rollup(small_tree, depth=2,
                                          top=small_tree.n_nodes)
        assert sum(r["cost_ns"] for r in all_rows) == totals["cost_ns"]
        # descending cost order, all anchors at/above the cutoff
        costs = [r["cost_ns"] for r in rows]
        assert costs == sorted(costs, reverse=True)
        assert all(r["level"] <= 2 for r in rows)

    def test_dict_roundtrip_and_validation(self, small_tree, profile):
        doc = profile.to_dict(small_tree, depth=3, top=4)
        assert doc["schema"] == ATTR_SCHEMA
        assert validate_attribution(doc) == []
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable
        back = AttributionProfile.from_dict(doc)
        for name, arr in profile.arrays.items():
            assert np.array_equal(back.arrays[name], arr), name

    def test_validation_catches_corruption(self, small_tree, profile):
        doc = profile.to_dict(small_tree)
        doc["arrays"]["visits"][0] += 1  # break accepts+rejects==visits
        assert validate_attribution(doc)
        assert validate_attribution({"schema": "bogus"})

    def test_merge_adds_exactly(self, small_tree):
        rec, _ = _run_serial(small_tree, "transposed")
        a = AttributionProfile.from_recorder(rec)
        b = AttributionProfile.from_recorder(rec)
        merged = AttributionProfile.from_recorder(rec).merge(b)
        assert np.array_equal(merged.arrays["visits"], 2 * a.arrays["visits"])

    def test_counter_events_are_valid_perfetto(self, small_tree, profile):
        from repro.obs import validate_chrome_trace

        events = profile.counter_events(ts=123.0, tree=small_tree)
        assert all(e["ph"] == "C" for e in events)
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_chunk_heatmap(self):
        chunks = [{"chunk": c, "lane": c % 2, "dur": 0.01 * (c + 1)}
                  for c in range(8)]
        art = format_chunk_heatmap(chunks)
        assert "8 chunks" in art and "lane   0" in art and "lane   1" in art
        assert format_chunk_heatmap([]).startswith("(no parallel")
        prof = AttributionProfile(n_nodes=4, arrays={}, chunks=chunks)
        imb = prof.chunk_imbalance()
        assert imb["n_chunks"] == 8 and imb["n_lanes"] == 2
        assert imb["chunk_max_over_mean"] > 1.0


class TestMissAttribution:
    def test_per_partition_rows_consistent_with_fetch_statistics(
            self, clustered_tree):
        parts = SfcDecomposer().assign(clustered_tree.particles, 4)
        dec = decompose(clustered_tree, parts, n_subtrees=8)
        lists = InteractionLists()
        engine = get_traverser("transposed")
        engine.traverse(clustered_tree, CountInRadiusVisitor(clustered_tree, 0.3),
                        clustered_tree.leaf_indices, lists)
        groups = assign_fetch_groups(clustered_tree, dec)
        attr = miss_attribution(clustered_tree, lists, dec, groups,
                                n_processes=4)
        fs = fetch_statistics(clustered_tree, lists, dec, groups,
                              n_processes=4, cache_model=WAITFREE)
        # partition-level rollup must agree with the process-level totals
        assert attr["total_remote_touches"] == int(fs.touches.sum())
        assert attr["total_bytes"] == pytest.approx(float(fs.bytes_in.sum()))
        assert attr["partitions"], "clustered run should touch remote data"
        touches = [r["touches"] for r in attr["partitions"]]
        assert touches == sorted(touches, reverse=True)
        assert sum(touches) == attr["total_remote_touches"]
        node_remote = np.asarray(attr["node_remote_touches"])
        assert int(node_remote.sum()) == attr["total_remote_touches"]
        # deterministic: same inputs, same dict
        again = miss_attribution(clustered_tree, lists, dec, groups,
                                 n_processes=4)
        assert again == attr

    def test_leaf_partition_on_decomposition(self, clustered_tree):
        parts = SfcDecomposer().assign(clustered_tree.particles, 4)
        dec = decompose(clustered_tree, parts, n_subtrees=4)
        lp = dec.leaf_partition()
        assert lp.shape == (clustered_tree.n_nodes,)
        leaves = clustered_tree.leaf_indices
        assert (lp[leaves] >= 0).all() and (lp[leaves] < 4).all()


class _AttrGravity:
    """Driver-pipeline integration: tiny gravity run with attribution."""

    @staticmethod
    def make(n=400, iterations=1, backend=None, workers=2):
        from repro.apps.gravity import GravityDriver

        p = clustered_clumps(n, seed=3)

        class Main(GravityDriver):
            def create_particles(self, config):
                return p

        driver = Main(Configuration(num_iterations=iterations,
                                    bucket_size=16, num_partitions=4,
                                    num_subtrees=4), theta=0.7)
        driver.enable_attribution()
        if backend:
            driver.enable_parallel(backend, workers=workers)
        return driver


class TestDriverIntegration:
    def test_reports_and_profiles(self):
        driver = _AttrGravity.make(iterations=2)
        try:
            reports = driver.run()
        finally:
            driver.disable_parallel()
        assert len(driver.attribution_profiles) == 2
        for rep, prof in zip(reports, driver.attribution_profiles):
            assert rep.attribution is not None
            assert rep.attribution["totals"]["visits"] > 0
            assert rep.attribution["top_subtrees"]
            assert rep.attribution["cache"]["total_remote_touches"] >= 0
            assert rep.attribution == json.loads(json.dumps(rep.to_dict()))["attribution"]
            assert prof.cache is not None
            # the full per-node array backs the report's totals
            assert prof.totals()["visits"] == rep.attribution["totals"]["visits"]
        # lists retained for the explain DES replay
        assert driver.last_interaction_lists is not None
        assert driver.last_interaction_lists.visited

    def test_parallel_matches_serial_driver(self):
        serial = _AttrGravity.make()
        try:
            serial.run()
        finally:
            serial.disable_parallel()
        threaded = _AttrGravity.make(backend="threads", workers=2)
        try:
            threaded.run()
        finally:
            threaded.disable_parallel()
        a = serial.attribution_profiles[0]
        b = threaded.attribution_profiles[0]
        for name in a.arrays:
            assert np.array_equal(a.arrays[name], b.arrays[name]), name
        # parallel run collected chunk samples for the heatmap
        assert b.chunks and b.chunk_imbalance()["n_chunks"] >= 1

    def test_disabled_mode_records_nothing(self):
        driver = _AttrGravity.make()
        driver.enable_attribution(False)
        try:
            reports = driver.run()
        finally:
            driver.disable_parallel()
        assert driver.attribution_profiles == []
        assert reports[0].attribution is None
