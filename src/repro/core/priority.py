"""Priority-driven traversal (paper §II-A-2).

"Users may implement their own traversal types using the Traverser
interface, such as a priority-driven traversal for ray tracing."

This built-in implements that suggestion: instead of depth-first order,
nodes are expanded best-first from a heap keyed by a visitor-supplied
priority (smaller = sooner).  Visitors that tighten a cut-off as results
arrive (first-hit ray queries, nearest-object searches) terminate much
earlier under this order, because the most promising subtrees are examined
before the long tail is ever touched.

Visitors drive it through two extra hooks:

* ``priority(tree, source, target) -> float`` — expansion key (e.g. the
  ray-entry distance of the node's box);
* ``done(target)`` — consulted between expansions; True stops the target's
  traversal (e.g. a confirmed hit closer than everything still queued).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..trees import Tree
from .traverser import Recorder, TraversalStats, Traverser, register_traverser
from .visitor import Visitor

__all__ = ["PriorityTraverser"]


class PriorityTraverser(Traverser):
    name = "priority"

    def _traverse(
        self,
        tree: Tree,
        visitor: Visitor,
        targets: np.ndarray | None = None,
        recorder: Recorder | None = None,
    ) -> TraversalStats:
        targets = self._resolve_targets(tree, targets)
        stats = TraversalStats(targets=len(targets))
        first_child = tree.first_child
        n_children = tree.n_children
        counts = tree.pend - tree.pstart
        priority_fn = getattr(visitor, "priority", None)
        if priority_fn is None:
            raise TypeError(
                "priority traversal needs a visitor with a "
                "priority(tree, source, target) method"
            )

        for tgt in targets:
            tgt = int(tgt)
            tgt_count = int(counts[tgt])
            heap: list[tuple[float, int]] = [
                (float(priority_fn(tree, tree.root, tgt)), tree.root)
            ]
            while heap:
                if visitor.done(tree.node(tgt)):
                    break
                _, src = heapq.heappop(heap)
                stats.nodes_visited += 1
                stats.opens += 1
                if recorder is not None:
                    recorder.on_open(tree, np.array([src]), np.array([tgt]))
                if not visitor.open(tree.node(src), tree.node(tgt)):
                    stats.node_interactions += 1
                    stats.pn_interactions += tgt_count
                    if recorder is not None:
                        recorder.on_node(tree, np.array([src]), np.array([tgt]))
                    visitor.node(tree.node(src), tree.node(tgt))
                    continue
                if first_child[src] == -1:
                    stats.leaf_interactions += 1
                    stats.pp_interactions += int(counts[src]) * tgt_count
                    if recorder is not None:
                        recorder.on_leaf(tree, np.array([src]), np.array([tgt]))
                    visitor.leaf(tree.node(src), tree.node(tgt))
                    continue
                fc = int(first_child[src])
                for c in range(fc, fc + int(n_children[src])):
                    # ties break on the node index (second tuple element).
                    heapq.heappush(heap, (float(priority_fn(tree, c, tgt)), c))
        return stats


register_traverser(PriorityTraverser.name, PriorityTraverser)
