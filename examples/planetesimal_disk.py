"""Planet-forming disk case study (paper §IV), runnable at laptop scale.

A planetesimal disk with an embedded Jupiter-mass planet is evolved with
gravity + collision detection on the longest-dimension tree (the paper's
custom tree type for flat disks).  Planetesimal radii are inflated relative
to the paper's 50 km so a short run produces a usable collision sample; the
resulting profile is binned against the 3:1 / 2:1 / 5:3 resonance locations
as in Fig 12.

Run:  python examples/planetesimal_disk.py
"""

import numpy as np

from repro.apps.collision import (
    RESONANCES,
    PlanetesimalDriver,
    resonance_semi_major_axis,
)
from repro.core import Configuration
from repro.particles import DiskParams, keplerian_disk
from repro.trees import TreeType


class DiskMain(PlanetesimalDriver):
    def configure(self, conf: Configuration) -> None:
        conf.num_iterations = 60
        conf.tree_type = TreeType.LONGEST_DIM   # §IV-B's disk-friendly tree
        conf.decomp_type = "longest"
        conf.bucket_size = 16
        conf.num_partitions = 16
        conf.num_subtrees = 16

    def create_particles(self, config: Configuration):
        params = DiskParams(
            planetesimal_radius=2.5e-3,       # inflated for statistics
            eccentricity_dispersion=0.015,
        )
        return keplerian_disk(6000, params=params, seed=42)


def main() -> None:
    driver = DiskMain(dt=0.02, merge=False)
    print("evolving 6k-planetesimal disk + Jupiter for 60 steps (1.2 yr)...")
    driver.run()

    log = driver.log.as_arrays()
    print(f"\ncollisions recorded: {len(driver.log)}")
    if len(driver.log) == 0:
        print("(increase radii or steps for more statistics)")
        return

    # Fig 12-style profile: collision counts vs heliocentric distance.
    edges = np.linspace(2.0, 4.2, 23)
    hist, _ = np.histogram(log["distance"], bins=edges)
    peak = hist.max()
    print("\ncollision profile (distance from star, AU):")
    for lo, hi, count in zip(edges[:-1], edges[1:], hist):
        bar = "#" * int(30 * count / max(peak, 1))
        print(f"  {lo:4.2f}-{hi:4.2f}  {count:4d} {bar}")

    print("\nresonance locations (vertical dashed lines in Fig 12):")
    for p, q in RESONANCES:
        a_res = resonance_semi_major_axis(5.2, p, q)
        near = np.abs(log["a"] - a_res) < 0.1
        print(f"  {p}:{q} at a = {a_res:.2f} AU — {near.sum()} collisions within 0.1 AU")

    ecc = log["e"][np.isfinite(log["e"])]
    print(f"\neccentricity of colliding bodies: median {np.median(ecc):.4f} "
          f"(disk initial dispersion was 0.015)")


if __name__ == "__main__":
    main()
