"""Particle snapshot I/O.

Snapshots are stored as ``.npz`` archives with one entry per field.  This is
the stand-in for the paper's tipsy-format cosmological inputs: the framework
only needs *some* deterministic on-disk format so runs are reproducible and
examples can checkpoint/restart.
"""

from __future__ import annotations

import os

import numpy as np

from .particles import ParticleSet

__all__ = ["save_particles", "load_particles"]

_FORMAT_VERSION = 1


def save_particles(path: str | os.PathLike, particles: ParticleSet) -> None:
    """Write a ParticleSet to ``path`` (npz)."""
    payload = {f"field_{name}": particles[name] for name in particles.field_names}
    payload["__version__"] = np.int64(_FORMAT_VERSION)
    np.savez_compressed(path, **payload)


def load_particles(path: str | os.PathLike) -> ParticleSet:
    """Read a ParticleSet written by :func:`save_particles`."""
    with np.load(path) as data:
        version = int(data["__version__"]) if "__version__" in data else 0
        if version > _FORMAT_VERSION:
            raise ValueError(f"snapshot version {version} is newer than supported")
        fields = {
            name[len("field_"):]: data[name]
            for name in data.files
            if name.startswith("field_")
        }
    if "position" not in fields:
        raise ValueError(f"{path}: not a particle snapshot (missing position)")
    core = {
        "position": fields.pop("position"),
        "velocity": fields.pop("velocity", None),
        "mass": fields.pop("mass", None),
    }
    orig_index = fields.pop("orig_index", None)
    out = ParticleSet(**core, **fields)
    if orig_index is not None:
        out._fields["orig_index"] = np.asarray(orig_index, dtype=np.int64)
    return out
