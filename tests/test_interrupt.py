"""Graceful interrupts: SIGTERM/SIGINT become :class:`RunInterrupted`,
the driver writes a final checkpoint, and the interrupted run resumes
bit-identically.  Signals are raised *in-process* from a driver hook
(``signal.raise_signal``), so these tests are deterministic — no child
processes, no timing races.
"""

import signal

import numpy as np
import pytest

from repro.apps.gravity import GravityDriver
from repro.core import Configuration
from repro.resilience import (
    RunInterrupted,
    graceful_interrupts,
    latest_checkpoint,
    load_checkpoint,
)
from repro.particles import clustered_clumps


def _driver(n=300, iterations=4, interrupt_after=None,
            sig=signal.SIGTERM, seed=3):
    p = clustered_clumps(n, seed=seed)

    class Main(GravityDriver):
        def create_particles(self, config):
            return p.copy()

        def traversal(self, iteration):
            # fire before this iteration mutates any state: the final
            # checkpoint then holds exactly `interrupt_after` completed
            # iterations and the resumed run replays this one from scratch
            if interrupt_after is not None and iteration == interrupt_after:
                signal.raise_signal(sig)
            super().traversal(iteration)

    cfg = Configuration(num_iterations=iterations, num_partitions=4,
                        num_subtrees=4)
    return Main(cfg, theta=0.7, softening=1e-3, dt=1e-3)


class TestGracefulInterrupts:
    def test_sigterm_becomes_run_interrupted(self):
        with pytest.raises(RunInterrupted) as exc_info:
            with graceful_interrupts():
                signal.raise_signal(signal.SIGTERM)
        exc = exc_info.value
        assert exc.signal_name == "SIGTERM"
        assert exc.exit_code == 143              # 128 + SIGTERM
        assert isinstance(exc, BaseException)
        assert not isinstance(exc, Exception)    # survives `except Exception`

    def test_sigint_exit_code(self):
        with pytest.raises(RunInterrupted) as exc_info:
            with graceful_interrupts():
                signal.raise_signal(signal.SIGINT)
        assert exc_info.value.exit_code == 130

    def test_previous_handlers_restored(self):
        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        with graceful_interrupts():
            assert signal.getsignal(signal.SIGTERM) is not before_term
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int

    def test_no_signal_no_interference(self):
        with graceful_interrupts():
            result = sum(range(10))
        assert result == 45


class TestInterruptedDriver:
    def test_interrupt_mid_run_then_resume_bit_identical(self, tmp_path):
        """SIGTERM at iteration 2 of 4 -> RunInterrupted; the final
        checkpoint makes the run resumable, and the resumed run matches
        the uninterrupted baseline field-for-field."""
        baseline = _driver()
        baseline.run()

        interrupted = _driver(interrupt_after=2)
        interrupted.enable_checkpointing(tmp_path, every=10)  # interval
        # never fires on its own: only the final checkpoint writes
        with pytest.raises(RunInterrupted) as exc_info:
            with graceful_interrupts():
                interrupted.run()
        assert exc_info.value.exit_code == 143
        assert len(interrupted.reports) == 2     # iters 1..2 completed

        path = interrupted.write_final_checkpoint()
        assert path is not None
        ckpt = load_checkpoint(path)
        assert ckpt.iteration == 2
        assert str(latest_checkpoint(tmp_path)) == str(path)

        resumed = _driver()
        resumed.run(resume_from=ckpt)
        for name in baseline.particles.field_names:
            np.testing.assert_array_equal(baseline.particles[name],
                                          resumed.particles[name])
        np.testing.assert_array_equal(baseline.accelerations,
                                      resumed.accelerations)

    def test_final_checkpoint_noop_without_checkpointing(self):
        driver = _driver(iterations=1)
        driver.run()
        assert driver.write_final_checkpoint() is None

    def test_final_checkpoint_noop_before_first_iteration(self, tmp_path):
        driver = _driver(iterations=2)
        driver.enable_checkpointing(tmp_path, every=1)
        assert driver.write_final_checkpoint() is None   # nothing completed


class TestCLIGuardedRun:
    def test_cli_returns_143_and_writes_checkpoint(self, tmp_path, capsys,
                                                   monkeypatch):
        """`repro gravity` interrupted by SIGTERM exits 143, reports the
        checkpoint on stderr, and the checkpoint is loadable."""
        from repro.__main__ import main
        from repro.core.driver import Driver

        original = Driver.run

        def run_then_term(self, resume_from=None):
            hooked = self.traversal

            def traversal(iteration):
                if iteration == 1:
                    signal.raise_signal(signal.SIGTERM)
                hooked(iteration)
            self.traversal = traversal
            return original(self, resume_from=resume_from)

        monkeypatch.setattr(Driver, "run", run_then_term)
        rc = main(["gravity", "--n", "200", "--iterations", "3",
                   "--checkpoint-dir", str(tmp_path / "ck"),
                   "--checkpoint-every", "10"])
        assert rc == 143
        err = capsys.readouterr().err
        assert "interrupted by SIGTERM after 1 completed iteration(s)" in err
        assert "repro resume" in err
        ckpt = load_checkpoint(latest_checkpoint(tmp_path / "ck"))
        assert ckpt.iteration == 1
