"""kNN and ball-search correctness against brute force."""

import numpy as np
import pytest

from repro.apps.knn import (
    BallSearchVisitor,
    KNNVisitor,
    ball_search,
    brute_force_ball,
    brute_force_knn,
    knn_search,
)
from repro.particles import ParticleSet, clustered_clumps, uniform_cube
from repro.trees import build_tree


@pytest.fixture(scope="module", params=["oct", "kd"])
def tree(request):
    return build_tree(clustered_clumps(900, seed=8), tree_type=request.param, bucket_size=10)


class TestKNN:
    def test_matches_brute_force_distances(self, tree):
        res = knn_search(tree, k=6)
        bf_d, _ = brute_force_knn(tree.particles.position, 6)
        assert np.allclose(res.dist_sq, bf_d)

    def test_indices_valid_under_ties(self, tree):
        """Indices must reproduce their own distances."""
        res = knn_search(tree, k=6)
        pos = tree.particles.position
        for i in range(0, tree.n_particles, 97):
            d = np.linalg.norm(pos[res.index[i]] - pos[i], axis=1) ** 2
            assert np.allclose(np.sort(d), res.dist_sq[i])

    def test_rows_sorted(self, tree):
        res = knn_search(tree, k=5)
        assert np.all(np.diff(res.dist_sq, axis=1) >= 0)

    def test_excludes_self(self, tree):
        res = knn_search(tree, k=4)
        rows = np.arange(tree.n_particles)[:, None]
        assert not np.any(res.index == rows)

    def test_k_bounds(self, tree):
        with pytest.raises(ValueError):
            KNNVisitor(tree, 0)
        with pytest.raises(ValueError):
            KNNVisitor(tree, tree.n_particles)

    def test_k1_is_nearest_neighbor(self, tree):
        res = knn_search(tree, k=1)
        bf_d, _ = brute_force_knn(tree.particles.position, 1)
        assert np.allclose(res.dist_sq, bf_d)

    def test_coincident_particles(self):
        """Exact duplicates are legitimate zero-distance neighbours."""
        pos = np.vstack([np.zeros((3, 3)), np.ones((3, 3))])
        tree = build_tree(ParticleSet(pos), tree_type="kd", bucket_size=2)
        res = knn_search(tree, k=2)
        assert np.allclose(res.dist_sq[:, 0], 0.0)

    def test_pruning_is_effective(self):
        """The up-and-down kNN must prune: far fewer pp interactions than
        the all-pairs N²."""
        p = uniform_cube(2000, seed=9)
        t = build_tree(p, tree_type="kd", bucket_size=16)
        res = knn_search(t, k=8)
        assert res.stats.pp_interactions < 0.25 * 2000 * 2000

    def test_targets_subset(self, tree):
        leaves = tree.leaf_indices[:3]
        res = knn_search(tree, k=4, targets=leaves)
        bf_d, _ = brute_force_knn(tree.particles.position, 4)
        for leaf in leaves:
            s, e = tree.pstart[leaf], tree.pend[leaf]
            assert np.allclose(res.dist_sq[s:e], bf_d[s:e])


class TestBallSearch:
    def test_matches_brute_force(self, tree):
        lists, _ = ball_search(tree, 0.11)
        expect = brute_force_ball(tree.particles.position, 0.11)
        for got, want in zip(lists, expect):
            assert set(got.tolist()) == set(want.tolist())

    def test_per_particle_radii(self, tree):
        rng = np.random.default_rng(0)
        radii = rng.uniform(0.02, 0.2, tree.n_particles)
        lists, _ = ball_search(tree, radii)
        expect = brute_force_ball(tree.particles.position, radii)
        for got, want in zip(lists, expect):
            assert set(got.tolist()) == set(want.tolist())

    def test_include_self(self, tree):
        lists, _ = ball_search(tree, 0.05, include_self=True)
        for i, nbrs in enumerate(lists[:50]):
            assert i in nbrs

    def test_zero_radius_finds_only_coincident(self, tree):
        lists, _ = ball_search(tree, 0.0)
        # random clustered data: no exact duplicates
        assert all(len(l) == 0 for l in lists)

    def test_radii_validation(self, tree):
        with pytest.raises(ValueError):
            BallSearchVisitor(tree, -np.ones(tree.n_particles))
        with pytest.raises(ValueError):
            BallSearchVisitor(tree, np.ones(3))

    def test_symmetry(self, tree):
        """Uniform radius: i in N(j) iff j in N(i)."""
        lists, _ = ball_search(tree, 0.09)
        sets = [set(l.tolist()) for l in lists]
        for i in range(0, tree.n_particles, 53):
            for j in sets[i]:
                assert i in sets[j]
