"""Wire protocol for the online traversal query service.

Queries and responses travel as one JSON object per line (JSONL) over a
Unix or TCP socket, and as plain dataclasses through the in-process
client used by tests and the DES model.  The schema is versioned so a
client can detect a server from a different build.

A query names an operation over the resident tree:

``knn``      k nearest particles to an arbitrary point
``range``    particles within ``radius`` of a point
``density``  SPH-style kNN density estimate at a point

Responses carry a ``status``:

``ok``       executed; ``result`` holds the answer
``shed``     rejected by admission control; ``retry_after`` says when to
             come back (the 429 + Retry-After idiom)
``expired``  admitted but its deadline passed before dispatch
``error``    malformed query or execution failure
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

SERVE_SCHEMA = "repro.serve/1"

OPS = ("knn", "range", "density")

STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_EXPIRED = "expired"
STATUS_ERROR = "error"

#: shed reasons, in the order admission control evaluates them
SHED_DRAINING = "draining"
SHED_QUEUE = "queue-full"
SHED_SLO = "slo-burn"
SHED_RATE = "rate-limit"
SHED_REASONS = (SHED_DRAINING, SHED_QUEUE, SHED_SLO, SHED_RATE)


class ProtocolError(ValueError):
    """A line that does not decode into a valid query."""


@dataclass
class Query:
    """One client request.

    ``deadline`` is a relative budget in seconds counted from arrival;
    work still queued when it elapses is dropped before execution.
    ``t`` is an optional *scheduled* arrival offset (seconds from stream
    start).  When present, admission control consumes ``t`` instead of
    the wall clock, which makes rate-limit decisions a pure function of
    the traffic trace — the property the DES validation relies on.

    ``t`` is only honoured for trusted in-process submitters (bench,
    DES, tests).  The socket front-end strips it on decode: an attacker
    carrying a huge ``t`` would otherwise advance the token bucket's
    clock far into the future and starve every honest client.
    """

    id: str
    op: str
    point: np.ndarray
    k: int = 8
    radius: float = 0.1
    deadline: float | None = None
    t: float | None = None

    def validate(self, n_particles: int, max_k: int) -> str | None:
        """Return an error string, or None when the query is executable."""
        if self.op not in OPS:
            return f"unknown op {self.op!r} (expected one of {', '.join(OPS)})"
        if self.point.shape != (3,) or not np.all(np.isfinite(self.point)):
            return "point must be 3 finite coordinates"
        if self.op in ("knn", "density"):
            if not 1 <= self.k <= min(n_particles, max_k):
                return (f"k={self.k} out of range [1, "
                        f"{min(n_particles, max_k)}]")
        if self.op == "range" and not (np.isfinite(self.radius) and self.radius >= 0):
            return f"radius must be finite and >= 0, got {self.radius}"
        return None

    def to_wire(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": self.id, "op": self.op,
            "point": [float(c) for c in self.point],
        }
        if self.op in ("knn", "density"):
            doc["k"] = int(self.k)
        if self.op == "range":
            doc["radius"] = float(self.radius)
        if self.deadline is not None:
            doc["deadline"] = float(self.deadline)
        if self.t is not None:
            doc["t"] = float(self.t)
        return doc

    @classmethod
    def from_wire(cls, doc: dict[str, Any]) -> "Query":
        if not isinstance(doc, dict):
            raise ProtocolError("query must be a JSON object")
        try:
            point = np.asarray(doc["point"], dtype=np.float64)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad point: {exc}") from exc
        if point.shape != (3,):
            raise ProtocolError(f"point must have 3 coordinates, got shape {point.shape}")
        try:
            return cls(
                id=str(doc.get("id", "")),
                op=str(doc.get("op", "")),
                point=point,
                k=int(doc.get("k", 8)),
                radius=float(doc.get("radius", 0.1)),
                deadline=None if doc.get("deadline") is None else float(doc["deadline"]),
                t=None if doc.get("t") is None else float(doc["t"]),
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad query field: {exc}") from exc


@dataclass
class Response:
    """Server reply for one query."""

    id: str
    status: str
    result: dict[str, Any] | None = None
    reason: str | None = None
    retry_after: float | None = None
    error: str | None = None
    queue_s: float | None = None
    service_s: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_wire(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"schema": SERVE_SCHEMA, "id": self.id,
                               "status": self.status}
        for key in ("result", "reason", "retry_after", "error",
                    "queue_s", "service_s"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        if self.meta:
            doc["meta"] = self.meta
        return doc

    @classmethod
    def from_wire(cls, doc: dict[str, Any]) -> "Response":
        return cls(
            id=str(doc.get("id", "")),
            status=str(doc.get("status", STATUS_ERROR)),
            result=doc.get("result"),
            reason=doc.get("reason"),
            retry_after=doc.get("retry_after"),
            error=doc.get("error"),
            queue_s=doc.get("queue_s"),
            service_s=doc.get("service_s"),
            meta=doc.get("meta") or {},
        )


def encode_line(doc: dict[str, Any]) -> bytes:
    """One compact JSON object, newline-terminated."""
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode()


def decode_query_line(line: bytes | str) -> Query:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    return Query.from_wire(doc)


def shed_response(query: Query, reason: str, retry_after: float | None) -> Response:
    return Response(id=query.id, status=STATUS_SHED, reason=reason,
                    retry_after=retry_after)


def expired_response(query: Query, waited: float | None = None) -> Response:
    return Response(id=query.id, status=STATUS_EXPIRED,
                    reason="deadline", queue_s=waited)


def error_response(query: Query, message: str) -> Response:
    return Response(id=query.id, status=STATUS_ERROR, error=message)
