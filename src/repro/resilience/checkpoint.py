"""Versioned, checksummed checkpoints of the full pipeline state.

A checkpoint freezes everything a :class:`~repro.core.driver.Driver` needs
to continue a run bit-identically: the particle arrays exactly as they are
(tree order, original dtypes), the pending load-balancer assignment, the
previous iteration's imbalance (which feeds the reactive flush check),
application state (accelerations, collision logs, ...), and the position of
every registered PRNG stream.  The on-disk format is a single ``.npz``
archive:

* ``part_<field>`` — one entry per particle field, dtype-preserving;
* ``pend_assignment`` — the carried-over LB assignment, when present;
* ``user_<name>`` — application state arrays from ``checkpoint_state()``;
* ``__meta__`` — a JSON document with the format version, the iteration
  index to resume at, the run :class:`~repro.core.config.Configuration`,
  PRNG stream states, the fault spec, and a CRC-32 per array entry
  (computed over raw bytes + dtype + shape), verified on load.

:func:`capture_run` / :func:`restore_run` are the driver-facing pair;
:class:`CheckpointWriter` adds interval policy (``every=K``) and rotation,
and mirrors each blob into an optional in-memory
:class:`~repro.resilience.buddy.BuddyStore` — the Charm++-style double
in-memory checkpoint that the DES recovery model charges for.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..particles import ParticleSet

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "Checkpoint",
    "array_checksum",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_to_bytes",
    "checkpoint_from_bytes",
    "capture_run",
    "restore_run",
    "latest_checkpoint",
    "CheckpointWriter",
]

CHECKPOINT_VERSION = 1

#: archive-entry prefixes
_PART = "part_"
_USER = "user_"
_PEND = "pend_assignment"
_META = "__meta__"


class CheckpointError(ValueError):
    """A checkpoint could not be written, read, or verified."""


def array_checksum(arr: np.ndarray) -> int:
    """CRC-32 over an array's raw bytes, dtype, and shape.

    The dtype/shape are folded in so a reinterpreted or resized array never
    passes as intact data even when its byte stream is unchanged.
    """
    arr = np.ascontiguousarray(arr)
    crc = zlib.crc32(arr.tobytes())
    crc = zlib.crc32(str(arr.dtype.str).encode(), crc)
    crc = zlib.crc32(repr(tuple(arr.shape)).encode(), crc)
    return crc & 0xFFFFFFFF


@dataclass
class Checkpoint:
    """One frozen pipeline state; ``iteration`` is the *next* iteration to
    run on resume (a checkpoint written after iteration ``k`` completes has
    ``iteration == k + 1``)."""

    iteration: int
    particle_fields: dict[str, np.ndarray]
    pending_assignment: np.ndarray | None = None
    user_state: dict[str, np.ndarray] = field(default_factory=dict)
    rng_states: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    app: str | None = None
    app_config: dict[str, Any] = field(default_factory=dict)
    fault_spec: str | None = None
    last_imbalance: float | None = None
    version: int = CHECKPOINT_VERSION

    @property
    def n_particles(self) -> int:
        return len(next(iter(self.particle_fields.values())))

    def particles(self) -> ParticleSet:
        """Reconstruct the ParticleSet dtype-for-dtype."""
        return ParticleSet.from_arrays(self.particle_fields)


def _entries(ckpt: Checkpoint) -> dict[str, np.ndarray]:
    entries: dict[str, np.ndarray] = {
        _PART + name: np.ascontiguousarray(arr)
        for name, arr in ckpt.particle_fields.items()
    }
    if ckpt.pending_assignment is not None:
        entries[_PEND] = np.ascontiguousarray(ckpt.pending_assignment)
    for name, arr in ckpt.user_state.items():
        entries[_USER + name] = np.ascontiguousarray(arr)
    return entries


def _meta_doc(ckpt: Checkpoint, entries: dict[str, np.ndarray]) -> dict[str, Any]:
    return {
        "version": int(ckpt.version),
        "iteration": int(ckpt.iteration),
        "app": ckpt.app,
        "app_config": ckpt.app_config,
        "config": ckpt.config,
        "rng_states": ckpt.rng_states,
        "fault_spec": ckpt.fault_spec,
        "last_imbalance": (
            None if ckpt.last_imbalance is None else float(ckpt.last_imbalance)
        ),
        "checksums": {name: array_checksum(arr) for name, arr in entries.items()},
    }


def _write(fh_or_path, ckpt: Checkpoint) -> None:
    entries = _entries(ckpt)
    meta = _meta_doc(ckpt, entries)
    np.savez_compressed(fh_or_path, __meta__=np.asarray(json.dumps(meta)), **entries)


def _read(fh_or_path, verify: bool, what: str) -> Checkpoint:
    try:
        with np.load(fh_or_path, allow_pickle=False) as data:
            if _META not in data.files:
                raise CheckpointError(f"{what}: not a checkpoint (missing {_META})")
            try:
                meta = json.loads(str(data[_META][()]))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise CheckpointError(f"{what}: corrupt metadata ({exc})") from exc
            version = int(meta.get("version", -1))
            if version > CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"{what}: checkpoint version {version} is newer than "
                    f"supported ({CHECKPOINT_VERSION})"
                )
            arrays = {name: data[name] for name in data.files if name != _META}
    except CheckpointError:
        raise
    except Exception as exc:
        # zipfile.BadZipFile, OSError, EOFError, ValueError from a short
        # read, KeyError from a member truncated out of the directory, ...
        raise CheckpointError(f"{what}: unreadable checkpoint archive ({exc})") from exc

    if verify:
        recorded = meta.get("checksums", {})
        missing = sorted(set(recorded) - set(arrays))
        if missing:
            raise CheckpointError(f"{what}: truncated checkpoint, missing {missing}")
        for name, arr in sorted(arrays.items()):
            want = recorded.get(name)
            if want is None:
                raise CheckpointError(f"{what}: entry {name!r} has no checksum")
            got = array_checksum(arr)
            if got != int(want):
                raise CheckpointError(
                    f"{what}: checksum mismatch on {name!r} "
                    f"(recorded {int(want):#010x}, computed {got:#010x})"
                )

    particle_fields = {
        name[len(_PART):]: arr for name, arr in arrays.items()
        if name.startswith(_PART)
    }
    if "position" not in particle_fields:
        raise CheckpointError(f"{what}: checkpoint has no particle positions")
    user_state = {
        name[len(_USER):]: arr for name, arr in arrays.items()
        if name.startswith(_USER)
    }
    return Checkpoint(
        iteration=int(meta["iteration"]),
        particle_fields=particle_fields,
        pending_assignment=arrays.get(_PEND),
        user_state=user_state,
        rng_states=meta.get("rng_states", {}),
        config=meta.get("config", {}),
        app=meta.get("app"),
        app_config=meta.get("app_config", {}),
        fault_spec=meta.get("fault_spec"),
        last_imbalance=meta.get("last_imbalance"),
        version=version,
    )


def save_checkpoint(path: str | os.PathLike, ckpt: Checkpoint) -> None:
    """Write ``ckpt`` to ``path`` (npz with checksummed entries)."""
    _write(os.fspath(path), ckpt)


def load_checkpoint(path: str | os.PathLike, verify: bool = True) -> Checkpoint:
    """Read a checkpoint, verifying every entry's CRC-32 unless ``verify``
    is False.  Raises :class:`CheckpointError` on truncation, corruption,
    or version mismatch."""
    return _read(os.fspath(path), verify, what=os.fspath(path))


def checkpoint_to_bytes(ckpt: Checkpoint) -> bytes:
    """Serialize to an in-memory blob (the buddy-copy payload)."""
    buf = io.BytesIO()
    _write(buf, ckpt)
    return buf.getvalue()


def checkpoint_from_bytes(blob: bytes, verify: bool = True) -> Checkpoint:
    """Deserialize a blob produced by :func:`checkpoint_to_bytes`."""
    return _read(io.BytesIO(blob), verify, what="<memory>")


# -- driver integration -------------------------------------------------------

def capture_run(
    driver,
    next_iteration: int,
    app: str | None = None,
    app_config: dict[str, Any] | None = None,
) -> Checkpoint:
    """Freeze a driver's current state into a :class:`Checkpoint`.

    Captures the particle arrays verbatim (current — usually tree — order),
    the pending LB assignment, the registered PRNG stream states, the
    application's ``checkpoint_state()`` arrays, and enough configuration
    to rebuild the driver via :mod:`repro.resilience.resume`.
    """
    if driver.particles is None:
        raise CheckpointError("driver has no particles to checkpoint")
    particles = driver.particles
    fields = {name: np.array(particles[name], copy=True)
              for name in particles.field_names}
    user_state = {
        name: np.array(np.asarray(arr), copy=True)
        for name, arr in driver.checkpoint_state().items()
    }
    rng_states = {
        name: gen.bit_generator.state
        for name, gen in getattr(driver, "_rngs", {}).items()
    }
    pending = driver._pending_assignment
    if driver.reports:
        last_imbalance = float(driver.reports[-1].imbalance)
    else:
        last_imbalance = getattr(driver, "_resumed_imbalance", None)
    fault_plan = getattr(driver, "fault_plan", None)
    return Checkpoint(
        iteration=int(next_iteration),
        particle_fields=fields,
        pending_assignment=None if pending is None else np.array(pending, copy=True),
        user_state=user_state,
        rng_states=rng_states,
        config=driver.config.to_dict(),
        app=app,
        app_config=dict(app_config or {}),
        fault_spec=fault_plan.describe() if fault_plan is not None else None,
        last_imbalance=last_imbalance,
    )


#: configuration keys a resume may legitimately change.  ``tree_builder``
#: qualifies because the linear and recursive builders produce
#: byte-identical trees (pinned by tests/test_linear_tree.py), so switching
#: builders mid-run cannot diverge the physics.
_RESUMABLE_KEYS = {"num_iterations", "input_file", "tree_builder"}


def restore_run(
    driver,
    source: "Checkpoint | str | os.PathLike",
    strict_config: bool = True,
) -> int:
    """Load ``source`` into ``driver`` and return the iteration to resume
    at.  With ``strict_config`` (the default) every configuration knob that
    affects the physics must match the checkpoint — resuming under a
    different tree type or partition count would silently diverge from the
    uninterrupted baseline, which defeats the bit-identity guarantee."""
    ckpt = source if isinstance(source, Checkpoint) else load_checkpoint(source)
    if strict_config and ckpt.config:
        current = driver.config.to_dict()
        mismatched = {
            key: (val, current.get(key))
            for key, val in ckpt.config.items()
            if key not in _RESUMABLE_KEYS and current.get(key) != val
        }
        if mismatched:
            detail = ", ".join(
                f"{k}: checkpoint={a!r} run={b!r}" for k, (a, b) in sorted(mismatched.items())
            )
            raise CheckpointError(f"configuration mismatch on resume: {detail}")
    driver.particles = ckpt.particles()
    driver.tree = None
    driver.decomposition = None
    driver._pending_assignment = (
        None if ckpt.pending_assignment is None
        else np.array(ckpt.pending_assignment, copy=True)
    )
    driver._resumed_imbalance = ckpt.last_imbalance
    for name, state in ckpt.rng_states.items():
        gen = getattr(driver, "_rngs", {}).get(name)
        if gen is not None:
            gen.bit_generator.state = state
    driver.restore_state({k: np.array(v, copy=True) for k, v in ckpt.user_state.items()})
    return ckpt.iteration


# -- interval policy + rotation ----------------------------------------------

def _checkpoint_name(next_iteration: int) -> str:
    return f"ckpt_{next_iteration:06d}.npz"


def latest_checkpoint(directory: str | os.PathLike) -> str | None:
    """Path of the highest-iteration ``ckpt_*.npz`` in ``directory``."""
    d = Path(directory)
    if not d.is_dir():
        return None
    candidates = sorted(d.glob("ckpt_*.npz"))
    return str(candidates[-1]) if candidates else None


class CheckpointWriter:
    """Writes a checkpoint every ``every`` completed iterations, keeping the
    newest ``keep`` files, and mirroring each blob into an optional buddy
    store (the in-memory double checkpoint)."""

    def __init__(
        self,
        directory: str | os.PathLike,
        every: int = 1,
        keep: int = 2,
        app: str | None = None,
        app_config: dict[str, Any] | None = None,
        buddy=None,
        rank: int = 0,
    ) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = Path(directory)
        self.every = int(every)
        self.keep = int(keep)
        self.app = app
        self.app_config = dict(app_config or {})
        self.buddy = buddy
        self.rank = int(rank)
        self.written: list[str] = []

    def maybe_write(self, driver, iteration: int) -> str | None:
        """Checkpoint after iteration ``iteration`` when the interval says
        so; returns the path written (or None)."""
        if (iteration + 1) % self.every != 0:
            return None
        return self.write(driver, iteration)

    def write(self, driver, iteration: int) -> str:
        """Unconditionally checkpoint the state after iteration
        ``iteration`` (the file is named for the *next* iteration)."""
        ckpt = capture_run(
            driver, next_iteration=iteration + 1,
            app=self.app, app_config=self.app_config,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / _checkpoint_name(ckpt.iteration)
        save_checkpoint(path, ckpt)
        if self.buddy is not None:
            self.buddy.commit(self.rank, checkpoint_to_bytes(ckpt))
        self.written.append(str(path))
        self._rotate()
        from ..obs import get_telemetry

        get_telemetry().flight.record(
            "checkpoint.commit", iteration=ckpt.iteration, path=str(path),
            buddy=self.buddy is not None,
        )
        return str(path)

    def _rotate(self) -> None:
        while len(self.written) > self.keep:
            stale = self.written.pop(0)
            try:
                os.remove(stale)
            except OSError:
                pass
