"""Benchmark-harness utilities: table formatting, workload construction,
and the paper's reference numbers for side-by-side printing."""

from .tables import format_series, format_table, print_banner
from .workloads import (
    GravityWorkload,
    build_gravity_workload,
    build_sph_workloads,
)
from . import paper_reference

__all__ = [
    "format_table",
    "format_series",
    "print_banner",
    "GravityWorkload",
    "build_gravity_workload",
    "build_sph_workloads",
    "paper_reference",
]
