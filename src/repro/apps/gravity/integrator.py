"""Time integration: leapfrog (kick-drift-kick) for N-body evolution.

The traversal frameworks in the paper recompute forces each iteration; the
integrator is the ``postTraversal`` physics that consumes them.
"""

from __future__ import annotations

import numpy as np

from ...particles import ParticleSet

__all__ = ["kick", "drift", "kick_drift_kick_half", "LeapfrogIntegrator"]


def kick(particles: ParticleSet, accel: np.ndarray, dt: float) -> None:
    """v += a dt (in place)."""
    particles.velocity += accel * dt


def drift(particles: ParticleSet, dt: float) -> None:
    """x += v dt (in place)."""
    particles.position += particles.velocity * dt


def kick_drift_kick_half(particles: ParticleSet, accel: np.ndarray, dt: float) -> None:
    """One KDK step given accelerations at the step start.

    Standard leapfrog splitting: half-kick, full drift; the closing
    half-kick belongs to the *next* force evaluation, so callers doing
    multi-step evolution should use :class:`LeapfrogIntegrator`, which keeps
    the intermediate state.
    """
    kick(particles, accel, 0.5 * dt)
    drift(particles, dt)
    kick(particles, accel, 0.5 * dt)


class LeapfrogIntegrator:
    """Stateful KDK leapfrog: symplectic second order.

    Usage per step::

        integ.begin_step(accel)   # half-kick + drift
        ... recompute accel on new positions ...
        integ.finish_step(accel)  # closing half-kick
    """

    def __init__(self, particles: ParticleSet, dt: float) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        self.particles = particles
        self.dt = dt
        self._open = False

    def begin_step(self, accel: np.ndarray) -> None:
        if self._open:
            raise RuntimeError("begin_step called twice without finish_step")
        kick(self.particles, accel, 0.5 * self.dt)
        drift(self.particles, self.dt)
        self._open = True

    def finish_step(self, accel: np.ndarray) -> None:
        if not self._open:
            raise RuntimeError("finish_step without begin_step")
        kick(self.particles, accel, 0.5 * self.dt)
        self._open = False


def total_energy(particles: ParticleSet, potential: np.ndarray) -> float:
    """Kinetic + potential energy (potential counted once per pair)."""
    ke = 0.5 * float(np.sum(particles.mass * np.einsum("ij,ij->i", particles.velocity, particles.velocity)))
    pe = 0.5 * float(np.sum(particles.mass * potential))
    return ke + pe
