"""Traversal attribution: per-node / per-bucket SoA cost counters.

The observability stack so far answers *how long* (PR 1 traces, the DES
critical path, continuous profiles) but never *where in the tree*.  This
module closes that gap: an :class:`AttributionRecorder` rides the existing
:class:`~repro.core.traverser.Recorder` protocol and accumulates flat
int64 numpy arrays indexed by tree-node id —

* **source side** (which tree nodes cost us): ``visits`` (open()
  evaluations), ``mac_accepts`` (node() approximations), ``leaf_hits``
  (exact leaf interactions), ``pn_pairs`` / ``pp_pairs`` (kernel pairs);
* **bucket side** (which target buckets paid): ``bucket_visits``,
  ``bucket_pn``, ``bucket_pp``, indexed by target leaf id.

Design constraints, in order:

1. **Bit-identical for any backend × worker count.**  All counters are
   integers scattered with ``np.add.at`` (exact, order-independent
   addition), forks start at zero and are absorbed in chunk order, and
   the nanosecond cost estimate is a *fixed* linear model over the
   counters (:data:`OPEN_COST_NS` etc.) — never a wall clock.  The
   differential harness asserts equality across serial/threads/processes
   at workers {1, 2, 4}.
2. **Near-zero overhead when disabled.**  Disabled attribution is the
   absence of the recorder — the traversal inner loops already skip every
   callback when ``recorder is None`` (``benchmarks/bench_attr_overhead``
   pins the enabled cost too).
3. **Picklable forks.**  Process workers receive a fork by pickle and
   return it filled; the cached per-leaf particle counts are derived
   from the tree inside the worker, not shipped.

On top of the raw arrays, :class:`AttributionProfile` provides the
reporting surface ``repro explain`` renders: subtree rollups (top-K hot
subtrees at a depth cutoff), chunk-imbalance heatmaps from exec task
samples, Perfetto counter-track export alongside the PR 1 trace, and a
``repro.attr/1`` JSON document checked by
:func:`~repro.obs.validate.validate_attribution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ATTR_SCHEMA",
    "ARRAY_FIELDS",
    "OPEN_COST_NS",
    "PN_COST_NS",
    "PP_COST_NS",
    "AttributionRecorder",
    "AttributionProfile",
    "format_chunk_heatmap",
]

#: schema tag on every attribution document, bumped on layout changes
ATTR_SCHEMA = "repro.attr/1"

#: the SoA counter arrays, all int64 of length n_nodes, in export order
ARRAY_FIELDS = (
    "visits",
    "mac_accepts",
    "leaf_hits",
    "pn_pairs",
    "pp_pairs",
    "bucket_visits",
    "bucket_pn",
    "bucket_pp",
)

# Fixed cost model (integer nanoseconds per event).  The absolute values
# are calibrated to the numpy kernels' rough per-element cost; what
# matters for attribution is the *ratio* and that the estimate is a pure
# function of the deterministic counters — so cost arrays stay
# bit-identical across backends, unlike any measured timing.
OPEN_COST_NS = 40   # one MAC / open() evaluation
PN_COST_NS = 12     # one particle-node kernel pair
PP_COST_NS = 9      # one particle-particle kernel pair


class AttributionRecorder:
    """Recorder accumulating per-node and per-bucket traversal counters.

    Duck-types :class:`~repro.core.traverser.Recorder` (``on_open`` /
    ``on_node`` / ``on_leaf`` + ``fork``/``absorb``) without importing
    ``repro.core`` — the core traverser module imports ``repro.obs``, so
    the dependency must point this way only.

    Callback arrays have outer-product semantics (each source against
    each target; one side is usually length 1 depending on the engine's
    batching direction), which both loops here handle symmetrically.
    """

    __slots__ = ("n_nodes", "visits", "mac_accepts", "leaf_hits",
                 "pn_pairs", "pp_pairs", "bucket_visits", "bucket_pn",
                 "bucket_pp", "_counts")

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = int(n_nodes)
        for name in ARRAY_FIELDS:
            setattr(self, name, np.zeros(self.n_nodes, dtype=np.int64))
        self._counts: np.ndarray | None = None

    # -- helpers -------------------------------------------------------------
    def _particle_counts(self, tree) -> np.ndarray:
        # Derived from the tree on first use (and re-derived inside process
        # workers, where the fork arrives by pickle without it).
        counts = self._counts
        if counts is None:
            counts = tree.pend - tree.pstart
            self._counts = counts
        return counts

    # -- Recorder protocol ---------------------------------------------------
    def on_open(self, tree, sources: np.ndarray, targets: np.ndarray) -> None:
        src = np.atleast_1d(sources)
        tgt = np.atleast_1d(targets)
        np.add.at(self.visits, src, tgt.size)
        np.add.at(self.bucket_visits, tgt, src.size)

    def on_node(self, tree, sources: np.ndarray, targets: np.ndarray) -> None:
        src = np.atleast_1d(sources)
        tgt = np.atleast_1d(targets)
        counts = self._particle_counts(tree)
        np.add.at(self.mac_accepts, src, tgt.size)
        # one (source node, target bucket) approximation costs one
        # particle-node pair per target-bucket particle
        np.add.at(self.pn_pairs, src, int(counts[tgt].sum()))
        np.add.at(self.bucket_pn, tgt, counts[tgt] * src.size)

    def on_leaf(self, tree, sources: np.ndarray, targets: np.ndarray) -> None:
        src = np.atleast_1d(sources)
        tgt = np.atleast_1d(targets)
        counts = self._particle_counts(tree)
        np.add.at(self.leaf_hits, src, tgt.size)
        tgt_particles = int(counts[tgt].sum())
        np.add.at(self.pp_pairs, src, counts[src] * tgt_particles)
        np.add.at(self.bucket_pp, tgt, counts[tgt] * int(counts[src].sum()))

    def fork(self) -> "AttributionRecorder":
        return AttributionRecorder(self.n_nodes)

    def absorb(self, other: "AttributionRecorder") -> None:
        if other.n_nodes != self.n_nodes:
            raise ValueError(
                f"cannot absorb attribution for {other.n_nodes} nodes "
                f"into {self.n_nodes}"
            )
        for name in ARRAY_FIELDS:
            getattr(self, name)[:] += getattr(other, name)

    # -- derived -------------------------------------------------------------
    def cost_ns(self) -> np.ndarray:
        """Deterministic per-node cost estimate (int64 nanoseconds)."""
        return (OPEN_COST_NS * self.visits
                + PN_COST_NS * self.pn_pairs
                + PP_COST_NS * self.pp_pairs)

    def mac_rejects(self) -> np.ndarray:
        """open() evaluations that opened the node (descend / leaf hit)."""
        return self.visits - self.mac_accepts

    # -- pickling (process-backend forks) ------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state = {name: getattr(self, name) for name in ARRAY_FIELDS}
        state["n_nodes"] = self.n_nodes
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.n_nodes = state["n_nodes"]
        for name in ARRAY_FIELDS:
            setattr(self, name, state[name])
        self._counts = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AttributionRecorder(n_nodes={self.n_nodes}, "
                f"visits={int(self.visits.sum())}, "
                f"pp={int(self.pp_pairs.sum())})")


@dataclass
class AttributionProfile:
    """One iteration's attribution: raw arrays plus reporting context.

    ``cache`` carries the per-partition cache-miss attribution from
    :func:`~repro.cache.stats.miss_attribution`; ``chunks`` carries exec
    chunk task samples (chunk id, worker lane, duration) for the
    imbalance heatmap.  Both are optional — the arrays alone are the
    deterministic core.
    """

    n_nodes: int
    arrays: dict[str, np.ndarray]
    iteration: int | None = None
    cache: dict[str, Any] | None = None
    chunks: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_recorder(cls, recorder: AttributionRecorder,
                      iteration: int | None = None,
                      chunks: list[dict[str, Any]] | None = None,
                      ) -> "AttributionProfile":
        arrays = {name: getattr(recorder, name).copy() for name in ARRAY_FIELDS}
        arrays["mac_rejects"] = recorder.mac_rejects()
        arrays["cost_ns"] = recorder.cost_ns()
        return cls(n_nodes=recorder.n_nodes, arrays=arrays,
                   iteration=iteration, chunks=list(chunks or []))

    def merge(self, other: "AttributionProfile") -> "AttributionProfile":
        """Fold another iteration's profile in (exact integer addition)."""
        if other.n_nodes != self.n_nodes:
            raise ValueError("cannot merge profiles over different trees")
        for name, arr in self.arrays.items():
            arr[:] += other.arrays[name]
        self.chunks.extend(other.chunks)
        return self

    # -- rollups -------------------------------------------------------------
    def totals(self) -> dict[str, int]:
        return {name: int(arr.sum()) for name, arr in self.arrays.items()}

    def subtree_rollup(self, tree, depth: int = 3, top: int = 8) -> list[dict[str, Any]]:
        """Top-``top`` hottest subtrees, aggregating each node's cost into
        its ancestor at level ``depth`` (nodes above the cutoff represent
        themselves).  This is the per-subtree access profile that steers
        what to vectorize or shard (ROADMAP items 2 and 3)."""
        level = np.asarray(tree.level)
        parent = np.asarray(tree.parent)
        anchor = np.arange(self.n_nodes, dtype=np.int64)
        # Walk each node up to its depth-`depth` ancestor; bounded by the
        # tree height, no per-node Python loop.
        for _ in range(int(level.max(initial=0))):
            deep = level[anchor] > depth
            if not deep.any():
                break
            anchor[deep] = parent[anchor[deep]]

        def rollup(name: str) -> np.ndarray:
            return np.bincount(anchor, weights=self.arrays[name],
                               minlength=self.n_nodes).astype(np.int64)

        cost = rollup("cost_ns")
        visits = rollup("visits")
        pp = rollup("pp_pairs")
        pn = rollup("pn_pairs")
        counts = tree.pend - tree.pstart
        order = np.argsort(-cost, kind="stable")[:top]
        total = int(cost.sum()) or 1
        out = []
        for node in order:
            node = int(node)
            if cost[node] == 0:
                break
            out.append({
                "node": node,
                "level": int(level[node]),
                "particles": int(counts[node]),
                "cost_ns": int(cost[node]),
                "cost_frac": float(cost[node] / total),
                "visits": int(visits[node]),
                "pp_pairs": int(pp[node]),
                "pn_pairs": int(pn[node]),
            })
        return out

    def chunk_imbalance(self) -> dict[str, Any] | None:
        """Imbalance summary over the exec chunk samples (None when the
        iteration ran serially)."""
        if not self.chunks:
            return None
        durs = np.array([c["dur"] for c in self.chunks], dtype=np.float64)
        lanes: dict[int, float] = {}
        for c in self.chunks:
            lanes[int(c.get("lane", 0))] = lanes.get(int(c.get("lane", 0)), 0.0) \
                + float(c["dur"])
        busy = np.array(list(lanes.values()))
        return {
            "n_chunks": len(self.chunks),
            "n_lanes": len(lanes),
            "chunk_max_over_mean": float(durs.max() / durs.mean()) if durs.size else 1.0,
            "lane_max_over_mean": float(busy.max() / busy.mean()) if busy.size else 1.0,
        }

    # -- export --------------------------------------------------------------
    def to_dict(self, tree=None, depth: int = 3, top: int = 8) -> dict[str, Any]:
        """``repro.attr/1`` JSON document (full arrays + rollups)."""
        doc: dict[str, Any] = {
            "schema": ATTR_SCHEMA,
            "n_nodes": self.n_nodes,
            "iteration": self.iteration,
            "cost_model_ns": {"open": OPEN_COST_NS, "pn": PN_COST_NS,
                              "pp": PP_COST_NS},
            "totals": self.totals(),
            "arrays": {name: arr.tolist() for name, arr in self.arrays.items()},
        }
        if tree is not None:
            doc["subtrees"] = self.subtree_rollup(tree, depth=depth, top=top)
            doc["subtree_depth"] = depth
        if self.cache is not None:
            doc["cache"] = self.cache
        imb = self.chunk_imbalance()
        if imb is not None:
            doc["chunk_imbalance"] = imb
            doc["chunks"] = self.chunks
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "AttributionProfile":
        if doc.get("schema") != ATTR_SCHEMA:
            raise ValueError(
                f"not an attribution document (schema={doc.get('schema')!r}, "
                f"expected {ATTR_SCHEMA!r})"
            )
        arrays = {name: np.asarray(vals, dtype=np.int64)
                  for name, vals in doc["arrays"].items()}
        return cls(n_nodes=int(doc["n_nodes"]), arrays=arrays,
                   iteration=doc.get("iteration"), cache=doc.get("cache"),
                   chunks=list(doc.get("chunks", [])))

    def summary(self, tree=None, depth: int = 3, top: int = 5) -> dict[str, Any]:
        """Compact per-iteration summary for :class:`IterationReport`
        (totals + top subtrees, no full arrays)."""
        out: dict[str, Any] = {
            "totals": self.totals(),
            "cost_ns": int(self.arrays["cost_ns"].sum()),
        }
        if tree is not None:
            out["top_subtrees"] = self.subtree_rollup(tree, depth=depth, top=top)
        if self.cache is not None:
            out["cache"] = {k: v for k, v in self.cache.items()
                            if k != "node_remote_touches"}
        imb = self.chunk_imbalance()
        if imb is not None:
            out["chunk_imbalance"] = imb
        return out

    def counter_events(self, ts: float, pid: int = 0,
                       tree=None, depth: int = 3, top: int = 4,
                       ) -> list[dict[str, Any]]:
        """Perfetto counter-track events (``ph == "C"``) sampling this
        profile at trace time ``ts`` (µs), alongside the PR 1 span trace."""
        totals = self.totals()
        events = [
            {"name": f"attr.{name}", "ph": "C", "ts": ts, "pid": pid,
             "tid": 0, "args": {name: totals[name]}}
            for name in ("visits", "pn_pairs", "pp_pairs", "cost_ns")
        ]
        if tree is not None:
            hot = self.subtree_rollup(tree, depth=depth, top=top)
            if hot:
                events.append({
                    "name": "attr.subtree_cost_ns", "ph": "C", "ts": ts,
                    "pid": pid, "tid": 0,
                    "args": {f"node{e['node']}": e["cost_ns"] for e in hot},
                })
        return events


_HEAT = " ·▁▂▃▄▅▆▇█"


def format_chunk_heatmap(chunks: list[dict[str, Any]], width: int = 64) -> str:
    """ASCII heatmap of chunk durations: one row per worker lane, one cell
    per chunk (in chunk order), shade ∝ duration / max duration.  Reads as
    the Fig 9-style utilisation picture: a ragged dark column is the
    straggler chunk the decomposition should split."""
    if not chunks:
        return "(no parallel chunk samples)"
    by_lane: dict[int, dict[int, float]] = {}
    max_dur = max(float(c["dur"]) for c in chunks) or 1.0
    n_chunks = max(int(c["chunk"]) for c in chunks) + 1
    for c in chunks:
        by_lane.setdefault(int(c.get("lane", 0)), {})[int(c["chunk"])] = float(c["dur"])
    cells = min(n_chunks, width)
    lines = [f"chunk imbalance ({n_chunks} chunks × {len(by_lane)} lanes, "
             f"█ = {max_dur * 1e3:.3f} ms)"]
    for lane in sorted(by_lane):
        row = []
        for cell in range(cells):
            # fold chunks into `cells` columns when there are too many
            lo = cell * n_chunks // cells
            hi = max((cell + 1) * n_chunks // cells, lo + 1)
            dur = max((by_lane[lane].get(c, 0.0) for c in range(lo, hi)),
                      default=0.0)
            shade = int(round(dur / max_dur * (len(_HEAT) - 1)))
            row.append(_HEAT[shade])
        lines.append(f"  lane {lane:>3} {''.join(row)}")
    return "\n".join(lines)
