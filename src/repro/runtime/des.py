"""A minimal deterministic discrete-event simulation core.

Three primitives cover everything the runtime model needs:

* :class:`Simulator` — the event loop (a heap of timestamped callbacks with
  FIFO tie-breaking, so runs are fully deterministic);
* :class:`FifoResource` — a server with fixed concurrency; models mutexes
  (capacity 1) and bandwidth-style pipes;
* :class:`WorkerPool` — the worker threads of one process: a shared ready
  queue drained by ``n_workers`` servers, plus Charm++-style targeted
  dispatch to the least-busy worker.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

__all__ = ["Simulator", "FifoResource", "WorkerPool"]


class Simulator:
    """Deterministic event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute ``time`` (must not be in the past)."""
        self.schedule(time - self.now, fn)

    def run(self, until: float | None = None) -> float:
        """Drain events (optionally stopping at ``until``); returns the
        final clock."""
        while self._heap:
            t, _, fn = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            self.events_processed += 1
            fn()
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)


class FifoResource:
    """A server with ``capacity`` parallel slots and a FIFO backlog.

    ``submit(service_time, on_done, on_start)`` queues a job; when a slot
    frees up the job occupies it for ``service_time`` and then ``on_done``
    fires.  Capacity 1 is a mutex with queueing — the model for the
    exclusive-write cache.  Tracks total busy time and peak queue length.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._busy = 0
        self._queue: deque[tuple[float, Callable[[], None] | None, Callable[[], None] | None]] = deque()
        self.busy_time = 0.0
        self.jobs_served = 0
        self.max_queue = 0

    def submit(
        self,
        service_time: float,
        on_done: Callable[[], None] | None = None,
        on_start: Callable[[], None] | None = None,
    ) -> None:
        self._queue.append((service_time, on_done, on_start))
        self.max_queue = max(self.max_queue, len(self._queue))
        self._try_start()

    def _try_start(self) -> None:
        while self._busy < self.capacity and self._queue:
            service_time, on_done, on_start = self._queue.popleft()
            self._busy += 1
            if on_start:
                on_start()
            self.busy_time += service_time
            self.jobs_served += 1

            def finish(done=on_done):
                self._busy -= 1
                if done:
                    done()
                self._try_start()

            self.sim.schedule(service_time, finish)


class WorkerPool:
    """The worker threads of one simulated process.

    Tasks pushed with :meth:`submit` go to a shared ready queue (Charm++
    scheduler style): any idle worker picks up the next task.  Tasks pushed
    with :meth:`submit_to_least_busy` are bound to the worker with the least
    backlog at submission time — the paper's policy for remote-request fill
    messages.  Each task carries an activity label for the utilisation
    trace.
    """

    def __init__(self, sim: Simulator, n_workers: int, trace=None, process_id: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.sim = sim
        self.n_workers = n_workers
        self.trace = trace
        self.process_id = process_id
        Task = tuple[float, str, Callable[[], None] | None, Callable[[], None] | None]
        self._shared: deque[Task] = deque()
        self._bound: list[deque[Task]] = [deque() for _ in range(n_workers)]
        self._idle: list[bool] = [True] * n_workers
        #: committed-but-unfinished service time per worker, used for the
        #: least-busy heuristic.
        self._backlog: list[float] = [0.0] * n_workers
        self.busy_time = 0.0
        self.tasks_run = 0

    # -- submission ---------------------------------------------------------
    def submit(self, service_time: float, label: str = "work", on_done=None, on_start=None) -> None:
        self._shared.append((service_time, label, on_done, on_start))
        self._wake_one()

    def submit_to_least_busy(self, service_time: float, label: str = "fill", on_done=None) -> None:
        w = min(range(self.n_workers), key=lambda i: (self._backlog[i], i))
        self._backlog[w] += service_time
        self._bound[w].append((service_time, label, on_done, None))
        if self._idle[w]:
            self._run_next(w)

    # -- scheduling ----------------------------------------------------------
    def _wake_one(self) -> None:
        for w in range(self.n_workers):
            if self._idle[w]:
                self._run_next(w)
                return

    def _run_next(self, w: int) -> None:
        # Bound tasks first (they were targeted deliberately), then shared.
        if self._bound[w]:
            service_time, label, on_done, on_start = self._bound[w].popleft()
            bound = True
        elif self._shared:
            service_time, label, on_done, on_start = self._shared.popleft()
            bound = False
        else:
            self._idle[w] = True
            return
        self._idle[w] = False
        if on_start:
            on_start()
        start = self.sim.now
        self.busy_time += service_time
        self.tasks_run += 1

        def finish():
            if bound:
                self._backlog[w] -= service_time
            if self.trace is not None:
                self.trace.record(self.process_id, w, start, self.sim.now, label)
            if on_done:
                on_done()
            self._run_next(w)

        self.sim.schedule(service_time, finish)

    @property
    def queued(self) -> int:
        return len(self._shared) + sum(len(q) for q in self._bound)

    def idle_workers(self) -> int:
        return sum(self._idle)
