"""Barnes-Hut gravity on ParaTreeT abstractions (paper §II-D-3, §III-A)."""

from .centroid import CentroidData, GravityNodeArrays, compute_centroid_arrays
from .direct import acceleration_error, direct_accelerations, direct_potential
from .integrator import LeapfrogIntegrator, kick, drift, kick_drift_kick_half
from .kernels import pairwise_accel, pairwise_potential, point_mass_accel, quadrupole_accel
from .solver import GravityDriver, GravityResult, compute_gravity, compute_gravity_on_tree
from .fmm import FMMResult, FMMVisitor, compute_fmm_gravity, derivative_tensors
from .periodic import PeriodicGravityResult, compute_gravity_periodic, minimum_image
from .visitor import GravityVisitor

__all__ = [
    "CentroidData",
    "GravityNodeArrays",
    "compute_centroid_arrays",
    "GravityVisitor",
    "GravityDriver",
    "GravityResult",
    "compute_gravity",
    "compute_gravity_on_tree",
    "FMMResult",
    "FMMVisitor",
    "compute_fmm_gravity",
    "derivative_tensors",
    "PeriodicGravityResult",
    "compute_gravity_periodic",
    "minimum_image",
    "direct_accelerations",
    "direct_potential",
    "acceleration_error",
    "pairwise_accel",
    "pairwise_potential",
    "point_mass_accel",
    "quadrupole_accel",
    "LeapfrogIntegrator",
    "kick",
    "drift",
    "kick_drift_kick_half",
]
