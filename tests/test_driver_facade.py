"""Partitions facade variants, driver recorders, and misc coverage."""

import numpy as np
import pytest

from repro.apps.gravity import GravityDriver
from repro.core import Configuration, Recorder
from repro.particles import clustered_clumps


class CountingRecorder(Recorder):
    def __init__(self):
        self.opens = 0
        self.nodes = 0
        self.leaves = 0

    def on_open(self, tree, sources, targets):
        self.opens += 1

    def on_node(self, tree, sources, targets):
        self.nodes += 1

    def on_leaf(self, tree, sources, targets):
        self.leaves += 1


def make_driver(**extra):
    class Main(GravityDriver):
        def create_particles(self, config):
            return clustered_clumps(900, seed=25)

    kwargs = dict(num_iterations=1, num_partitions=4, num_subtrees=4)
    kwargs.update(extra)
    return Main(Configuration(**kwargs), theta=0.7, softening=1e-3)


class TestPartitionsFacade:
    def test_start_basic_down_matches_default(self):
        d1 = make_driver()
        d1.run()
        acc_default = d1.tree.particles.scatter_to_input_order(d1.accelerations)

        class BasicMain(GravityDriver):
            def create_particles(self, config):
                return clustered_clumps(900, seed=25)

            def traversal(self, iteration):
                self.partitions().start_basic_down(self._visitor)
                self.accelerations = self._visitor.accel

        d2 = BasicMain(
            Configuration(num_iterations=1, num_partitions=4, num_subtrees=4),
            theta=0.7, softening=1e-3,
        )
        d2.run()
        acc_basic = d2.tree.particles.scatter_to_input_order(d2.accelerations)
        assert np.allclose(acc_default, acc_basic, rtol=1e-9)

    def test_start_up_and_down_runs(self):
        class UpDownMain(GravityDriver):
            def create_particles(self, config):
                return clustered_clumps(400, seed=26)

            def traversal(self, iteration):
                self.partitions().start_up_and_down(self._visitor)
                self.accelerations = self._visitor.accel

        d = UpDownMain(
            Configuration(num_iterations=1, num_partitions=4, num_subtrees=4),
            theta=0.4, softening=1e-3,
        )
        d.run()
        assert np.any(d.accelerations != 0)

    def test_start_dual_runs(self):
        class DualMain(GravityDriver):
            def create_particles(self, config):
                return clustered_clumps(400, seed=27)

            def traversal(self, iteration):
                self.partitions().start_dual(self._visitor)
                self.accelerations = self._visitor.accel

        d = DualMain(
            Configuration(num_iterations=1, num_partitions=4, num_subtrees=4),
            theta=0.4, softening=1e-3,
        )
        d.run()
        assert d.last_stats.leaf_interactions > 0

    def test_decomposition_exposed(self):
        d = make_driver()
        d.run()
        assert d.partitions().decomposition is d.decomposition


class TestDriverRecorder:
    def test_set_recorder_observes_traversal(self):
        d = make_driver()
        rec = CountingRecorder()
        d.set_recorder(rec)
        d.run()
        assert rec.opens > 0
        assert rec.nodes > 0
        assert rec.leaves > 0

    def test_recorder_can_be_cleared(self):
        d = make_driver()
        rec = CountingRecorder()
        d.set_recorder(rec)
        d.set_recorder(None)
        d.run()
        assert rec.opens == 0


class TestFoFOnPrebuiltTree:
    def test_accepts_tree(self):
        from repro.apps.fof import friends_of_friends
        from repro.trees import build_tree

        p = clustered_clumps(500, seed=28)
        tree = build_tree(p, tree_type="kd", bucket_size=8)
        res = friends_of_friends(tree, linking_length=0.04)
        assert res.group_sizes.sum() == 500


class TestFlush:
    def test_flush_period_discards_lb_assignment(self):
        """With flush_period=1 every iteration re-decomposes from scratch,
        so LB assignments never take effect."""
        d = make_driver(num_iterations=3, lb_period=1, flush_period=1)
        d.run()
        assert not any(r.rebalanced for r in d.reports)

    def test_without_flush_lb_applies(self):
        d = make_driver(num_iterations=3, lb_period=1)
        d.run()
        assert any(r.rebalanced for r in d.reports)

    def test_imbalance_threshold_triggers_flush(self):
        """A tiny flush_imbalance threshold forces a re-decomposition every
        iteration (count-based SFC), again suppressing LB carryover."""
        d = make_driver(num_iterations=3, lb_period=1)
        d.config.extra["flush_imbalance"] = 1.0  # everything is "imbalanced"
        d.run()
        assert not any(r.rebalanced for r in d.reports)


class TestTreeValidationCatchesCorruption:
    def test_detects_broken_parent_pointer(self):
        from repro.trees import build_tree, check_tree_invariants

        tree = build_tree(clustered_clumps(300, seed=30), tree_type="kd", bucket_size=8)
        tree.parent[tree.first_child[0]] = 0 if tree.parent[tree.first_child[0]] != 0 else 1
        tree.parent[int(tree.first_child[0])] = 99  # corrupt
        with pytest.raises(AssertionError):
            check_tree_invariants(tree)

    def test_detects_range_gap(self):
        from repro.trees import build_tree, check_tree_invariants

        tree = build_tree(clustered_clumps(300, seed=31), tree_type="kd", bucket_size=8)
        tree.pend[int(tree.first_child[0])] -= 1  # gap between siblings
        with pytest.raises(AssertionError):
            check_tree_invariants(tree)

    def test_detects_duplicate_keys(self):
        from repro.trees import build_tree, check_tree_invariants

        tree = build_tree(clustered_clumps(300, seed=32), tree_type="kd", bucket_size=8)
        tree.key[1] = tree.key[2]
        with pytest.raises(AssertionError):
            check_tree_invariants(tree)
