"""``CentroidData``: the gravity application's node Data (paper Fig 6).

Two equivalent implementations are provided and tested against each other:

* :class:`CentroidData` — the object-per-node class written exactly in the
  paper's style (``from_leaf`` / ``empty`` / ``+=``), run through the
  generic accumulation engine;
* :func:`compute_centroid_arrays` — the vectorised fast path used by the
  traversal hot loops, extracting the same moments with prefix sums plus a
  single bottom-up sweep for the quadrupole shift terms.

Each node also carries an *opening radius*: the Barnes-Hut multipole
acceptance criterion in the sphere-intersection form of the paper's Fig 7 —
a node is opened for a target bucket iff the bucket's box intersects the
sphere centred on the node centroid with radius
``ell / theta + delta``, where ``ell`` is the node box's longest side and
``delta`` the centroid's offset from the box centre.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...trees import SpatialNode, Tree
from ...core.util import segment_sums

__all__ = ["CentroidData", "compute_centroid_arrays", "GravityNodeArrays"]


@dataclass
class CentroidData:
    """Mass moments of a subtree (paper Fig 6, plus quadrupole).

    ``moment`` is the mass-weighted position sum, so ``centroid() = moment /
    sum_mass`` exactly as in the paper's listing.
    """

    moment: np.ndarray = field(default_factory=lambda: np.zeros(3))
    sum_mass: float = 0.0
    #: raw second moment Σ m x xᵀ (about the origin; shifted on demand)
    second: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))

    @classmethod
    def empty(cls) -> "CentroidData":
        return cls()

    @classmethod
    def from_leaf(cls, node: SpatialNode) -> "CentroidData":
        pos = node.positions
        m = node.masses
        return cls(
            moment=(m[:, None] * pos).sum(axis=0),
            sum_mass=float(m.sum()),
            second=np.einsum("p,pi,pj->ij", m, pos, pos),
        )

    def __iadd__(self, child: "CentroidData") -> "CentroidData":
        self.moment = self.moment + child.moment
        self.sum_mass = self.sum_mass + child.sum_mass
        self.second = self.second + child.second
        return self

    def centroid(self) -> np.ndarray:
        if self.sum_mass == 0.0:
            return np.zeros(3)
        return self.moment / self.sum_mass

    def quadrupole(self) -> np.ndarray:
        """Traceless quadrupole about the centroid: Σ m (3 dd^T − |d|² I)."""
        if self.sum_mass == 0.0:
            return np.zeros((3, 3))
        c = self.centroid()
        # Shift raw second moment to the centroid frame:
        # Σ m d dᵀ = Σ m x xᵀ − M c cᵀ.
        cov = self.second - self.sum_mass * np.outer(c, c)
        return 3.0 * cov - np.trace(cov) * np.eye(3)


@dataclass
class GravityNodeArrays:
    """Per-node arrays consumed by the gravity visitor's hot loops."""

    mass: np.ndarray          # (M,)
    centroid: np.ndarray      # (M, 3)
    open_radius_sq: np.ndarray  # (M,) — the MAC sphere radius², Fig 7's rsq
    quad: np.ndarray | None = None  # (M, 3, 3) traceless quadrupoles


def compute_centroid_arrays(
    tree: Tree, theta: float = 0.7, with_quadrupole: bool = False
) -> GravityNodeArrays:
    """Vectorised moment extraction for all nodes at once.

    Because tree-order particle ranges are contiguous, ``Σ m`` and ``Σ m x``
    per node are two prefix-sum subtractions — no per-node Python work.
    """
    if theta <= 0:
        raise ValueError(f"theta must be > 0, got {theta}")
    p = tree.particles
    m = p.mass
    mass = segment_sums(m, tree.pstart, tree.pend)
    moment = segment_sums(m[:, None] * p.position, tree.pstart, tree.pend)
    with np.errstate(divide="ignore", invalid="ignore"):
        centroid = np.where(mass[:, None] > 0, moment / mass[:, None], 0.0)

    # Opening radius: ell/theta + centroid offset from box centre.
    ell = np.max(tree.box_hi - tree.box_lo, axis=1)
    center = 0.5 * (tree.box_lo + tree.box_hi)
    delta = np.linalg.norm(centroid - center, axis=1)
    r_open = ell / theta + delta
    arrays = GravityNodeArrays(mass=mass, centroid=centroid, open_radius_sq=r_open**2)

    if with_quadrupole:
        xxT = np.einsum("pi,pj->pij", p.position, p.position) * m[:, None, None]
        second = segment_sums(xxT.reshape(len(p), 9), tree.pstart, tree.pend).reshape(-1, 3, 3)
        cov = second - mass[:, None, None] * np.einsum("ni,nj->nij", centroid, centroid)
        trace = np.trace(cov, axis1=1, axis2=2)
        arrays.quad = 3.0 * cov - trace[:, None, None] * np.eye(3)[None, :, :]
    return arrays
