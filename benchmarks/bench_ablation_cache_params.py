"""Ablation — the cache hyperparameters of §II-D-2.

"Users can also tune other performance-specific hyperparameters: number of
nodes fetched per request, number of branch nodes shared across all
processors ..."  This bench sweeps both and maps the request-count /
bytes-moved tradeoff.
"""


from repro.bench import build_gravity_workload, format_table, print_banner
from repro.cache import WAITFREE, assign_fetch_groups, fetch_statistics
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal, workload_from_traversal

N_PROC = 32
WORKERS = 24

_CACHE = {}


@perf_benchmark("des.cache_params", group="des",
                description="fetch-group regroup + DES run at nodes_per_request=4")
def perf_cache_params(quick=False):
    gw = build_gravity_workload(distribution="clustered",
                                n=6_000 if quick else 15_000,
                                n_partitions=128, n_subtrees=128, seed=3)

    def run():
        wl = workload_from_traversal(gw.tree, gw.decomposition, gw.lists,
                                     nodes_per_request=4)
        r = simulate_traversal(wl, machine=STAMPEDE2, n_processes=N_PROC,
                               workers_per_process=WORKERS)
        return {"requests": r.requests, "sim_time": r.time}

    return run


def _sweep():
    if "out" in _CACHE:
        return _CACHE["out"]
    gw = build_gravity_workload(distribution="clustered", n=15_000,
                                n_partitions=128, n_subtrees=128, seed=3)
    rows = []
    for npr in (1, 2, 4, 8):
        wl = workload_from_traversal(gw.tree, gw.decomposition, gw.lists,
                                     nodes_per_request=npr)
        r = simulate_traversal(wl, machine=STAMPEDE2, n_processes=N_PROC,
                               workers_per_process=WORKERS)
        rows.append(("nodes_per_request", npr, r.requests,
                     r.bytes_moved / 1e6, r.time))
    for sbl in (0, 2, 4, 6):
        groups = assign_fetch_groups(gw.tree, gw.decomposition,
                                     nodes_per_request=2,
                                     shared_branch_levels=sbl)
        st = fetch_statistics(gw.tree, gw.lists, gw.decomposition, groups,
                              N_PROC, WAITFREE, workers_per_process=WORKERS)
        rows.append(("shared_branch_levels", sbl, st.total_requests,
                     st.total_bytes / 1e6, float("nan")))
    _CACHE["out"] = rows
    return rows


def test_cache_hyperparameters(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_banner("Ablation: cache hyperparameters (32 procs x 24 workers)")
    print(format_table(
        ["parameter", "value", "requests", "MB moved", "sim time (s)"], rows
    ))
    npr_rows = [r for r in rows if r[0] == "nodes_per_request"]
    sbl_rows = [r for r in rows if r[0] == "shared_branch_levels"]
    # Shipping more levels per fill strictly reduces the request count...
    reqs = [r[2] for r in npr_rows]
    assert all(a >= b for a, b in zip(reqs[:-1], reqs[1:]))
    # ...at the cost of (weakly) more bytes speculatively moved.
    assert npr_rows[-1][3] >= npr_rows[0][3] * 0.9
    # Replicating more branch levels monotonically removes fetches of the
    # top of the tree.
    sreqs = [r[2] for r in sbl_rows]
    assert all(a >= b for a, b in zip(sreqs[:-1], sreqs[1:]))
