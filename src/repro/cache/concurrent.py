"""A functional shared-memory tree cache under real threads (paper §II-B-1).

This implements the mechanism of Fig 2 faithfully enough to test its key
safety property — *"This wait-free model maintains the software cache in a
valid state at all times"* — with genuine Python threads:

* the cache is a single tree per process, not a hash table: entries hold
  child references directly;
* placeholder entries represent remote data and carry a once-only
  ``requested`` flag (step 0: first toucher sends the request, everyone
  else keeps working);
* a fill (steps 1-3) builds the incoming subtree *off to the side* — fresh
  ``CacheEntry`` objects wired parent/child, leaves populated, deeper
  placeholders created, the subtree-root hash table consulted for segments
  already local;
* only then is the placeholder swapped into the tree with a single
  reference assignment (step 4) — the only mutation readers can observe,
  and it is atomic, so a reader sees either the placeholder or the complete
  subtree, never a half-built state;
* paused traversals parked on the placeholder are released after the swap
  (step 5).

CPython's GIL makes single reference assignments atomic, which stands in
for the C++ relaxed atomic store; the *protocol* (publish only after fully
wiring) is what carries the invariant, and that is what the threaded tests
hammer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..obs import get_telemetry
from ..trees import Tree

__all__ = ["CacheEntry", "SharedTreeCache"]


@dataclass
class CacheEntry:
    """One node of the per-process software-cache tree."""

    key: int
    node_index: int  # index in the global tree (== home node id)
    is_placeholder: bool
    payload: Any = None  # node summary data once filled (e.g. moments)
    children: tuple["CacheEntry", ...] = ()
    #: once-only request flag (atomic test-and-set via Lock)
    _requested: bool = False
    _req_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: callbacks parked until this placeholder is filled
    _waiters: list[Callable[[], None]] = field(default_factory=list, repr=False)
    #: set (under ``_req_lock``) once the replacement subtree is published;
    #: late waiters check it instead of parking on a drained list
    _filled: bool = False

    def try_claim_request(self) -> bool:
        """Atomically set the requested flag; True for the first claimant."""
        with self._req_lock:
            if self._requested:
                return False
            self._requested = True
            return True

    def park(self, on_resume: Callable[[], None]) -> bool:
        """Park ``on_resume`` until the fill publishes; returns False (and
        does not park) when the fill already completed — the caller must
        resume immediately.  The check-and-append is atomic under
        ``_req_lock`` so a waiter can never land on a list the filler has
        already drained (the lost-waiter race)."""
        with self._req_lock:
            if self._filled:
                return False
            self._waiters.append(on_resume)
            return True

    def complete_fill(self) -> list[Callable[[], None]]:
        """Mark the fill published and atomically take the parked waiters
        (step 5).  Callers invoke the returned callbacks outside the lock."""
        with self._req_lock:
            self._filled = True
            waiters = self._waiters
            self._waiters = []
        return waiters

    def fail_fill(self) -> list[Callable[[], None]]:
        """A transient fill failure: re-arm the once-only request flag so
        the next toucher re-sends, and take the parked waiters so they can
        be re-driven (each will hit the placeholder again and retry)."""
        with self._req_lock:
            self._requested = False
            waiters = self._waiters
            self._waiters = []
        return waiters


class SharedTreeCache:
    """Per-process view of the global tree with remote placeholders.

    Parameters
    ----------
    tree:
        The global tree (plays the role of "all home processes" — fills are
        served from it).
    node_process:
        (n_nodes,) home process of each node, -1 for the replicated branch.
    process:
        Which process this cache belongs to.
    payload_fn:
        Extracts the shipped per-node payload, e.g. centroid data:
        ``payload_fn(node_index) -> object``.
    nodes_per_request:
        How many descendant levels a fill ships (the paper's
        "user-specified number of its descendants").
    injector:
        Optional :class:`~repro.faults.FaultPlan` or
        :class:`~repro.faults.FaultInjector`; when its plan has a nonzero
        ``fill_failure`` probability, fills fail transiently — the
        placeholder re-arms its request flag and parked traversals are
        re-driven so they retry.
    """

    def __init__(
        self,
        tree: Tree,
        node_process: np.ndarray,
        process: int,
        payload_fn: Callable[[int], Any] | None = None,
        nodes_per_request: int = 3,
        shared_branch_levels: int = 3,
        injector=None,
    ) -> None:
        self.tree = tree
        self.node_process = np.asarray(node_process)
        self.process = process
        self.payload_fn = payload_fn or (lambda i: None)
        self.nodes_per_request = nodes_per_request
        self.shared_branch_levels = shared_branch_levels
        if injector is not None:
            # Deferred import: repro.faults imports repro.cache.models for
            # RetryPolicy, which pulls in this module via cache/__init__.
            from ..faults import as_injector

            injector = as_injector(injector)
        self._injector = injector
        #: process-level hash table of local subtree roots (paper Fig 2,
        #: bottom-left).  Locked during build, read-only during traversal.
        self._local_roots: dict[int, CacheEntry] = {}
        self._build_lock = threading.Lock()
        self.requests_sent = 0
        self.fills_applied = 0
        self.fills_failed = 0
        #: parked/resumed callback totals; at quiescence (no fill in
        #: flight) these must be equal — the no-lost-waiter invariant the
        #: threaded stress tests assert.
        self.waiters_parked = 0
        self.waiters_resumed = 0
        self._stats_lock = threading.Lock()
        self.root = self._bootstrap()

    # -- construction -------------------------------------------------------
    def _materialize_local(self, node_index: int) -> CacheEntry:
        """Fully build the local subtree under ``node_index``."""
        t = self.tree
        children = tuple(
            self._materialize_local(int(c)) for c in t.children(node_index)
        )
        entry = CacheEntry(
            key=int(t.key[node_index]),
            node_index=node_index,
            is_placeholder=False,
            payload=self.payload_fn(node_index),
            children=children,
        )
        return entry

    def _bootstrap(self) -> CacheEntry:
        """Tree-build step: local subtrees inserted under the global root,
        with the top ``shared_branch_levels`` replicated and the rest of the
        remote tree as placeholders."""

        def build(node_index: int, depth: int) -> CacheEntry:
            home = self.node_process[node_index]
            if home == self.process:
                # A subtree this process owns: fully materialise and publish
                # its root in the hash table.
                entry = self._materialize_local(node_index)
                with self._build_lock:
                    self._local_roots[entry.key] = entry
                return entry
            if home == -1 or depth < self.shared_branch_levels:
                # The shared branch (above all subtree roots) and the first
                # ``shared_branch_levels`` of the tree are replicated to
                # every process; descend into children.
                children = tuple(
                    build(int(c), depth + 1) for c in self.tree.children(node_index)
                )
                return CacheEntry(
                    key=int(self.tree.key[node_index]),
                    node_index=node_index,
                    is_placeholder=False,
                    payload=self.payload_fn(node_index),
                    children=children,
                )
            # Remote subtree data beyond the replicated levels.
            return CacheEntry(
                key=int(self.tree.key[node_index]),
                node_index=node_index,
                is_placeholder=True,
            )

        return build(self.tree.root, 0)

    # -- the six-step fill protocol ------------------------------------------
    def request_fill(
        self,
        parent: CacheEntry,
        child_slot: int,
        on_resume: Callable[[], None] | None = None,
    ) -> bool:
        """A traversal hit placeholder ``parent.children[child_slot]``.

        Returns True if this call issued the (first) request; False if the
        request was already in flight (the waiter is still parked either
        way).  The fill itself runs synchronously on the calling thread in
        this in-process model — in the DES the latency/bandwidth costs are
        simulated instead.
        """
        flight = get_telemetry().flight
        placeholder = parent.children[child_slot]
        if not placeholder.is_placeholder:
            if on_resume:
                on_resume()
            return False
        if on_resume and not placeholder.park(on_resume):
            # The fill published between our child-slot read and the park:
            # the waiter list is already drained, so resume directly rather
            # than parking forever (the lost-waiter race).
            on_resume()
            return False
        if on_resume:
            with self._stats_lock:
                self.waiters_parked += 1
            flight.record("cache.park", node=placeholder.node_index,
                          process=self.process)
        if not placeholder.try_claim_request():
            return False
        with self._stats_lock:
            self.requests_sent += 1
        if self._injector is not None and self._injector.fill_fails():
            # Transient fill failure: the placeholder stays a placeholder,
            # the request flag re-arms so the next toucher (including our
            # own re-driven waiters) re-sends, and parked traversals are
            # released to retry instead of waiting on a dead request.
            with self._stats_lock:
                self.fills_failed += 1
            failed_waiters = placeholder.fail_fill()
            with self._stats_lock:
                self.waiters_resumed += len(failed_waiters)
            flight.record("cache.fill_failed", node=placeholder.node_index,
                          process=self.process, re_driven=len(failed_waiters))
            for w in failed_waiters:
                w()
            return False
        # Step 1: home process serialises the node + descendants (here we
        # read them straight from the global tree).
        shipped = self._ship(placeholder.node_index, self.nodes_per_request)
        # Steps 2-3: reconstruct off to the side; check the hash table for
        # segments that are already local; create deeper placeholders.
        new_entry = self._reconstruct(shipped)
        # Step 4: the atomic swap — the only visible mutation.
        new_children = list(parent.children)
        new_children[child_slot] = new_entry
        parent.children = tuple(new_children)
        with self._stats_lock:
            self.fills_applied += 1
        # Step 5: resume parked traversals — the filled flag flips and the
        # waiter list drains atomically, so no concurrent park can slip
        # between them.
        waiters = placeholder.complete_fill()
        with self._stats_lock:
            self.waiters_resumed += len(waiters)
        flight.record("cache.fill", node=placeholder.node_index,
                      process=self.process, resumed=len(waiters))
        for w in waiters:
            w()
        return True

    def _ship(self, node_index: int, levels: int) -> list[tuple[int, int, int]]:
        """Serialize ``node_index`` and ``levels`` of descendants as
        ``(node_index, parent_position, depth)`` triples (a collapsed array,
        like the wire format in Fig 2)."""
        out: list[tuple[int, int, int]] = []
        stack = [(node_index, -1, 0)]
        while stack:
            idx, parent_pos, depth = stack.pop()
            pos = len(out)
            out.append((idx, parent_pos, depth))
            if depth < levels:
                for c in self.tree.children(idx):
                    stack.append((int(c), pos, depth + 1))
        return out

    def _reconstruct(self, shipped: list[tuple[int, int, int]]) -> CacheEntry:
        """Wire shipped triples into CacheEntry objects (fills), creating
        placeholders for children beyond the shipped horizon and reusing
        already-local subtrees found in the hash table."""
        max_depth = max(d for _, _, d in shipped)
        entries: list[CacheEntry] = []
        kids: list[list[CacheEntry]] = []
        shipped_set = {idx for idx, _, _ in shipped}
        for idx, parent_pos, depth in shipped:
            entry = CacheEntry(
                key=int(self.tree.key[idx]),
                node_index=idx,
                is_placeholder=False,
                payload=self.payload_fn(idx),
            )
            entries.append(entry)
            kids.append([])
            if parent_pos >= 0:
                kids[parent_pos].append(entry)
            if depth == max_depth or any(
                int(c) not in shipped_set for c in self.tree.children(idx)
            ):
                # Children beyond the horizon: local segments come from the
                # hash table; the rest become placeholders.
                for c in self.tree.children(idx):
                    c = int(c)
                    if c in shipped_set:
                        continue
                    local = self._local_roots.get(int(self.tree.key[c]))
                    if local is not None:
                        kids[len(entries) - 1].append(local)
                    else:
                        kids[len(entries) - 1].append(
                            CacheEntry(
                                key=int(self.tree.key[c]),
                                node_index=c,
                                is_placeholder=True,
                            )
                        )
        for entry, children in zip(entries, kids):
            if children:
                entry.children = tuple(children)
        return entries[0]

    # -- queries --------------------------------------------------------------
    def find(self, key: int) -> CacheEntry | None:
        """Walk the cache tree for the entry with ``key``; placeholders end
        the walk (a traversal would request a fill there)."""
        stack = [self.root]
        while stack:
            e = stack.pop()
            if e.key == key:
                return e
            if not e.is_placeholder:
                stack.extend(e.children)
        return None

    def validate(self) -> None:
        """The wait-free invariant: every reachable entry is either a
        placeholder or fully wired (children tuples, payload present when
        the payload_fn provides one); keys match the global tree."""
        stack = [self.root]
        seen = 0
        while stack:
            e = stack.pop()
            seen += 1
            assert e.key == int(self.tree.key[e.node_index]), "key mismatch"
            if e.is_placeholder:
                assert e.children == (), "placeholder with children"
            else:
                assert isinstance(e.children, tuple)
                stack.extend(e.children)
        assert seen >= 1
