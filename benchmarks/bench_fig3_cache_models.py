"""Fig 3 — WaitFree vs Sequential vs XWrite software-cache scaling.

Reproduces §II-B-2's experiment: Barnes-Hut gravity on a *clustered*
dataset, Stampede2 configuration with 24 workers per process, sweeping core
counts.  The paper's shape:

* the exclusive-write model departs from WaitFree around 1 536 cores
  (lock-wait burns worker time),
* the single-threaded per-thread-cache model follows around 6 144 cores
  (its duplicated communication stops hiding behind compute),
* WaitFree keeps scaling.

The dataset is scaled down (25k particles vs the paper's 80 M), so the
transition core counts shift; the *ordering* of the degradations and the
terminal ranking are the reproduced claims.
"""

import pytest

from repro.bench import (
    build_gravity_workload,
    format_series,
    paper_reference,
    print_banner,
)
from repro.cache import SEQUENTIAL, WAITFREE, XWRITE
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal

PROCESSES = (1, 4, 16, 64, 256)
WORKERS = paper_reference.FIG3_CORES_PER_PROCESS  # 24, as in the paper


_CACHE = {}


@perf_benchmark("des.cache_models", group="des",
                description="Fig 3 XWrite degradation point: 64 procs x 24 workers")
def perf_cache_models(quick=False):
    wl = build_gravity_workload(
        distribution="clustered", n=8_000 if quick else 25_000,
        n_partitions=1024, n_subtrees=1024,
    ).workload
    n_proc = 16 if quick else 64

    def run():
        r = simulate_traversal(
            wl, machine=STAMPEDE2, n_processes=n_proc,
            workers_per_process=WORKERS, cache_model=XWRITE,
        )
        return {"sim_time": r.time, "requests": r.requests}

    return run


def _sweep(clustered_workload):
    if "sweep" in _CACHE:
        return _CACHE["sweep"]
    results = {}
    for model in (WAITFREE, SEQUENTIAL, XWRITE):
        times = []
        for n_proc in PROCESSES:
            r = simulate_traversal(
                clustered_workload.workload,
                machine=STAMPEDE2,
                n_processes=n_proc,
                workers_per_process=WORKERS,
                cache_model=model,
            )
            times.append(r.time)
        results[model.name] = times
    _CACHE["sweep"] = results
    return results


def test_fig3_shape(benchmark, clustered_workload):
    sweep = benchmark.pedantic(_sweep, args=(clustered_workload,), rounds=1, iterations=1)
    cores = [p * WORKERS for p in PROCESSES]
    print_banner("Fig 3: cache-model comparison (avg gravity traversal, s)")
    print(format_series("cores", cores, sweep))
    print(
        f"\npaper: XWrite degrades ~{paper_reference.FIG3_XWRITE_DEGRADES_CORES} "
        f"cores, Sequential ~{paper_reference.FIG3_SEQUENTIAL_DEGRADES_CORES} cores "
        "(80M particles; ours is a 25k-particle scale model)"
    )
    wf, seq, xw = sweep["WaitFree"], sweep["Sequential"], sweep["XWrite"]
    # All models identical on one process (no remote traffic).
    assert wf[0] == pytest.approx(xw[0], rel=1e-6)
    assert wf[0] == pytest.approx(seq[0], rel=1e-6)
    # WaitFree strong-scales monotonically.
    assert all(a > b for a, b in zip(wf[:-1], wf[1:]))
    # XWrite departs first: it is the worst model at every scaled-up point
    # and stops improving while WaitFree continues.
    assert xw[-1] > 2.0 * wf[-1]
    assert xw[-1] > seq[-1]
    # Sequential tracks WaitFree at moderate scale (overlap hides its extra
    # volume) then departs at the top end.
    mid = 2  # 384 cores
    assert seq[mid] < 1.2 * wf[mid]
    assert seq[-1] > 1.3 * wf[-1]
    # The departure order matches the paper: XWrite leaves the WaitFree
    # curve at a lower core count than Sequential does.
    def departure_index(series, tol=1.25):
        for i, (t, ref) in enumerate(zip(series, wf)):
            if t > tol * ref:
                return i
        return len(series)

    assert departure_index(xw) <= departure_index(seq)


def test_fig3_benchmark_single_point(benchmark, clustered_workload):
    """Timing of one DES run at the paper's XWrite degradation point."""
    n_proc = paper_reference.FIG3_XWRITE_DEGRADES_CORES // WORKERS  # 64

    def run():
        return simulate_traversal(
            clustered_workload.workload,
            machine=STAMPEDE2,
            n_processes=n_proc,
            workers_per_process=WORKERS,
            cache_model=XWRITE,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.requests > 0
