"""Table I — characteristics of the simulated supercomputers.

Regenerates the machine table from the DES machine specs and benchmarks the
raw event throughput of the simulator core that stands in for them.
"""

from repro.bench import format_table, paper_reference, print_banner
from repro.perf import benchmark as perf_benchmark
from repro.runtime import MACHINES, Simulator, WorkerPool


@perf_benchmark("des.event_throughput", group="des",
                description="raw DES event-loop throughput (WorkerPool, 16 workers)",
                repeats=7)
def perf_event_throughput(quick=False):
    n_tasks = 500 if quick else 2000

    def run():
        sim = Simulator()
        pool = WorkerPool(sim, 16)
        for _ in range(n_tasks):
            pool.submit(0.001)
        return {"final_clock": sim.run()}

    return run


def test_table1_machines(benchmark):
    rows = [
        (m.name, m.cores_per_node, m.cpu_type, m.clock_ghz, m.comm_layer)
        for m in MACHINES.values()
    ]
    print_banner("Table I: relevant characteristics of supercomputers used")
    print(format_table(["Name", "Cores/N", "CPU Type", "Clock GHz", "Comm. Layer"], rows))
    print(format_table(
        ["Name", "Cores/N", "CPU Type", "Clock GHz", "Comm. Layer"],
        paper_reference.TABLE1,
        title="\n(paper Table I)",
    ))
    assert [tuple(r) for r in rows] == paper_reference.TABLE1

    # Benchmark: DES event throughput (the substrate all scaling figures
    # run on).
    def pump_events():
        sim = Simulator()
        pool = WorkerPool(sim, 16)
        for i in range(2000):
            pool.submit(0.001)
        return sim.run()

    result = benchmark(pump_events)
    assert result > 0
