"""The long-lived asyncio query service.

One dispatcher task owns the pipeline: admission queue -> micro-batch
(deadline-expired work dropped here) -> supervised executor.  Batches
execute one at a time on a dedicated dispatch thread, so backpressure
is real — when execution falls behind, the admission queue fills and
the shed policy takes over instead of memory growing without bound.

Drain protocol (SIGTERM path): :meth:`QueryService.drain` stops
admission (new offers shed with reason ``draining``), waits for the
queue and in-flight batch to settle, then writes a PR 4 checkpoint of
the tree-ordered particle arrays.  ``repro serve --resume`` rebuilds a
bit-identical tree from it, so answers before and after the restart are
byte-for-byte equal.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..exec.supervise import SupervisorConfig
from ..obs import Log2Histogram
from ..obs.telemetry import Telemetry, get_telemetry
from .admission import AdmissionConfig, AdmissionController, QueueEntry
from .batcher import BatchPolicy, MicroBatcher
from .executor import BatchExecutor, CircuitBreaker
from .protocol import (
    STATUS_OK,
    Query,
    Response,
    error_response,
    expired_response,
    shed_response,
)
from .resident import ResidentState, build_resident_state, checkpoint_resident

SERVE_STATUS_PIPELINE = "serve"


@dataclass(frozen=True)
class ServeConfig:
    """Everything a server needs, in one picklable bundle."""

    dataset: dict[str, Any] = field(default_factory=lambda: {
        "kind": "clumps", "n": 20000, "seed": 1,
        "tree_type": "oct", "bucket_size": 16,
    })
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    batch_max: int | None = None       # None = 4 x tree bucket size
    batch_wait: float = 0.002
    executor: str = "inline"           # inline | threads | processes
    workers: int = 2
    exec_deadline: float | None = None  # per-chunk supervisor deadline
    max_retries: int = 2
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    checkpoint_dir: str | None = None
    status_every: float = 1.0
    max_results: int = 256
    max_k: int = 256


class QueryService:
    """In-process service object; the socket server and DES bench wrap it."""

    def __init__(self, config: ServeConfig,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self.telemetry = telemetry or get_telemetry()
        self.clock = clock
        self.state: ResidentState = build_resident_state(config.dataset)
        self.admission = AdmissionController(config.admission)
        batch_max = config.batch_max or 4 * self.state.tree.bucket_size
        self.batcher = MicroBatcher(BatchPolicy(batch_max=batch_max,
                                                batch_wait=config.batch_wait))
        self.executor = BatchExecutor(
            self.state, mode=config.executor, workers=config.workers,
            supervisor_config=SupervisorConfig(
                chunk_deadline=config.exec_deadline,
                max_chunk_retries=config.max_retries),
            breaker=CircuitBreaker(config.breaker_threshold,
                                   config.breaker_cooldown, clock=clock),
            max_results=config.max_results,
        )
        self.latency = Log2Histogram()
        self.invalid = 0
        self.status_frames = 0
        self._status_consumers: list[Callable[[dict[str, Any]], None]] = []
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._inflight = 0
        self._started = False
        self._stopping = False
        self._tasks: list[asyncio.Task] = []
        self._dispatch = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="serve-dispatch")
        self._t0 = clock()
        self.telemetry.flight.record(
            "serve.start", n=self.state.n_particles,
            executor=config.executor, batch_max=batch_max)

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._tasks.append(asyncio.ensure_future(self._batch_loop()))
        if self.config.status_every > 0:
            self._tasks.append(asyncio.ensure_future(self._status_loop()))

    async def stop(self) -> None:
        self._stopping = True
        self._wake.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        self._dispatch.shutdown(wait=True)
        self.executor.shutdown()

    async def drain(self, checkpoint_path: str | None = None) -> str | None:
        """Stop admission, settle in-flight work, write the drain checkpoint."""
        self.admission.start_drain()
        self.telemetry.flight.record("serve.drain",
                                     queued=self.admission.depth,
                                     inflight=self._inflight)
        self._wake.set()
        # Only the dispatcher task sets _drained; waiting on it when the
        # dispatcher never ran (drain before start) or is already gone
        # (drain after stop cancelled it) would hang forever.
        if self._started and not self._stopping:
            await self._drained.wait()
        path = checkpoint_path
        if path is None and self.config.checkpoint_dir:
            path = str(Path(self.config.checkpoint_dir) / "serve_ckpt.npz")
        if path is not None:
            # no run-specific metadata in the checkpoint: two drains of the
            # same resident state are byte-identical (`repro audit A B`)
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            checkpoint_resident(self.state, path)
            self.telemetry.flight.record("serve.checkpoint", path=str(path))
        self.emit_status()  # final frame showing the drained state
        return path

    # -- intake --------------------------------------------------------------
    async def submit(self, query: Query) -> Response:
        """Admit (or shed) one query and await its response."""
        now = self.clock()
        bad = query.validate(self.state.n_particles, self.config.max_k)
        if bad is not None:
            self.invalid += 1
            return error_response(query, bad)
        future: asyncio.Future[Response] = asyncio.get_running_loop().create_future()
        verdict = self.admission.offer(query, now, ctx=future)
        if verdict != "admitted":
            retry = self.admission.retry_after(verdict, query, now)
            self.telemetry.flight.record("serve.shed", reason=verdict,
                                         query=query.id)
            return shed_response(query, verdict, retry)
        self._wake.set()
        return await future

    # -- dispatcher ----------------------------------------------------------
    def _resolve(self, entry: QueueEntry, response: Response) -> None:
        future = entry.ctx
        if future is not None and not future.done():
            future.set_result(response)

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            if not self.admission.queue:
                if self.admission.draining and self._inflight == 0:
                    self._drained.set()
                self._wake.clear()
                await self._wake.wait()
                continue
            policy = self.batcher.policy
            if (len(self.admission.queue) < policy.batch_max
                    and not self.admission.draining and policy.batch_wait > 0):
                await asyncio.sleep(policy.batch_wait)  # linger for stragglers
            now = self.clock()
            batch, expired = self.batcher.form_batch(self.admission.queue, now)
            if expired:
                self.admission.note_expired(len(expired))
                self.telemetry.flight.record("serve.expired", n=len(expired))
                for entry in expired:
                    self._resolve(entry, expired_response(
                        entry.query, waited=round(now - entry.arrival, 6)))
            if not batch:
                continue
            self._inflight = len(batch)
            wire = [entry.query.to_wire() for entry in batch]
            t_exec = self.clock()
            try:
                results = await loop.run_in_executor(
                    self._dispatch, self.executor.execute, wire)
            except Exception as exc:  # noqa: BLE001 - keep serving
                results = [{"error": f"{type(exc).__name__}: {exc}"}] * len(batch)
            finally:
                # reset even on cancellation, or a later drain() would
                # see phantom in-flight work
                self._inflight = 0
            t_done = self.clock()
            if len(results) != len(batch):
                results = [{"error": "executor returned wrong batch size"}] * len(batch)
            service_s = t_done - t_exec
            latencies: list[float] = []
            failed = 0
            for entry, doc in zip(batch, results):
                latency = t_done - entry.arrival
                if "error" in doc:
                    failed += 1
                    self._resolve(entry, error_response(entry.query, doc["error"]))
                    continue
                latencies.append(latency)
                self.latency.observe(latency)
                self._resolve(entry, Response(
                    id=entry.query.id, status=STATUS_OK, result=doc,
                    queue_s=round(t_exec - entry.arrival, 6),
                    service_s=round(service_s, 6)))
            self.admission.note_served(len(latencies), latencies)
            if failed:
                self.admission.note_failed(failed)
            self.telemetry.flight.record("serve.batch", n=len(batch),
                                         service_s=round(service_s, 6),
                                         failed=failed)

    # -- status --------------------------------------------------------------
    def add_status_consumer(self, consumer: Callable[[dict[str, Any]], None]) -> None:
        self._status_consumers.append(consumer)

    def snapshot(self) -> dict[str, Any]:
        """One ``repro.status/1`` frame with the ``serve`` panel section."""
        q = self.latency.quantiles((0.5, 0.99)) if self.latency.count else {}
        counters = self.admission.counters
        uptime = self.clock() - self._t0
        return {
            "pipeline": SERVE_STATUS_PIPELINE,
            "iteration": self.status_frames,
            "n_particles": self.state.n_particles,
            "serve": {
                **self.admission.snapshot(),
                "inflight": self._inflight,
                "invalid": self.invalid,
                "p50_s": q.get("p50"),
                "p99_s": q.get("p99"),
                "served_per_s": (round(counters.served / uptime, 2)
                                 if uptime > 0 else 0.0),
                **self.executor.snapshot(),
            },
        }

    def emit_status(self) -> None:
        snap = self.snapshot()
        self.status_frames += 1
        for consumer in self._status_consumers:
            consumer(snap)

    async def _status_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.status_every)
            self.emit_status()
