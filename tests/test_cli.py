"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_gravity(self, capsys):
        assert main(["gravity", "--n", "1500", "--check"]) == 0
        out = capsys.readouterr().out
        assert "traversal" in out and "error vs direct sum" in out

    def test_gravity_quadrupole_per_bucket(self, capsys):
        assert main([
            "gravity", "--n", "800", "--traverser", "per-bucket", "--quadrupole"
        ]) == 0
        assert "pp_interactions" in capsys.readouterr().out

    def test_sph_with_baseline(self, capsys):
        assert main(["sph", "--n", "1200", "--k", "16", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "kNN density" in out and "gadget-style" in out

    def test_knn(self, capsys):
        assert main(["knn", "--n", "1500", "--k", "4"]) == 0
        assert "brute force would be" in capsys.readouterr().out

    def test_disk(self, capsys):
        assert main(["disk", "--n", "500", "--steps", "3"]) == 0
        assert "collisions recorded" in capsys.readouterr().out

    def test_correlation(self, capsys):
        assert main(["correlation", "--n", "600", "--bins", "4"]) == 0
        out = capsys.readouterr().out
        assert "xi" in out and out.count("\n") >= 5

    def test_scale(self, capsys):
        assert main([
            "scale", "--n", "3000", "--partitions", "32",
            "--cores", "24", "48", "--cache", "XWrite",
        ]) == 0
        out = capsys.readouterr().out
        assert "24 cores" in out and "48 cores" in out

    def test_gravity_trace_and_metrics(self, capsys, tmp_path):
        trace, metrics = tmp_path / "t.json", tmp_path / "m.json"
        assert main([
            "gravity", "--n", "1200",
            "--trace", str(trace), "--metrics", str(metrics), "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out and "-- metrics" in out
        events = json.loads(trace.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        assert {"iteration", "tree_build", "traversal", "rebalance"} <= names
        snaps = json.loads(metrics.read_text())["metrics"]
        metric_names = {s["name"] for s in snaps}
        assert {"cache.hits", "cache.misses", "driver.imbalance"} <= metric_names

    def test_scale_metrics_csv(self, capsys, tmp_path):
        metrics = tmp_path / "m.csv"
        assert main([
            "scale", "--n", "2000", "--partitions", "32",
            "--cores", "24", "--metrics", str(metrics),
        ]) == 0
        header, *rows = metrics.read_text().strip().splitlines()
        assert header == "name,type,labels,value,extra"
        assert any(r.startswith("des.requests,") for r in rows)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCheckpointCLI:
    """``--checkpoint-every`` / ``repro resume`` / ``repro audit``."""

    GRAVITY = ["gravity", "--n", "900", "--dt", "1e-3", "--seed", "3"]

    def test_kill_and_resume_matches_baseline(self, capsys, tmp_path):
        base = tmp_path / "base.npz"
        resumed = tmp_path / "resumed.npz"
        ckpt_dir = tmp_path / "ckpt"
        assert main(self.GRAVITY + ["--iterations", "3",
                                    "--save-state", str(base)]) == 0
        assert main(self.GRAVITY + ["--iterations", "2",
                                    "--checkpoint-every", "1",
                                    "--checkpoint-dir", str(ckpt_dir)]) == 0
        assert (ckpt_dir / "ckpt_000002.npz").exists()
        assert main(["resume", str(ckpt_dir / "ckpt_000002.npz"),
                     "--iterations", "3", "--save-state", str(resumed)]) == 0
        out = capsys.readouterr().out
        assert "resumed gravity at iteration 2" in out
        assert "consistency audit passed" in out
        assert main(["audit", str(base), str(resumed)]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_audit_detects_divergence(self, capsys, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        assert main(self.GRAVITY + ["--iterations", "1",
                                    "--save-state", str(a)]) == 0
        assert main(["gravity", "--n", "900", "--dt", "2e-3", "--seed", "3",
                     "--iterations", "1", "--save-state", str(b)]) == 0
        capsys.readouterr()
        assert main(["audit", str(a), str(b)]) == 1
        assert "difference" in capsys.readouterr().out

    def test_audit_unreadable_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"nope")
        assert main(["audit", str(bad), str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_resume_missing_checkpoint_errors(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "none.npz")]) == 2
        assert "error" in capsys.readouterr().err

    def test_sph_checkpoint_resume(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        assert main(["sph", "--n", "700", "--k", "12", "--iterations", "2",
                     "--dt", "1e-3", "--checkpoint-every", "1",
                     "--checkpoint-dir", str(ckpt_dir)]) == 0
        assert main(["resume", str(ckpt_dir / "ckpt_000002.npz"),
                     "--iterations", "3"]) == 0
        assert "resumed sph at iteration 2" in capsys.readouterr().out

    def test_gravity_crash_prints_recovery(self, capsys):
        assert main(["gravity", "--n", "900", "--iterations", "1",
                     "--faults", "crash=0.9@0.25,seed=4"]) == 0
        out = capsys.readouterr().out
        assert "recovery:" in out and "crash(es)" in out

    def test_crash_recovery_lane_in_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["gravity", "--n", "900", "--iterations", "1",
                     "--faults", "crash=0.9@0.25,seed=4",
                     "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        lanes = [e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M"]
        assert "⟲ recovery" in lanes
