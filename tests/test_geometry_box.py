"""Unit tests for Box3 and the vectorised box kernels."""

import numpy as np
import pytest

from repro.geometry import (
    Box3,
    bounding_box,
    boxes_center,
    boxes_contain_points,
    boxes_intersect_boxes,
    boxes_intersect_sphere,
    boxes_longest_dim,
    boxes_union,
    point_box_distance_sq,
    points_boxes_distance_sq,
)
from repro.geometry.box import boxes_box_distance_sq


class TestBox3Basics:
    def test_empty_box_identity(self):
        empty = Box3.empty()
        assert empty.is_empty
        box = Box3([0, 0, 0], [1, 2, 3])
        assert empty.union(box) == box
        assert box.union(empty) == box

    def test_from_points_tight(self):
        pts = np.array([[0.0, 1.0, 2.0], [3.0, -1.0, 0.5]])
        box = Box3.from_points(pts)
        assert np.array_equal(box.lo, [0.0, -1.0, 0.5])
        assert np.array_equal(box.hi, [3.0, 1.0, 2.0])

    def test_from_no_points_is_empty(self):
        assert Box3.from_points(np.empty((0, 3))).is_empty

    def test_center_size_volume(self):
        box = Box3([0, 0, 0], [2, 4, 6])
        assert np.array_equal(box.center, [1, 2, 3])
        assert np.array_equal(box.size, [2, 4, 6])
        assert box.volume == 48.0
        assert box.longest_dim == 2

    def test_volume_of_empty_is_zero(self):
        assert Box3.empty().volume == 0.0

    def test_contains(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        assert box.contains([0.5, 0.5, 0.5])
        assert box.contains([0, 0, 0])  # boundary closed
        assert box.contains([1, 1, 1])
        assert not box.contains([1.0001, 0.5, 0.5])

    def test_contains_box(self):
        outer = Box3([0, 0, 0], [4, 4, 4])
        inner = Box3([1, 1, 1], [2, 2, 2])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(Box3.empty())

    def test_intersects(self):
        a = Box3([0, 0, 0], [1, 1, 1])
        b = Box3([0.5, 0.5, 0.5], [2, 2, 2])
        c = Box3([2.5, 2.5, 2.5], [3, 3, 3])
        assert a.intersects(b)
        assert not a.intersects(c)
        # touching faces counts as intersecting (closed boxes)
        assert a.intersects(Box3([1, 0, 0], [2, 1, 1]))

    def test_distance_sq_inside_is_zero(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        assert box.distance_sq([0.5, 0.5, 0.5]) == 0.0
        assert box.distance_sq([2, 0.5, 0.5]) == pytest.approx(1.0)
        assert box.distance_sq([2, 2, 0.5]) == pytest.approx(2.0)

    def test_farthest_distance(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        assert box.farthest_distance_sq([0, 0, 0]) == pytest.approx(3.0)

    def test_split(self):
        box = Box3([0, 0, 0], [2, 2, 2])
        left, right = box.split(0, 0.5)
        assert left.hi[0] == 0.5 and right.lo[0] == 0.5
        assert left.union(right) == box

    def test_octants_partition_volume(self):
        box = Box3([0, 0, 0], [2, 2, 2])
        octants = [box.octant(i) for i in range(8)]
        assert sum(o.volume for o in octants) == pytest.approx(box.volume)
        # octant 0 is the all-low corner; octant 7 the all-high corner
        assert np.array_equal(octants[0].lo, [0, 0, 0])
        assert np.array_equal(octants[7].hi, [2, 2, 2])
        assert np.array_equal(octants[1].lo, [1, 0, 0])  # bit0 = x

    def test_cubified(self):
        box = Box3([0, 0, 0], [1, 2, 4])
        cube = box.cubified()
        assert np.allclose(cube.size, [4, 4, 4])
        assert np.allclose(cube.center, box.center)
        assert cube.contains_box(box)

    def test_expanded(self):
        box = Box3([0, 0, 0], [1, 1, 1]).expanded(0.5)
        assert np.array_equal(box.lo, [-0.5] * 3)
        assert np.array_equal(box.hi, [1.5] * 3)

    def test_radius_sq(self):
        box = Box3([0, 0, 0], [2, 2, 2])
        assert box.radius_sq == pytest.approx(3.0)

    def test_intersects_sphere(self):
        box = Box3([0, 0, 0], [1, 1, 1])
        assert box.intersects_sphere([2, 0.5, 0.5], 1.0)
        assert not box.intersects_sphere([2.5, 0.5, 0.5], 1.0)


class TestVectorisedKernels:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.lo = rng.uniform(-1, 0, (50, 3))
        self.hi = self.lo + rng.uniform(0.1, 1.0, (50, 3))

    def test_boxes_union_matches_scalar(self):
        u = boxes_union(self.lo, self.hi)
        expect = Box3.empty()
        for lo, hi in zip(self.lo, self.hi):
            expect = expect.union(Box3(lo, hi))
        assert u == expect

    def test_boxes_union_empty_list(self):
        assert boxes_union(np.empty((0, 3)), np.empty((0, 3))).is_empty

    def test_boxes_center(self):
        c = boxes_center(self.lo, self.hi)
        assert np.allclose(c, (self.lo + self.hi) / 2)

    def test_boxes_longest_dim_matches_scalar(self):
        dims = boxes_longest_dim(self.lo, self.hi)
        for i in range(len(self.lo)):
            assert dims[i] == Box3(self.lo[i], self.hi[i]).longest_dim

    def test_point_box_distance_matches_scalar(self):
        rng = np.random.default_rng(1)
        pt = rng.uniform(-2, 2, 3)
        d = point_box_distance_sq(self.lo, self.hi, pt)
        for i in range(len(self.lo)):
            assert d[i] == pytest.approx(Box3(self.lo[i], self.hi[i]).distance_sq(pt))

    def test_points_boxes_distance_matrix(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(-2, 2, (7, 3))
        d = points_boxes_distance_sq(self.lo, self.hi, pts)
        assert d.shape == (50, 7)
        for i in range(5):
            for j in range(7):
                assert d[i, j] == pytest.approx(
                    Box3(self.lo[i], self.hi[i]).distance_sq(pts[j])
                )

    def test_boxes_contain_points_broadcast(self):
        centers = (self.lo + self.hi) / 2
        assert boxes_contain_points(self.lo, self.hi, centers).all()
        assert not boxes_contain_points(self.lo, self.hi, self.hi + 1.0).any()

    def test_boxes_intersect_boxes_self(self):
        assert boxes_intersect_boxes(self.lo, self.hi, self.lo, self.hi).all()

    def test_boxes_intersect_sphere_matches_scalar(self):
        center = np.array([0.2, -0.3, 0.1])
        out = boxes_intersect_sphere(self.lo, self.hi, center, 0.25)
        for i in range(len(self.lo)):
            assert out[i] == Box3(self.lo[i], self.hi[i]).intersects_sphere(center, 0.5)

    def test_boxes_box_distance_symmetry_and_overlap(self):
        d = boxes_box_distance_sq(self.lo, self.hi, self.lo[0], self.hi[0])
        assert d[0] == 0.0
        d_rev = boxes_box_distance_sq(self.lo[0], self.hi[0], self.lo, self.hi)
        assert np.allclose(d, d_rev)
        # disjoint along one axis by exactly 1.0
        a_lo, a_hi = np.zeros(3), np.ones(3)
        b_lo, b_hi = np.array([2.0, 0, 0]), np.array([3.0, 1, 1])
        assert boxes_box_distance_sq(a_lo, a_hi, b_lo, b_hi) == pytest.approx(1.0)


def test_bounding_box_pad():
    pts = np.array([[0.0, 0, 0], [1.0, 1, 1]])
    padded = bounding_box(pts, pad=0.1)
    assert np.allclose(padded.lo, [-0.1] * 3)
    assert np.allclose(padded.hi, [1.1] * 3)


class TestBoxMoreEdgeCases:
    def test_union_point(self):
        box = Box3([0, 0, 0], [1, 1, 1]).union_point([2.0, -1.0, 0.5])
        assert np.array_equal(box.lo, [0, -1, 0])
        assert np.array_equal(box.hi, [2, 1, 1])

    def test_degenerate_box_contains_its_point(self):
        box = Box3([0.5, 0.5, 0.5], [0.5, 0.5, 0.5])
        assert not box.is_empty
        assert box.contains([0.5, 0.5, 0.5])
        assert box.volume == 0.0

    def test_empty_box_never_intersects(self):
        empty = Box3.empty()
        full = Box3([0, 0, 0], [1, 1, 1])
        assert not empty.intersects(full)
        assert not full.intersects(empty)

    def test_cube_constructor(self):
        box = Box3.cube([1, 2, 3], 0.5)
        assert np.array_equal(box.lo, [0.5, 1.5, 2.5])
        assert np.array_equal(box.hi, [1.5, 2.5, 3.5])

    def test_longest_dim_tie_breaks_low(self):
        assert Box3([0, 0, 0], [1, 1, 1]).longest_dim == 0
